"""Dense vs. packed backend micro-benchmark.

Quantifies what the bit-packed binary backend buys on a MUTAG-like synthetic
workload and on a pure similarity-search kernel:

* **hypervector memory** — encodings stored as ``uint64`` bitplanes instead
  of one ``int8`` per component (exactly 8x smaller for dimensions that are
  multiples of 64; asserted to be at least the 4x the roadmap requires);
* **similarity search** — popcount Hamming vs. float cosine on a batch of
  queries against a reference set (the associative-memory hot path);
* **end-to-end encode + predict wall-clock** for both backends.

The measured numbers are appended to the shared benchmark report.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import print_report
from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset
from repro.eval.reporting import render_table
from repro.hdc.backend import get_backend, pack_bipolar
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.operations import similarity_matrix

DIMENSION = 10_000
NUM_QUERIES = 512
NUM_REFERENCES = 128


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_memory_and_similarity_speed(profile):
    dense = get_backend("dense")
    packed = get_backend("packed")

    queries = random_hypervectors(NUM_QUERIES, DIMENSION, rng=profile.seed)
    references = random_hypervectors(NUM_REFERENCES, DIMENSION, rng=profile.seed + 1)
    packed_queries = pack_bipolar(queries)
    packed_references = pack_bipolar(references)

    dense_seconds = _best_of(
        lambda: similarity_matrix(queries, references, metric="cosine")
    )
    packed_seconds = _best_of(
        lambda: packed.similarity_matrix(
            packed_queries, packed_references, DIMENSION, metric="cosine"
        )
    )
    speedup = dense_seconds / packed_seconds if packed_seconds > 0 else float("inf")

    dense_bytes = dense.nbytes(NUM_QUERIES, DIMENSION)
    packed_bytes = packed.nbytes(NUM_QUERIES, DIMENSION)
    memory_ratio = dense_bytes / packed_bytes

    rows = [
        ["similarity seconds (dense cosine)", f"{dense_seconds:.4f}"],
        ["similarity seconds (packed popcount)", f"{packed_seconds:.4f}"],
        ["similarity speedup (packed vs dense)", f"{speedup:.1f}x"],
        [f"bytes for {NUM_QUERIES} encodings (dense)", f"{dense_bytes:,}"],
        [f"bytes for {NUM_QUERIES} encodings (packed)", f"{packed_bytes:,}"],
        ["memory ratio (dense / packed)", f"{memory_ratio:.2f}x"],
    ]
    print_report(
        "Backend micro-benchmark: similarity search and memory "
        f"(d={DIMENSION}, {NUM_QUERIES} queries x {NUM_REFERENCES} references)",
        render_table(["quantity", "value"], rows),
    )

    # The roadmap's acceptance bar: >=2x faster similarity search OR >=4x
    # lower hypervector memory.  The memory ratio is deterministic (~8x), so
    # it is asserted strictly; the timing is also checked but only against a
    # lenient floor to stay robust on noisy CI machines.
    assert memory_ratio >= 4.0
    assert speedup > 0.5

    # Correctness guard: both kernels must score identically on this batch.
    assert np.allclose(
        similarity_matrix(queries, references, metric="cosine"),
        packed.similarity_matrix(
            packed_queries, packed_references, DIMENSION, metric="cosine"
        ),
    )


def test_backend_training_kernel_speed(profile):
    """Training-side kernels: segmented accumulation + majority vote.

    The packed rows run through the carry-save bit-sliced kernels; the dense
    rows are the int64 component-space reference.  Both paths are asserted to
    produce identical class sums and identically ranked votes before timing.
    """
    dense = get_backend("dense")
    packed = get_backend("packed")
    num_vectors, num_classes = 2_048, 8

    matrix = random_hypervectors(num_vectors, DIMENSION, rng=profile.seed)
    words = pack_bipolar(matrix)
    ids = np.sort(
        np.random.default_rng(profile.seed).integers(0, num_classes, size=num_vectors)
    )

    def train(backend, rows):
        sums = backend.segment_accumulate(rows, ids, num_classes, DIMENSION)
        return sums, backend.normalize(sums, rng=0)

    dense_sums, dense_votes = train(dense, matrix)
    packed_sums, packed_votes = train(packed, words)
    assert np.array_equal(dense_sums, packed_sums)
    assert np.array_equal(pack_bipolar(dense_votes), packed_votes)

    dense_seconds = _best_of(lambda: train(dense, matrix))
    packed_seconds = _best_of(lambda: train(packed, words))

    rows = [
        ["train seconds (dense int64 kernels)", f"{dense_seconds:.4f}"],
        ["train seconds (packed carry-save kernels)", f"{packed_seconds:.4f}"],
        [
            "train throughput (packed)",
            f"{num_vectors / packed_seconds:,.0f} vec/s",
        ],
        ["relative (dense / packed)", f"{dense_seconds / packed_seconds:.2f}x"],
    ]
    print_report(
        "Backend micro-benchmark: training kernels "
        f"(segment accumulate + majority vote, {num_vectors} vectors, "
        f"{num_classes} classes, d={DIMENSION})",
        render_table(["quantity", "value"], rows),
    )


def test_backend_end_to_end_wall_clock(profile):
    dataset = make_benchmark_dataset("MUTAG", scale=0.5, seed=profile.seed)
    graphs, labels = dataset.graphs, dataset.labels

    results: dict[str, dict[str, float]] = {}
    for backend_name in ("dense", "packed"):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed, backend=backend_name)
        )
        fit_seconds = _best_of(lambda: model.fit(graphs, labels), repeats=2)
        predict_seconds = _best_of(lambda: model.predict(graphs), repeats=2)
        encodings = model.encode(graphs)
        accuracy = model.score(graphs, labels)
        results[backend_name] = {
            "fit_seconds": fit_seconds,
            "predict_seconds": predict_seconds,
            "encoding_bytes": encodings.nbytes,
            "accuracy": accuracy,
        }

    rows = [
        [
            name,
            f"{values['fit_seconds']:.4f}",
            f"{values['predict_seconds']:.4f}",
            f"{values['encoding_bytes']:,}",
            f"{values['accuracy']:.3f}",
        ]
        for name, values in results.items()
    ]
    print_report(
        f"Backend micro-benchmark: encode + predict on MUTAG-like data "
        f"({len(graphs)} graphs, d={DIMENSION})",
        render_table(
            ["backend", "fit seconds", "predict seconds", "encoding bytes", "accuracy"],
            rows,
        ),
    )

    # Packed encodings must deliver the promised memory reduction and stay
    # within accuracy noise of the dense backend on this separable dataset.
    assert results["dense"]["encoding_bytes"] >= 4 * results["packed"]["encoding_bytes"]
    assert abs(results["dense"]["accuracy"] - results["packed"]["accuracy"]) < 0.1
