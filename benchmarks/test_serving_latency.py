"""Load-generator benchmark of the ``repro serve`` inference service.

Trains a packed-backend model at the paper's d=10,000, serves it over HTTP
on an ephemeral port, and drives it with stdlib-only closed-loop clients in
two regimes:

* **sequential** — one client, one graph per request: the un-batched
  baseline, whose latency floor includes the ``max_delay`` batching tax.
* **concurrent** — many clients firing single-graph requests at once, the
  regime micro-batching exists for: the server coalesces co-arriving
  requests into one ``encode_many`` + ``decision_scores`` pass.

Client-side p50/p99 latency and throughput (QPS) of both regimes, together
with the server's own ``/stats`` (observed batch sizes, queue depth), are
written to ``BENCH_serving.json`` at the repository root so the serving
performance trajectory is tracked across PRs.  Correctness rides along: the
benchmark asserts the served labels are bit-identical to offline
``predict_encoded`` and that concurrency actually produced batches > 1.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from conftest import print_report
from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset
from repro.eval.reporting import render_table
from repro.serve.app import create_server, start_in_thread
from repro.serve.client import ServingClient

DIMENSION = 10_000
BACKEND = "packed"
NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 25
MAX_DELAY_SECONDS = 0.002

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_serving.json"
)

_RESULTS: dict = {}


def _flush_results() -> None:
    payload = {
        "generated_by": "benchmarks/test_serving_latency.py",
        "dimension": DIMENSION,
        "backend": BACKEND,
        "max_delay_seconds": MAX_DELAY_SECONDS,
        **_RESULTS,
    }
    with open(os.path.abspath(BENCH_FILE), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _percentiles(latencies: list[float]) -> dict:
    array = np.asarray(latencies, dtype=np.float64) * 1000.0
    return {
        "count": int(array.size),
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
        "mean_ms": round(float(array.mean()), 3),
    }


def test_serving_latency_and_batching(profile, tmp_path):
    """Drive a served packed model sequentially and concurrently; record QPS."""
    dataset = make_benchmark_dataset("MUTAG", scale=0.5, seed=profile.seed)
    model = GraphHDClassifier(
        GraphHDConfig(dimension=DIMENSION, seed=profile.seed, backend=BACKEND)
    )
    model.fit(dataset.graphs, dataset.labels)
    model_path = str(tmp_path / "serving-bench.npz")
    model.save(model_path)

    # Ground truth for the correctness assertion: the offline batch path.
    # The request stream cycles the dataset so every client sends real
    # (distinct-enough) graphs without needing a larger training run.
    request_graphs = [
        dataset.graphs[index % len(dataset.graphs)]
        for index in range(NUM_CLIENTS * REQUESTS_PER_CLIENT)
    ]
    offline = GraphHDClassifier.load(model_path)
    expected = offline.classifier.predict(
        offline.encoder.encode_many(request_graphs)
    )

    server = create_server(
        model_path, port=0, max_delay=MAX_DELAY_SECONDS, max_batch_size=64
    )
    start_in_thread(server)
    host, port = server.server_address[:2]
    try:
        with ServingClient(host, port) as probe:
            assert probe.healthz()["status"] == "ok"

            # ---------------------------------------------- sequential regime
            sequential_latencies: list[float] = []
            warmup = probe.predict([request_graphs[0]])
            assert warmup["model_version"] == 1
            sequential_start = time.perf_counter()
            for graph in request_graphs[:REQUESTS_PER_CLIENT]:
                request_start = time.perf_counter()
                probe.predict([graph])
                sequential_latencies.append(time.perf_counter() - request_start)
            sequential_seconds = time.perf_counter() - sequential_start

        # ------------------------------------------------ concurrent regime
        served: dict[int, object] = {}
        concurrent_latencies: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]
        barrier = threading.Barrier(NUM_CLIENTS + 1)

        def client_loop(worker: int) -> None:
            with ServingClient(host, port) as client:
                barrier.wait()
                for step in range(REQUESTS_PER_CLIENT):
                    index = worker * REQUESTS_PER_CLIENT + step
                    request_start = time.perf_counter()
                    response = client.predict([request_graphs[index]])
                    concurrent_latencies[worker].append(
                        time.perf_counter() - request_start
                    )
                    served[index] = response["predictions"][0]["label"]

        workers = [
            threading.Thread(target=client_loop, args=(worker,))
            for worker in range(NUM_CLIENTS)
        ]
        for thread in workers:
            thread.start()
        barrier.wait()
        concurrent_start = time.perf_counter()
        for thread in workers:
            thread.join(120.0)
        concurrent_seconds = time.perf_counter() - concurrent_start

        with ServingClient(host, port) as probe:
            stats = probe.stats()
    finally:
        server.server_close()

    # Served answers are bit-identical to the offline batch path, no matter
    # how the concurrent singletons were coalesced into micro-batches.
    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT
    assert len(served) == total_requests
    assert [served[index] for index in range(total_requests)] == expected

    # Concurrency must actually exercise the batcher.
    max_batch = stats["batch_sizes"]["max"]
    assert max_batch and max_batch > 1

    flat_concurrent = [
        latency for worker in concurrent_latencies for latency in worker
    ]
    sequential = {
        "num_requests": len(sequential_latencies),
        "clients": 1,
        "qps": round(len(sequential_latencies) / sequential_seconds, 1),
        "latency": _percentiles(sequential_latencies),
    }
    concurrent = {
        "num_requests": total_requests,
        "clients": NUM_CLIENTS,
        "qps": round(total_requests / concurrent_seconds, 1),
        "latency": _percentiles(flat_concurrent),
    }
    _RESULTS.update(
        {
            "model": {
                "dataset": dataset.name,
                "num_training_graphs": len(dataset),
                "num_classes": len(offline.classes),
            },
            "sequential": sequential,
            "concurrent": concurrent,
            "server_stats": {
                "requests_total": stats["requests_total"],
                "graphs_total": stats["graphs_total"],
                "batches_total": stats["batches_total"],
                "errors_total": stats["errors_total"],
                "max_batch_size": max_batch,
                "mean_batch_size": round(stats["batch_sizes"]["mean"], 2),
                "max_queue_depth": stats["max_queue_depth"],
                "server_request_latency": stats["request_latency"],
            },
        }
    )
    _flush_results()

    print_report(
        f"Serving latency: {BACKEND} model, d={DIMENSION}, "
        f"{NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} requests",
        render_table(
            ["regime", "clients", "QPS", "p50 ms", "p99 ms", "max batch"],
            [
                [
                    "sequential",
                    "1",
                    f"{sequential['qps']:.0f}",
                    f"{sequential['latency']['p50_ms']:.2f}",
                    f"{sequential['latency']['p99_ms']:.2f}",
                    "1",
                ],
                [
                    "concurrent",
                    str(NUM_CLIENTS),
                    f"{concurrent['qps']:.0f}",
                    f"{concurrent['latency']['p50_ms']:.2f}",
                    f"{concurrent['latency']['p99_ms']:.2f}",
                    str(max_batch),
                ],
            ],
        ),
    )

    assert stats["errors_total"] == 0
    # Well-formed percentile fields (the CI smoke re-checks these from disk).
    for regime in (sequential, concurrent):
        assert regime["latency"]["p50_ms"] > 0
        assert regime["latency"]["p99_ms"] >= regime["latency"]["p50_ms"]
