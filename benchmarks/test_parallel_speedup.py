"""Fold-parallel evaluation and persistent-store benchmark (perf trajectory).

Quantifies the two execution-layer optimizations of the evaluation protocol
and merges the measurements into ``BENCH_encoding.json`` at the repository
root (alongside the flat-batch encoding numbers) so the performance
trajectory is tracked across PRs:

* **Fold parallelism** — the paper's uncached 10-fold protocol (every fold's
  training re-encodes its split) run serially versus fanned out over
  ``n_jobs=4`` worker processes with :func:`cross_validate`'s ``n_jobs``.
* **Persistent encoding store** — a cold ``cross_validate`` that encodes and
  persists the dataset versus a warm run that loads the encodings back from
  the on-disk store.

Both optimizations are exact: the benchmark asserts bit-identical per-fold
accuracies and fold assignments alongside the speedups.  The >= 2x
fold-parallel assertion only applies on hosts that actually have the four
cores the protocol fans out over; on smaller hosts the measurement is still
recorded, honestly, for the trajectory.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from conftest import print_report
from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset
from repro.eval.cross_validation import cross_validate
from repro.eval.encoding_store import EncodingStore
from repro.eval.parallel import (
    TaskPolicy,
    parallelism_available,
    run_tasks,
    usable_cores,
)
from repro.eval.reporting import render_table

DIMENSION = 10_000
CV_FOLDS = 10
N_JOBS = 4

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_encoding.json"
)

#: Results accumulated by the tests in this module and merged to disk.
_RESULTS: dict = {}


def _num_graphs(profile) -> int:
    # Sized so each fold re-encodes enough graphs for the pool to amortize
    # its startup; the full profile uses a heavier batch.
    return 4000 if profile.name == "full" else 1200


def _flush_results() -> None:
    """Merge this module's measurements into the shared benchmark file."""
    path = os.path.abspath(BENCH_FILE)
    payload: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload["parallel"] = {
        "generated_by": "benchmarks/test_parallel_speedup.py",
        "dimension": DIMENSION,
        **_RESULTS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _fold_fingerprints(result):
    return [
        (fold.fold, fold.repetition, fold.accuracy, fold.test_indices)
        for fold in result.folds
    ]


def test_fold_parallel_cross_validate_speedup(profile):
    """Uncached 10-fold protocol: serial versus n_jobs=4 worker processes."""
    dataset = make_benchmark_dataset(
        "MUTAG", scale=_num_graphs(profile) / 188, seed=profile.seed
    )

    def factory():
        return GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed)
        )

    def run(n_jobs):
        start = time.perf_counter()
        result = cross_validate(
            factory,
            dataset,
            method_name="GraphHD",
            n_splits=CV_FOLDS,
            repetitions=1,
            seed=profile.seed,
            # The paper's timing protocol: every fold's training re-encodes
            # its split, which is the embarrassingly parallel workload.
            encoding_cache=False,
            n_jobs=n_jobs,
        )
        return time.perf_counter() - start, result

    serial_seconds, serial = run(1)
    parallel_seconds, parallel = run(N_JOBS)

    # Parallel dispatch must be exact, not approximate.
    assert _fold_fingerprints(serial) == _fold_fingerprints(parallel)

    cores = usable_cores()
    speedup = serial_seconds / parallel_seconds
    _RESULTS["fold_parallel_cross_validate"] = {
        "num_graphs": len(dataset),
        "folds": CV_FOLDS,
        "n_jobs": N_JOBS,
        "usable_cores": cores,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_results": True,
    }
    _flush_results()
    print_report(
        f"Fold-parallel cross_validate: {len(dataset)} graphs, "
        f"{CV_FOLDS} folds, d={DIMENSION}, {cores} usable cores",
        render_table(
            ["configuration", "seconds", "speedup"],
            [
                ["serial (n_jobs=1)", f"{serial_seconds:.3f}", "1.0x"],
                [
                    f"parallel (n_jobs={N_JOBS})",
                    f"{parallel_seconds:.3f}",
                    f"{speedup:.2f}x",
                ],
            ],
        ),
    )
    if cores >= N_JOBS and parallelism_available():
        assert speedup >= 2.0, (
            f"expected >=2x fold-parallel speedup on {cores} cores, "
            f"measured {speedup:.2f}x"
        )


def test_supervised_dispatch_overhead(profile):
    """Fixed cost of the supervised runtime per dispatched task.

    The supervisor adds bookkeeping a bare pool does not have — per-task
    deadlines, sentinel watching, retry accounting, optional journaling.
    This measures that fixed cost on trivial tasks (the worst case: real
    fold/shard tasks amortize it over seconds of work) for the default
    fail-fast policy and for a fully-armed one (timeout + retries +
    checkpoint journal).
    """
    if not parallelism_available():
        import pytest

        pytest.skip("no process-pool parallelism on this platform")
    num_tasks = 256 if profile.name == "full" else 64
    tasks = [lambda value=value: value for value in range(num_tasks)]

    def run(policy):
        start = time.perf_counter()
        results = run_tasks(tasks, n_jobs=N_JOBS, policy=policy)
        elapsed = time.perf_counter() - start
        assert results == list(range(num_tasks))
        return elapsed

    plain_seconds = run(None)
    journal_dir = tempfile.mkdtemp(prefix="graphhd-journal-")
    try:
        armed_seconds = run(
            TaskPolicy(timeout=30.0, retries=2, checkpoint_dir=journal_dir)
        )
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)

    per_task_plain = plain_seconds / num_tasks
    per_task_armed = armed_seconds / num_tasks
    _RESULTS["supervised_dispatch_overhead"] = {
        "num_tasks": num_tasks,
        "n_jobs": N_JOBS,
        "plain_seconds": round(plain_seconds, 4),
        "armed_seconds": round(armed_seconds, 4),
        "per_task_plain_ms": round(per_task_plain * 1000, 3),
        "per_task_armed_ms": round(per_task_armed * 1000, 3),
    }
    _flush_results()
    print_report(
        f"Supervised dispatch overhead: {num_tasks} trivial tasks, "
        f"n_jobs={N_JOBS}",
        render_table(
            ["policy", "total seconds", "per task (ms)"],
            [
                ["fail-fast (default)", f"{plain_seconds:.3f}", f"{per_task_plain * 1000:.2f}"],
                ["timeout+retries+journal", f"{armed_seconds:.3f}", f"{per_task_armed * 1000:.2f}"],
            ],
        ),
    )
    # The supervision tax must stay negligible next to real fold tasks
    # (which run for seconds each); generous bound for loaded CI hosts.
    assert per_task_armed < 0.25, (
        f"supervised dispatch costs {per_task_armed * 1000:.1f} ms/task"
    )


def test_persistent_store_cross_validate_reuse(profile):
    """Cold (encode + persist) versus warm (load from store) evaluation."""
    dataset = make_benchmark_dataset(
        "MUTAG", scale=_num_graphs(profile) / 188, seed=profile.seed
    )

    def factory():
        return GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed)
        )

    store_dir = tempfile.mkdtemp(prefix="graphhd-store-")
    try:
        store = EncodingStore(store_dir)

        def run(mmap_mode=None):
            start = time.perf_counter()
            result = cross_validate(
                factory,
                dataset,
                method_name="GraphHD",
                n_splits=CV_FOLDS,
                repetitions=1,
                seed=profile.seed,
                encoding_store=store,
                mmap_mode=mmap_mode,
            )
            return time.perf_counter() - start, result

        cold_seconds, cold = run()
        warm_seconds, warm = run()
        # Warm again through the read-only mmap path: the folds slice views
        # of one page-cached matrix instead of a materialized copy.
        mmap_seconds, mapped = run(mmap_mode="r")

        assert not cold.encoding_store_hit
        assert warm.encoding_store_hit
        assert mapped.encoding_store_hit
        assert _fold_fingerprints(cold) == _fold_fingerprints(warm)
        assert _fold_fingerprints(cold) == _fold_fingerprints(mapped)
        # The warm runs must actually skip encoding: the one-off encoding
        # stage collapses to a store load (or map).
        assert store.stats["hits"] == 2

        _RESULTS["persistent_store_cross_validate"] = {
            "num_graphs": len(dataset),
            "folds": CV_FOLDS,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_mmap_seconds": round(mmap_seconds, 4),
            "cold_encode_seconds": round(cold.encoding_seconds, 4),
            "warm_load_seconds": round(warm.encoding_seconds, 4),
            "warm_mmap_load_seconds": round(mapped.encoding_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "identical_results": True,
        }
        _flush_results()
        print_report(
            f"Persistent encoding store: {len(dataset)} graphs, "
            f"{CV_FOLDS}-fold protocol, d={DIMENSION}",
            render_table(
                ["run", "total seconds", "encode/load seconds"],
                [
                    ["cold (encode + persist)", f"{cold_seconds:.3f}", f"{cold.encoding_seconds:.3f}"],
                    ["warm (load from store)", f"{warm_seconds:.3f}", f"{warm.encoding_seconds:.3f}"],
                    ["warm (mmap, read-only)", f"{mmap_seconds:.3f}", f"{mapped.encoding_seconds:.3f}"],
                ],
            ),
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
