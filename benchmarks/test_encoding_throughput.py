"""Flat-batch encoding and evaluation-cache benchmark (perf trajectory).

Quantifies the two orchestration optimizations of the encoding pipeline on a
CI-sized configuration and writes the measurements to ``BENCH_encoding.json``
at the repository root so the performance trajectory is tracked across PRs:

* **Flat-batch encoding** — :meth:`GraphHDEncoder.encode_many` (batched
  ranks, rank-pair table / segmented accumulation) versus the seed's
  per-graph orchestration, retained as
  :meth:`GraphHDEncoder.encode_many_per_graph`, on a 500-graph synthetic
  batch at the paper's d=10,000, for the dense and packed backends.
* **Evaluation-layer encoding cache** — end-to-end ``cross_validate`` with
  the dataset encoded once versus re-encoded every fold.

Both optimizations are exact: the benchmark asserts bit-identical encodings
and identical per-fold accuracies alongside the speedups.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import print_report
from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import render_table

DIMENSION = 10_000
NUM_BATCH_GRAPHS = 500
CV_FOLDS = 10

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_encoding.json"
)

#: Results accumulated by the tests in this module and flushed to disk.
_RESULTS: dict = {}


def _best_of(callable_, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _flush_results() -> None:
    payload = {
        "generated_by": "benchmarks/test_encoding_throughput.py",
        "dimension": DIMENSION,
        **_RESULTS,
    }
    with open(os.path.abspath(BENCH_FILE), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_flat_batch_encode_many_speedup(profile):
    """Flat-batch encode_many vs. the per-graph path on a 500-graph batch."""
    dataset = make_benchmark_dataset(
        "MUTAG", scale=NUM_BATCH_GRAPHS / 188, seed=profile.seed
    )
    graphs = dataset.graphs

    encode_results: dict[str, dict[str, float]] = {}
    rows = []
    for backend in ("dense", "packed"):
        flat_encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed, backend=backend)
        )
        per_graph_encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed, backend=backend)
        )
        flat_seconds, flat_encodings = _best_of(
            lambda: flat_encoder.encode_many(graphs)
        )
        per_graph_seconds, per_graph_encodings = _best_of(
            lambda: per_graph_encoder.encode_many_per_graph(graphs), repeats=3
        )
        # The optimization must be exact, not approximate.
        assert np.array_equal(flat_encodings, per_graph_encodings)

        speedup = per_graph_seconds / flat_seconds
        encode_results[backend] = {
            "flat_seconds": round(flat_seconds, 4),
            "per_graph_seconds": round(per_graph_seconds, 4),
            "speedup": round(speedup, 2),
            "graphs_per_second": round(len(graphs) / flat_seconds, 1),
        }
        rows.append(
            [
                backend,
                f"{per_graph_seconds:.4f}",
                f"{flat_seconds:.4f}",
                f"{speedup:.1f}x",
                f"{len(graphs) / flat_seconds:,.0f}",
            ]
        )

    _RESULTS["encode_many"] = {
        "num_graphs": len(graphs),
        "avg_edges_per_graph": round(
            float(np.mean([graph.num_edges for graph in graphs])), 1
        ),
        **encode_results,
    }
    _flush_results()
    print_report(
        f"Flat-batch encoding: {len(graphs)} MUTAG-like graphs, d={DIMENSION}",
        render_table(
            [
                "backend",
                "per-graph seconds",
                "flat-batch seconds",
                "speedup",
                "graphs/sec",
            ],
            rows,
        ),
    )

    # Acceptance bar: the flat-batch path must be at least 5x faster than
    # the per-graph orchestration on the dense backend (measured ~5.4x on
    # the reference container; the packed backend is reported but its
    # per-graph path was already heavily optimized, so only a >1x floor is
    # asserted there).
    assert encode_results["dense"]["speedup"] >= 5.0
    assert encode_results["packed"]["speedup"] > 1.0


def test_cached_cross_validation_speedup(profile):
    """End-to-end cross_validate: dataset encoded once vs. once per fold."""
    dataset = make_benchmark_dataset("MUTAG", scale=1.0, seed=profile.seed)

    def factory():
        return GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed)
        )

    def run(encoding_cache: bool):
        return cross_validate(
            factory,
            dataset,
            method_name="GraphHD",
            n_splits=CV_FOLDS,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=encoding_cache,
        )

    cached_seconds, cached = _best_of(lambda: run(True), repeats=2)
    uncached_seconds, uncached = _best_of(lambda: run(False), repeats=2)

    cached_accuracies = [fold.accuracy for fold in cached.folds]
    uncached_accuracies = [fold.accuracy for fold in uncached.folds]
    assert cached_accuracies == uncached_accuracies

    speedup = uncached_seconds / cached_seconds
    _RESULTS["cross_validate"] = {
        "dataset": dataset.name,
        "num_graphs": len(dataset),
        "folds": CV_FOLDS,
        "repetitions": 1,
        "cached_seconds": round(cached_seconds, 4),
        "uncached_seconds": round(uncached_seconds, 4),
        "encode_once_seconds": round(cached.encoding_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_accuracies": True,
    }
    _flush_results()
    print_report(
        f"Encoding cache: cross_validate on {dataset.name} "
        f"({len(dataset)} graphs, {CV_FOLDS} folds, d={DIMENSION})",
        render_table(
            ["quantity", "value"],
            [
                ["uncached seconds (encode every fold)", f"{uncached_seconds:.3f}"],
                ["cached seconds (encode once)", f"{cached_seconds:.3f}"],
                ["encode-once seconds", f"{cached.encoding_seconds:.3f}"],
                ["end-to-end speedup", f"{speedup:.1f}x"],
                ["accuracies identical", "yes"],
            ],
        ),
    )

    # Acceptance bar: caching must make the full protocol at least 3x
    # faster end-to-end (measured ~5x on the reference container).
    assert speedup >= 3.0
