"""Sharded map-reduce training benchmark (perf trajectory).

Measures how shard-and-merge training scales with the shard count and merges
the numbers into ``BENCH_encoding.json`` under the ``sharded_training`` key,
so the trajectory is tracked across PRs alongside the encoding and
fold-parallel measurements.

Two sweeps, both asserted bit-identical to single-shot ``fit``:

* **Shard-count scaling** — ``fit_sharded`` with k in {1, 2, 4, 8} shards
  over ``n_jobs=4`` worker processes, each shard encoding its own slice (the
  cold, embarrassingly parallel workload).
* **Merge cost** — the pure reduce step (``merge_states`` over the shard
  states), which must stay negligible next to the map step for the
  map-reduce decomposition to pay off.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import print_report
from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset
from repro.eval.parallel import parallelism_available, usable_cores
from repro.eval.reporting import render_table
from repro.eval.sharded import fit_sharded
from repro.hdc.training_state import merge_states

DIMENSION = 10_000
N_JOBS = 4
SHARD_COUNTS = (1, 2, 4, 8)

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_encoding.json"
)

_RESULTS: dict = {}


def _num_graphs(profile) -> int:
    # Sized so each shard encodes enough graphs to amortize pool startup.
    return 4000 if profile.name == "full" else 1200


def _flush_results() -> None:
    """Merge this module's measurements into the shared benchmark file."""
    path = os.path.abspath(BENCH_FILE)
    payload: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload["sharded_training"] = {
        "generated_by": "benchmarks/test_sharded_training.py",
        "dimension": DIMENSION,
        **_RESULTS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _assert_identical(model, reference):
    assert model.classes == reference.classes
    for label in reference.classes:
        assert np.array_equal(
            model.classifier.memory._accumulators[label],
            reference.classifier.memory._accumulators[label],
        )


def test_shard_count_scaling(profile):
    """Cold sharded fit for k in {1, 2, 4, 8}: wall time vs. single-shot."""
    dataset = make_benchmark_dataset(
        "MUTAG", scale=_num_graphs(profile) / 188, seed=profile.seed
    )
    graphs, labels = dataset.graphs, dataset.labels

    def factory():
        return GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=profile.seed)
        )

    start = time.perf_counter()
    single = factory().fit(graphs, labels)
    single_seconds = time.perf_counter() - start

    cores = usable_cores()
    rows = [["single-shot fit", "-", f"{single_seconds:.3f}", "1.0x"]]
    sweep = {}
    shard_states = None
    for n_shards in SHARD_COUNTS:
        start = time.perf_counter()
        result = fit_sharded(factory, graphs, labels, n_shards=n_shards, n_jobs=N_JOBS)
        elapsed = time.perf_counter() - start
        _assert_identical(result.model, single)
        speedup = single_seconds / elapsed
        sweep[str(n_shards)] = {
            "seconds": round(elapsed, 4),
            "speedup_vs_single_shot": round(speedup, 2),
            # Recorded per entry so a sub-1x speedup on a small host reads as
            # what it is — a core-starved measurement, not a regression; the
            # speedup expectation below is only asserted when the host can
            # actually run this many workers concurrently.
            "usable_cores": cores,
            "cores_sufficient": bool(cores >= min(n_shards, N_JOBS)),
        }
        rows.append(
            [f"fit_sharded (k={n_shards})", n_shards, f"{elapsed:.3f}", f"{speedup:.2f}x"]
        )
        if n_shards == max(SHARD_COUNTS):
            shard_states = result.shard_states

    # The pure reduce step over the widest sharding.
    start = time.perf_counter()
    merged = merge_states(shard_states)
    merge_seconds = time.perf_counter() - start
    assert merged.num_samples == len(graphs)
    rows.append(
        [f"merge_states (k={max(SHARD_COUNTS)})", max(SHARD_COUNTS), f"{merge_seconds:.3f}", "-"]
    )

    _RESULTS.update(
        {
            "num_graphs": len(dataset),
            "n_jobs": N_JOBS,
            "usable_cores": cores,
            "single_shot_seconds": round(single_seconds, 4),
            "merge_seconds": round(merge_seconds, 4),
            "shards": sweep,
            "identical_results": True,
        }
    )
    _flush_results()
    print_report(
        f"Sharded map-reduce training: {len(dataset)} graphs, d={DIMENSION}, "
        f"n_jobs={N_JOBS}, {cores} usable cores",
        render_table(["configuration", "shards", "seconds", "speedup"], rows),
    )
    # The reduce step must stay negligible: merging k int64 accumulator sets
    # is microseconds next to encoding thousands of graphs.
    assert merge_seconds < single_seconds / 10
    if cores >= N_JOBS and parallelism_available():
        best = max(value["speedup_vs_single_shot"] for value in sweep.values())
        assert best >= 1.5, (
            f"expected sharded training to beat single-shot on {cores} cores, "
            f"best measured speedup {best:.2f}x"
        )
