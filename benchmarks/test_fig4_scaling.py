"""Figure 4: training time as a function of graph size.

Regenerates the scaling experiment of Section V-B: synthetic Erdős–Rényi
datasets (2 classes, edge probability 0.05) with increasing vertex counts;
GraphHD is compared against GIN-eps and WL-OA.  The paper reports GraphHD's
scaling profile to be up to an order of magnitude below the baselines, with
6.2x (GIN-eps) and 15.0x (WL-OA) faster training at the largest measured
graphs (980 vertices).
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_scaling_dataset
from repro.eval.reporting import render_series
from repro.eval.scaling import scaling_experiment

from conftest import print_report

#: Approximate training times (seconds) read off Figure 4 of the paper, used
#: only for the side-by-side report.
PAPER_FIGURE4_TRAIN_SECONDS = {
    "GraphHD": {100: 0.2, 250: 0.45, 500: 1.0, 750: 1.7, 980: 2.5},
    "GIN-e": {100: 2.5, 250: 3.5, 500: 6.0, 750: 10.0, 980: 15.5},
    "WL-OA": {100: 1.0, 250: 3.0, 500: 10.0, 750: 22.0, 980: 37.5},
}


@pytest.fixture(scope="module")
def scaling_points(profile):
    """The Figure 4 sweep, shared by the benchmarks in this module."""
    return scaling_experiment(
        profile.scaling_sizes,
        methods=("GraphHD", "GIN-e", "WL-OA"),
        num_graphs=profile.scaling_num_graphs,
        edge_probability=0.05,
        fast=False,
        seed=profile.seed,
        dimension=profile.dimension,
        # Figure 4 plots the paper's training time (encoding included), so
        # the sweep runs without the evaluation-layer encoding cache.
        encoding_cache=False,
    )


@pytest.mark.benchmark(group="figure4")
def test_fig4_scaling_profile(benchmark, profile, scaling_points):
    """Regenerate the Figure 4 series and check GraphHD has the lowest profile."""
    # Benchmark GraphHD training at the largest sweep point.
    largest = profile.scaling_sizes[-1]
    dataset = make_scaling_dataset(
        largest, num_graphs=profile.scaling_num_graphs, seed=profile.seed
    )
    split = int(len(dataset) * 0.9)

    def train_graphhd_at_largest_size():
        model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
        model.fit(dataset.graphs[:split], dataset.labels[:split])
        return model

    benchmark.pedantic(train_graphhd_at_largest_size, rounds=1, iterations=1)

    sizes = [point.num_vertices for point in scaling_points]
    methods = ("GraphHD", "GIN-e", "WL-OA")
    measured_series = {
        method: [round(point.train_seconds[method], 3) for point in scaling_points]
        for method in methods
    }
    print_report(
        "Figure 4: training time vs. graph size — measured (this reproduction)",
        render_series(sizes, measured_series, x_name="vertices"),
    )
    paper_series = {
        method: [PAPER_FIGURE4_TRAIN_SECONDS[method].get(size, "-") for size in sizes]
        for method in methods
    }
    print_report(
        "Figure 4: training time vs. graph size — paper (approximate, authors' testbed)",
        render_series(sizes, paper_series, x_name="vertices"),
    )

    largest_point = scaling_points[-1]
    graphhd_time = largest_point.train_seconds["GraphHD"]
    gin_speedup = largest_point.train_seconds["GIN-e"] / graphhd_time
    wloa_speedup = largest_point.train_seconds["WL-OA"] / graphhd_time
    print_report(
        "Figure 4: speed-ups at the largest measured graphs",
        f"GraphHD is {gin_speedup:.1f}x faster than GIN-e "
        f"(paper: 6.2x) and {wloa_speedup:.1f}x faster than WL-OA (paper: 15.0x) "
        f"at {largest_point.num_vertices} vertices.",
    )

    # Qualitative shape.  On the authors' 20-core/GPU testbed GraphHD's
    # massively parallel encoding gives it a large margin; on this
    # single-core numpy substrate the GNN baseline benefits from highly
    # optimized dense BLAS while GraphHD's sparse binding runs at memory
    # bandwidth, so the GNN margin shrinks (see EXPERIMENTS.md).  We require
    # the ordering against the kernel method to hold and GraphHD to stay in
    # the same league as the GNN at the largest graphs.
    assert wloa_speedup > 0.75, (
        f"GraphHD must stay competitive with WL-OA at the largest graphs "
        f"(got {wloa_speedup:.2f}x)"
    )
    assert gin_speedup > 0.6, (
        f"GraphHD fell far behind GIN-e at the largest graphs ({gin_speedup:.2f}x)"
    )

    # GraphHD must remain the cheapest (or tied-cheapest) trainer at every
    # sweep point — its profile never climbs meaningfully above the cheaper
    # of the two baselines.  Run-to-run timer noise at the largest point is
    # around 20-30% on a busy single-core machine, hence the 1.5x margin.
    for point in scaling_points:
        cheapest_baseline = min(point.train_seconds["GIN-e"], point.train_seconds["WL-OA"])
        assert point.train_seconds["GraphHD"] <= 1.5 * cheapest_baseline, (
            f"GraphHD is not competitive at {point.num_vertices} vertices"
        )


@pytest.mark.benchmark(group="figure4")
def test_fig4_graphhd_scaling_is_subquadratic_in_vertices(benchmark, profile, scaling_points):
    """GraphHD training time grows roughly with the number of edges (~n^2 p), not worse.

    Under the Erdős–Rényi model with fixed edge probability the number of
    edges grows quadratically with the vertex count, so the expected training
    time ratio between the largest and smallest sweep points is bounded by
    ``(n_max / n_min)^2`` (plus lower-order PageRank terms); a super-quadratic
    blow-up would indicate an implementation regression.
    """
    smallest = make_scaling_dataset(
        profile.scaling_sizes[0], num_graphs=profile.scaling_num_graphs, seed=profile.seed
    )
    split = int(len(smallest) * 0.9)

    def train_graphhd_at_smallest_size():
        model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
        model.fit(smallest.graphs[:split], smallest.labels[:split])
        return model

    benchmark.pedantic(train_graphhd_at_smallest_size, rounds=1, iterations=1)

    first, last = scaling_points[0], scaling_points[-1]
    size_ratio = last.num_vertices / first.num_vertices
    time_ratio = last.train_seconds["GraphHD"] / max(
        first.train_seconds["GraphHD"], 1e-9
    )
    assert time_ratio < 3.0 * size_ratio**2
