"""Figure 3 (left): classification accuracy of the five methods on six datasets.

Regenerates the accuracy panel of Figure 3: GraphHD vs the kernel methods
(1-WL, WL-OA) and the GNNs (GIN-eps, GIN-eps-JK) under cross-validation.  The
paper's qualitative finding is that GraphHD reaches comparable accuracy on
most datasets, with the kernel methods ahead on the hardest, least
structure-separable datasets (NCI1, ENZYMES).
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.reporting import render_panel

from conftest import print_report

#: Accuracy values read off Figure 3 (left) of the paper, used only for the
#: side-by-side report; absolute values are not expected to match because the
#: datasets are synthetic stand-ins.
PAPER_ACCURACY = {
    "DD": {"GraphHD": 0.70, "1-WL": 0.74, "WL-OA": 0.75, "GIN-e": 0.71, "GIN-e-JK": 0.71},
    "ENZYMES": {"GraphHD": 0.25, "1-WL": 0.38, "WL-OA": 0.37, "GIN-e": 0.26, "GIN-e-JK": 0.26},
    "MUTAG": {"GraphHD": 0.85, "1-WL": 0.86, "WL-OA": 0.85, "GIN-e": 0.85, "GIN-e-JK": 0.85},
    "NCI1": {"GraphHD": 0.64, "1-WL": 0.78, "WL-OA": 0.78, "GIN-e": 0.66, "GIN-e-JK": 0.66},
    "PROTEINS": {"GraphHD": 0.72, "1-WL": 0.72, "WL-OA": 0.73, "GIN-e": 0.72, "GIN-e-JK": 0.72},
    "PTC_FM": {"GraphHD": 0.60, "1-WL": 0.61, "WL-OA": 0.61, "GIN-e": 0.61, "GIN-e-JK": 0.62},
}


@pytest.mark.benchmark(group="figure3")
def test_fig3_accuracy(benchmark, profile, benchmark_datasets, figure3_comparison):
    """Regenerate the accuracy panel and check GraphHD is comparable to baselines."""
    # Benchmark one representative unit of the experiment: training GraphHD on
    # one fold of the MUTAG-style dataset.
    mutag = benchmark_datasets["MUTAG"]
    split = int(len(mutag) * 0.9)

    def train_graphhd_one_fold():
        model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
        model.fit(mutag.graphs[:split], mutag.labels[:split])
        return model

    benchmark.pedantic(train_graphhd_one_fold, rounds=1, iterations=1)

    measured = figure3_comparison.accuracy_table()
    print_report(
        "Figure 3 (left): accuracy — measured (this reproduction)",
        render_panel(measured, title="accuracy", value_name="mean over folds"),
    )
    print_report(
        "Figure 3 (left): accuracy — paper (real TUDataset, full protocol)",
        render_panel(PAPER_ACCURACY, title="accuracy", value_name="approximate values"),
    )

    for dataset_name, dataset in benchmark_datasets.items():
        row = measured[dataset_name]
        majority = max(dataset.class_counts().values()) / len(dataset)
        # GraphHD must beat the majority-class baseline on the clearly
        # structure-separable datasets.  The paper itself reports GraphHD
        # trailing the kernels substantially on the two hardest datasets
        # (NCI1 by ~18%, ENZYMES by ~12%), so those are exempt.
        if dataset_name not in ("NCI1", "ENZYMES"):
            assert row["GraphHD"] > majority, (
                f"GraphHD failed to beat the majority baseline on {dataset_name}"
            )
        # GraphHD must be comparable to the strongest baseline: the paper
        # reports gaps up to ~18% (NCI1); allow additional slack because the
        # subsampled synthetic datasets have higher fold-to-fold variance.
        best_baseline = max(
            value for method, value in row.items() if method != "GraphHD"
        )
        assert row["GraphHD"] >= best_baseline - 0.35, (
            f"GraphHD accuracy on {dataset_name} is not comparable: "
            f"{row['GraphHD']:.3f} vs best baseline {best_baseline:.3f}"
        )
