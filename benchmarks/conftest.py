"""Shared configuration and fixtures for the benchmark harness.

Every table and figure of the paper has one benchmark module:

========================  =====================================================
``test_table1_*``         Table I  — dataset statistics
``test_fig3_*``           Figure 3 — accuracy / training time / inference time
``test_fig4_*``           Figure 4 — training time vs. graph size
``test_headline_*``       the abstract's 14.6x / 2.0x speed-up claim
``test_ablation_*``       design-choice ablations called out in DESIGN.md
========================  =====================================================

Because the original evaluation (10-fold cross-validation repeated 3 times on
the full datasets, 10,000-dimensional hypervectors, full hyper-parameter
grids) takes many CPU-hours on a laptop, the harness has two profiles chosen
with the ``GRAPHHD_BENCH_PROFILE`` environment variable:

* ``quick`` (default): every dataset is subsampled to roughly 30-60 graphs,
  3 folds, 1 repetition.  All five methods keep their full training protocol
  (GNN schedule, kernel hyper-parameter grids), so the relative shape of the
  results — who wins, by roughly what factor — is preserved while the whole
  harness finishes in tens of minutes.
* ``full``: the paper's protocol (full datasets, 10 folds, 3 repetitions).

The numeric results are printed as plain-text tables next to the values the
paper reports, and the same numbers are summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.datasets.registry import load_dataset
from repro.eval.comparison import ComparisonResult, compare_methods

#: Number of graphs of each dataset in Table I, used to derive subsample scales.
TABLE1_GRAPH_COUNTS = {
    "DD": 1178,
    "ENZYMES": 600,
    "MUTAG": 188,
    "NCI1": 4110,
    "PROTEINS": 1113,
    "PTC_FM": 349,
}

#: Paper-reported values used for side-by-side printing (read from Table I and
#: the description of the results in Section VI).
PAPER_TABLE1 = {
    "DD": (1178, 2, 284.32, 715.66),
    "ENZYMES": (600, 6, 32.63, 62.14),
    "MUTAG": (188, 2, 17.93, 19.79),
    "NCI1": (4110, 2, 29.87, 32.30),
    "PROTEINS": (1113, 2, 39.06, 72.82),
    "PTC_FM": (349, 2, 14.11, 14.48),
}


@dataclass
class BenchProfile:
    """Benchmark sizing knobs derived from ``GRAPHHD_BENCH_PROFILE``."""

    name: str
    target_graphs_per_dataset: int
    dd_target_graphs: int
    n_splits: int
    repetitions: int
    dimension: int
    scaling_sizes: tuple[int, ...]
    scaling_num_graphs: int
    seed: int = 0

    def dataset_scale(self, dataset_name: str) -> float:
        """Subsampling fraction applied to ``dataset_name``."""
        total = TABLE1_GRAPH_COUNTS[dataset_name]
        target = (
            self.dd_target_graphs
            if dataset_name == "DD"
            else self.target_graphs_per_dataset
        )
        return min(1.0, target / total)


def current_profile() -> BenchProfile:
    """Profile selected by the ``GRAPHHD_BENCH_PROFILE`` environment variable."""
    name = os.environ.get("GRAPHHD_BENCH_PROFILE", "quick").lower()
    if name == "full":
        return BenchProfile(
            name="full",
            target_graphs_per_dataset=10**9,
            dd_target_graphs=10**9,
            n_splits=10,
            repetitions=3,
            dimension=10_000,
            scaling_sizes=(100, 250, 500, 750, 980),
            scaling_num_graphs=100,
        )
    if name != "quick":
        raise ValueError(
            f"unknown GRAPHHD_BENCH_PROFILE={name!r}; expected 'quick' or 'full'"
        )
    return BenchProfile(
        name="quick",
        target_graphs_per_dataset=48,
        dd_target_graphs=30,
        n_splits=3,
        repetitions=1,
        dimension=10_000,
        scaling_sizes=(100, 300, 600, 980),
        scaling_num_graphs=60,
    )


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    return current_profile()


@pytest.fixture(scope="session")
def benchmark_datasets(profile):
    """The six benchmark datasets, subsampled according to the profile."""
    datasets = {}
    for name in sorted(TABLE1_GRAPH_COUNTS):
        datasets[name] = load_dataset(
            name, scale=profile.dataset_scale(name), seed=profile.seed
        )
    return datasets


@pytest.fixture(scope="session")
def figure3_comparison(profile, benchmark_datasets) -> ComparisonResult:
    """The shared Figure 3 experiment: 5 methods x 6 datasets, cross-validated.

    Computed once per benchmark session; the accuracy, training-time and
    inference-time benchmarks all read from this result.
    """
    return compare_methods(
        list(benchmark_datasets.values()),
        methods=("GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK"),
        fast=False,
        n_splits=profile.n_splits,
        repetitions=profile.repetitions,
        seed=profile.seed,
        dimension=profile.dimension,
        # The paper's protocol measures full per-fold training (encoding
        # included), so the Figure 3 timings run without the evaluation
        # layer's encoding cache; test_encoding_throughput.py benchmarks the
        # cached protocol separately.
        encoding_cache=False,
    )


#: Report blocks collected during the run; flushed to the terminal summary and
#: to ``benchmark_reports.txt`` so they are visible even under output capture.
_REPORTS: list[str] = []

REPORT_FILE = os.path.join(os.path.dirname(__file__), os.pardir, "benchmark_reports.txt")


def print_report(title: str, body: str) -> None:
    """Record and print a benchmark report block (tables next to paper values)."""
    separator = "=" * max(len(title), 20)
    block = f"{separator}\n{title}\n{separator}\n{body}\n"
    _REPORTS.append(block)
    print("\n" + block)


def pytest_sessionstart(session):
    _REPORTS.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Show every recorded report after the benchmark table and save them to disk."""
    if not _REPORTS:
        return
    terminalreporter.section("GraphHD reproduction reports (measured vs. paper)")
    for block in _REPORTS:
        terminalreporter.write_line(block)
    try:
        with open(os.path.abspath(REPORT_FILE), "w", encoding="utf-8") as handle:
            handle.write("\n".join(_REPORTS))
        terminalreporter.write_line(
            f"Reports written to {os.path.abspath(REPORT_FILE)}"
        )
    except OSError:
        pass
