"""Headline claim: average training and inference speed-up of GraphHD over GNNs.

The abstract reports that, compared to the state-of-the-art GNNs, GraphHD
"achieves comparable accuracy, while training and inference times are on
average 14.6x and 2.0x faster, respectively"; Section VI additionally reports
large speed-ups over the kernel methods on the biggest datasets.  This
benchmark aggregates the Figure 3 measurements into those headline numbers.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.reporting import render_table

from conftest import print_report

PAPER_HEADLINE = {
    ("GIN", "train"): 14.6,
    ("GIN", "inference"): 2.0,
}


@pytest.mark.benchmark(group="headline")
def test_headline_speedups(benchmark, profile, benchmark_datasets, figure3_comparison):
    """Aggregate Figure 3 into the abstract's average speed-up numbers."""
    # Benchmark one GraphHD end-to-end fit+predict round on the largest-graph
    # dataset as the representative unit of the headline measurement.
    dd = benchmark_datasets["DD"]
    split = int(len(dd) * 0.9)

    def graphhd_round_trip():
        model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
        model.fit(dd.graphs[:split], dd.labels[:split])
        return model.predict(dd.graphs[split:])

    benchmark.pedantic(graphhd_round_trip, rounds=1, iterations=1)

    gnn_methods = ("GIN-e", "GIN-e-JK")
    kernel_methods = ("1-WL", "WL-OA")

    train_speedups = figure3_comparison.speedup_over(
        gnn_methods + kernel_methods, metric="train"
    )
    inference_speedups = figure3_comparison.speedup_over(
        gnn_methods + kernel_methods, metric="inference"
    )

    rows = []
    for method in gnn_methods + kernel_methods:
        rows.append(
            [
                method,
                round(train_speedups.get(method, float("nan")), 2),
                round(inference_speedups.get(method, float("nan")), 2),
            ]
        )
    rows.append(["paper (vs GNNs, avg)", PAPER_HEADLINE[("GIN", "train")], PAPER_HEADLINE[("GIN", "inference")]])
    print_report(
        "Headline: GraphHD speed-up over each baseline "
        "(geometric mean over datasets; >1 means GraphHD is faster)",
        render_table(["baseline", "training speed-up", "inference speed-up"], rows),
    )

    # Qualitative reproduction of the headline: GraphHD trains faster than
    # both GNNs and both kernel methods on average (the paper reports 14.6x
    # vs the GNNs and up to 77x vs the kernels on NCI1).
    for method in gnn_methods + kernel_methods:
        assert train_speedups[method] > 1.0, (
            f"GraphHD is not faster than {method} at training on average"
        )

    # Inference: the paper reports GraphHD 2.0x faster than the GNNs on
    # average.  On this single-core substrate the tiny GIN forward pass is
    # cheaper than 10,000-dimensional encoding (see EXPERIMENTS.md), so we
    # only require GraphHD inference to stay within two orders of magnitude
    # of every baseline and report the measured ratios above.
    for method in gnn_methods + kernel_methods:
        assert inference_speedups[method] > 0.01, (
            f"GraphHD inference is pathologically slower than {method}"
        )
