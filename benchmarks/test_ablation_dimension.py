"""Ablation: hypervector dimensionality.

The paper fixes d = 10,000 without exploring alternatives.  This ablation
sweeps the dimensionality and records accuracy and training time, showing the
usual HDC trade-off: accuracy saturates well before 10,000 dimensions on
small graphs while training cost grows linearly with d.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import render_table

from conftest import print_report

DIMENSIONS = (256, 1024, 4096, 10_000)


@pytest.mark.benchmark(group="ablation")
def test_ablation_dimensionality(benchmark, profile, benchmark_datasets):
    """Sweep the hypervector dimensionality on the MUTAG-style dataset."""
    dataset = benchmark_datasets["MUTAG"]

    def run_paper_dimension():
        return cross_validate(
            lambda: GraphHDClassifier(GraphHDConfig(dimension=10_000, seed=0)),
            dataset,
            method_name="GraphHD[d=10000]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    paper_dimension_result = benchmark.pedantic(run_paper_dimension, rounds=1, iterations=1)

    results = {}
    for dimension in DIMENSIONS:
        if dimension == 10_000:
            results[dimension] = paper_dimension_result
            continue
        results[dimension] = cross_validate(
            lambda dimension=dimension: GraphHDClassifier(
                GraphHDConfig(dimension=dimension, seed=0)
            ),
            dataset,
            method_name=f"GraphHD[d={dimension}]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    rows = [
        [
            dimension,
            round(results[dimension].mean_accuracy, 3),
            round(results[dimension].std_accuracy, 3),
            round(results[dimension].mean_train_seconds, 4),
        ]
        for dimension in DIMENSIONS
    ]
    print_report(
        "Ablation: hypervector dimensionality (MUTAG-style dataset)",
        render_table(["dimension", "accuracy", "std", "train seconds/fold"], rows),
    )

    # Accuracy at the paper's dimensionality must be at least as good as at
    # the smallest dimensionality (up to noise), and small dimensions must
    # train no slower than the paper's d=10,000.
    assert (
        results[10_000].mean_accuracy >= results[256].mean_accuracy - 0.05
    )
    assert results[256].mean_train_seconds <= results[10_000].mean_train_seconds * 1.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_pagerank_iterations(benchmark, profile, benchmark_datasets):
    """Sweep the number of PageRank iterations (the paper fixes 10)."""
    dataset = benchmark_datasets["PROTEINS"]
    iterations_grid = (1, 2, 5, 10, 20)

    def run_paper_iterations():
        return cross_validate(
            lambda: GraphHDClassifier(
                GraphHDConfig(
                    dimension=profile.dimension, pagerank_iterations=10, seed=0
                )
            ),
            dataset,
            method_name="GraphHD[iters=10]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    paper_result = benchmark.pedantic(run_paper_iterations, rounds=1, iterations=1)

    results = {}
    for iterations in iterations_grid:
        if iterations == 10:
            results[iterations] = paper_result
            continue
        results[iterations] = cross_validate(
            lambda iterations=iterations: GraphHDClassifier(
                GraphHDConfig(
                    dimension=profile.dimension,
                    pagerank_iterations=iterations,
                    seed=0,
                )
            ),
            dataset,
            method_name=f"GraphHD[iters={iterations}]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    rows = [
        [
            iterations,
            round(results[iterations].mean_accuracy, 3),
            round(results[iterations].mean_train_seconds, 4),
        ]
        for iterations in iterations_grid
    ]
    print_report(
        "Ablation: PageRank iterations (PROTEINS-style dataset) — "
        "the paper fixes 10 because accuracy has plateaued",
        render_table(["iterations", "accuracy", "train seconds/fold"], rows),
    )

    # The paper's claim: accuracy has plateaued by 10 iterations, i.e. more
    # iterations make no significant difference.  Fold-to-fold variance on
    # the subsampled quick profile is around +/-0.1, so the tolerance is
    # correspondingly loose.
    assert abs(results[20].mean_accuracy - results[10].mean_accuracy) <= 0.20
    assert abs(results[10].mean_accuracy - results[5].mean_accuracy) <= 0.20
