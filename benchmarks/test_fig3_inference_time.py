"""Figure 3 (right): per-graph inference time of the five methods on six datasets.

Regenerates the inference-time panel of Figure 3 (log scale in the paper).
The paper reports GraphHD as the fastest method at inference on every
dataset, with the kernel methods an order of magnitude slower on the largest
graphs (their prediction requires kernel evaluations against the training
set) and the GNNs roughly comparable but slightly slower.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.reporting import render_panel

from conftest import print_report


@pytest.mark.benchmark(group="figure3")
def test_fig3_inference_time(benchmark, profile, benchmark_datasets, figure3_comparison):
    """Regenerate the inference-time panel and check GraphHD is competitive."""
    # Benchmark GraphHD inference on the dataset with the largest graphs.
    dd = benchmark_datasets["DD"]
    split = int(len(dd) * 0.9)
    model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
    model.fit(dd.graphs[:split], dd.labels[:split])
    test_graphs = dd.graphs[split:]

    benchmark.pedantic(lambda: model.predict(test_graphs), rounds=1, iterations=1)

    measured = figure3_comparison.inference_time_table()
    print_report(
        "Figure 3 (right): inference time per graph in seconds (log scale in the paper)",
        render_panel(measured, title="inference time", value_name="seconds per graph"),
    )

    for dataset_name, row in measured.items():
        assert row["GraphHD"] > 0
        # Absolute sanity: GraphHD inference stays in the low-millisecond
        # range per graph even for the largest graphs.
        assert row["GraphHD"] < 0.1

    # The strongest inference claim of the paper concerns the kernel methods
    # on the largest graphs: on DD they are reported 21.7x slower, because
    # kernel prediction requires evaluating the kernel against the training
    # set.  Require the kernels not to be faster than GraphHD on DD by more
    # than a small margin.  (The GNN-side claim — GraphHD 10.5% faster than
    # the GNNs — does not transfer to this substrate: a 33->32->2 GIN forward
    # pass on a single CPU core is cheaper than 10,000-dimensional HDC
    # encoding, whereas the paper amortizes the encoding over massively
    # parallel hardware.  See EXPERIMENTS.md.)
    dd_row = measured["DD"]
    assert dd_row["GraphHD"] < 0.05, "GraphHD inference on DD left the ms range"
    assert dd_row["GraphHD"] < 10.0 * dd_row["WL-OA"], (
        "WL-OA inference should not be an order of magnitude faster than "
        "GraphHD on the largest graphs"
    )
    assert dd_row["GraphHD"] < 10.0 * dd_row["1-WL"]
