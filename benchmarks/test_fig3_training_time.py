"""Figure 3 (middle): training time per fold of the five methods on six datasets.

Regenerates the training-time panel of Figure 3 (log scale in the paper).
The qualitative claim being reproduced: GraphHD trains significantly faster
than both the kernel and the GNN methods on every dataset, with the largest
margins on the datasets with the largest graphs (DD) and the most graphs
(NCI1).
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.reporting import render_panel

from conftest import print_report


@pytest.mark.benchmark(group="figure3")
def test_fig3_training_time(benchmark, profile, benchmark_datasets, figure3_comparison):
    """Regenerate the training-time panel and check GraphHD trains fastest."""
    # Benchmark GraphHD training on the dataset with the largest graphs (DD).
    dd = benchmark_datasets["DD"]
    split = int(len(dd) * 0.9)

    def train_graphhd_on_dd_fold():
        model = GraphHDClassifier(GraphHDConfig(dimension=profile.dimension, seed=0))
        model.fit(dd.graphs[:split], dd.labels[:split])
        return model

    benchmark.pedantic(train_graphhd_on_dd_fold, rounds=1, iterations=1)

    measured = figure3_comparison.training_time_table()
    print_report(
        "Figure 3 (middle): training time per fold in seconds (log scale in the paper)",
        render_panel(measured, title="training time", value_name="seconds per fold"),
    )

    slower_than_graphhd = 0
    comparisons = 0
    for dataset_name, row in measured.items():
        graphhd_time = row["GraphHD"]
        assert graphhd_time > 0
        for method, seconds in row.items():
            if method == "GraphHD":
                continue
            comparisons += 1
            if seconds > graphhd_time:
                slower_than_graphhd += 1

    # The paper reports GraphHD as the fastest trainer on every dataset; on
    # subsampled data and a single machine we require it to win the large
    # majority of comparisons and to win outright on the largest graphs (DD).
    assert slower_than_graphhd >= int(0.75 * comparisons), (
        f"GraphHD was faster in only {slower_than_graphhd}/{comparisons} comparisons"
    )
    dd_row = measured["DD"]
    for method in ("GIN-e", "GIN-e-JK", "WL-OA"):
        assert dd_row["GraphHD"] < dd_row[method], (
            f"GraphHD was not faster than {method} on DD"
        )
