"""Carry-save packed training kernels benchmark (perf trajectory).

Measures what the bit-sliced carry-save kernels buy the packed backend's
*training* side and merges the numbers into ``BENCH_encoding.json`` under the
``bitslice_kernels`` key:

* **training vs inference throughput** — vectors/second through the packed
  training path (segmented carry-save accumulation + word-space majority
  vote) against queries/second through the packed inference path (popcount
  Hamming + argmax), the issue's headline target being training within 2x of
  inference;
* **carry-save vs legacy unpack kernels** — the same training workload run
  through the pre-bitslice kernels (``np.unpackbits`` per block, int64
  component-space accumulation), re-implemented here verbatim as the
  measurement baseline;
* **popcount implementations** — ``np.bitwise_count`` (when the running
  NumPy provides it) against the byte-LUT fallback, plus which one the
  backend actually dispatches to.

All timed kernels are asserted bit-identical before the clocks start: a
fast wrong kernel must fail here, not in production.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import print_report
from repro.eval.reporting import render_table
from repro.hdc.backend import (
    POPCOUNT_IMPLEMENTATION,
    get_backend,
    pack_bipolar,
    popcount,
    popcount_lut,
)
from repro.hdc.hypervector import random_hypervectors
from repro.hdc.operations import normalize_hard

DIMENSION = 10_000
NUM_VECTORS = 2_048
NUM_CLASSES = 8
LEGACY_BLOCK_ROWS = 256

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_encoding.json"
)

_RESULTS: dict = {}


def _flush_results() -> None:
    """Merge this module's measurements into the shared benchmark file."""
    path = os.path.abspath(BENCH_FILE)
    payload: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload["bitslice_kernels"] = {
        "generated_by": "benchmarks/test_bitslice_kernels.py",
        "dimension": DIMENSION,
        **_RESULTS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------
# The pre-bitslice packed training kernels, reproduced as the measurement
# baseline: every block of packed words is expanded to a per-component bit
# matrix with np.unpackbits (the 8-64x transient blowup the carry-save
# kernels eliminate) and accumulated in int64 component space.
# --------------------------------------------------------------------------
def _legacy_unpack_bits(block: np.ndarray, dimension: int) -> np.ndarray:
    bytes_view = np.ascontiguousarray(block).view(np.uint8)
    return np.unpackbits(bytes_view, axis=1, bitorder="little")[:, :dimension]


def _legacy_segment_accumulate(
    matrix: np.ndarray, sorted_ids: np.ndarray, num_segments: int, dimension: int
) -> np.ndarray:
    output = np.zeros((num_segments, dimension), dtype=np.int64)
    unique_ids, starts = np.unique(sorted_ids, return_index=True)
    boundaries = np.append(starts, len(sorted_ids))
    for index, segment in enumerate(unique_ids):
        lo, hi = boundaries[index], boundaries[index + 1]
        for start in range(lo, hi, LEGACY_BLOCK_ROWS):
            block = matrix[start : min(start + LEGACY_BLOCK_ROWS, hi)]
            bits = _legacy_unpack_bits(block, dimension)
            output[segment] += block.shape[0] - 2 * bits.sum(
                axis=0, dtype=np.int64
            )
    return output


def _legacy_normalize(accumulators: np.ndarray) -> np.ndarray:
    return pack_bipolar(normalize_hard(accumulators, rng=0))


def test_training_vs_inference_throughput(profile):
    packed = get_backend("packed")
    matrix = random_hypervectors(NUM_VECTORS, DIMENSION, rng=profile.seed)
    words = pack_bipolar(matrix)
    ids = np.sort(
        np.random.default_rng(profile.seed).integers(
            0, NUM_CLASSES, size=NUM_VECTORS
        )
    )
    references = packed.random(NUM_CLASSES, DIMENSION, rng=profile.seed + 1)

    def train_carry_save():
        sums = packed.segment_accumulate(words, ids, NUM_CLASSES, DIMENSION)
        return packed.normalize(sums, rng=0)

    def train_legacy():
        sums = _legacy_segment_accumulate(words, ids, NUM_CLASSES, DIMENSION)
        return _legacy_normalize(sums)

    def infer():
        scores = packed.similarity_matrix(
            words, references, DIMENSION, metric="cosine"
        )
        return np.argmax(scores, axis=1)

    # Correctness before clocks: the carry-save path must reproduce the
    # legacy unpack path bit for bit (same class sums, same tie stream).
    assert np.array_equal(train_carry_save(), train_legacy())

    train_seconds = _best_of(train_carry_save)
    legacy_seconds = _best_of(train_legacy)
    infer_seconds = _best_of(infer)

    train_throughput = NUM_VECTORS / train_seconds
    infer_throughput = NUM_VECTORS / infer_seconds
    ratio = infer_throughput / train_throughput
    legacy_speedup = legacy_seconds / train_seconds

    _RESULTS["training_vs_inference"] = {
        "num_vectors": NUM_VECTORS,
        "num_classes": NUM_CLASSES,
        "train_seconds": round(train_seconds, 4),
        "legacy_unpack_train_seconds": round(legacy_seconds, 4),
        "inference_seconds": round(infer_seconds, 4),
        "train_vectors_per_second": round(train_throughput),
        "inference_queries_per_second": round(infer_throughput),
        "inference_to_training_ratio": round(ratio, 2),
        "carry_save_speedup_vs_unpack": round(legacy_speedup, 2),
        "identical_results": True,
    }
    _flush_results()
    print_report(
        f"Carry-save packed training kernels: {NUM_VECTORS} vectors, "
        f"{NUM_CLASSES} classes, d={DIMENSION}",
        render_table(
            ["kernel", "seconds", "throughput"],
            [
                [
                    "train (carry-save segment + word vote)",
                    f"{train_seconds:.4f}",
                    f"{train_throughput:,.0f} vec/s",
                ],
                [
                    "train (legacy unpackbits kernels)",
                    f"{legacy_seconds:.4f}",
                    f"{NUM_VECTORS / legacy_seconds:,.0f} vec/s",
                ],
                [
                    "inference (popcount Hamming + argmax)",
                    f"{infer_seconds:.4f}",
                    f"{infer_throughput:,.0f} qry/s",
                ],
            ],
        ),
    )
    # The issue's acceptance bar: training within 2x of inference, or — where
    # that is hardware-limited — an honestly recorded >=3x win over the
    # legacy unpack kernels.
    assert ratio <= 2.0 or legacy_speedup >= 3.0, (
        f"carry-save training is {ratio:.2f}x slower than inference and only "
        f"{legacy_speedup:.2f}x faster than the legacy unpack kernels"
    )


def test_popcount_implementations(profile):
    rng = np.random.default_rng(profile.seed)
    words = rng.integers(0, 2**64, size=(2_048, DIMENSION // 64), dtype=np.uint64)

    assert np.array_equal(
        popcount(words).astype(np.int64), popcount_lut(words).astype(np.int64)
    )

    active_seconds = _best_of(lambda: popcount(words).sum(axis=1, dtype=np.int64))
    lut_seconds = _best_of(lambda: popcount_lut(words).sum(axis=1, dtype=np.int64))

    _RESULTS["popcount"] = {
        "active_implementation": POPCOUNT_IMPLEMENTATION,
        "num_words": int(words.size),
        "active_seconds": round(active_seconds, 5),
        "byte_lut_seconds": round(lut_seconds, 5),
        "active_speedup_vs_lut": round(lut_seconds / active_seconds, 2),
    }
    _flush_results()
    print_report(
        f"Popcount implementations ({words.size:,} words)",
        render_table(
            ["implementation", "seconds"],
            [
                [f"active ({POPCOUNT_IMPLEMENTATION})", f"{active_seconds:.5f}"],
                ["byte-lut fallback", f"{lut_seconds:.5f}"],
            ],
        ),
    )
    # The active implementation must never be meaningfully slower than the
    # portable fallback it was preferred over.
    assert active_seconds <= lut_seconds * 1.5
