"""Table I: statistics of the graph datasets.

Regenerates the dataset-statistics table (number of graphs, classes, average
vertices, average edges) from the synthetic benchmark datasets and prints it
next to the values reported in the paper.  The benchmark measures the dataset
generation itself, which is the substrate every other experiment relies on.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import DATASET_SPECS, make_benchmark_dataset
from repro.eval.reporting import render_table

from conftest import PAPER_TABLE1, print_report


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_statistics(benchmark, profile, benchmark_datasets):
    """Regenerate Table I and check the synthetic datasets match its statistics."""
    # Benchmark the generation of one mid-sized dataset (the substrate cost).
    benchmark.pedantic(
        lambda: make_benchmark_dataset("MUTAG", scale=profile.dataset_scale("MUTAG"), seed=1),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in sorted(benchmark_datasets):
        stats = benchmark_datasets[name].statistics()
        paper_graphs, paper_classes, paper_vertices, paper_edges = PAPER_TABLE1[name]
        rows.append(
            [
                name,
                stats.num_graphs,
                paper_graphs,
                stats.num_classes,
                paper_classes,
                round(stats.avg_vertices, 2),
                paper_vertices,
                round(stats.avg_edges, 2),
                paper_edges,
            ]
        )
    table = render_table(
        [
            "dataset",
            "graphs",
            "graphs (paper)",
            "classes",
            "classes (paper)",
            "avg vertices",
            "avg vertices (paper)",
            "avg edges",
            "avg edges (paper)",
        ],
        rows,
    )
    print_report(
        "Table I: statistics of graph datasets (measured vs. paper)", table
    )

    for name, dataset in benchmark_datasets.items():
        stats = dataset.statistics()
        _, paper_classes, paper_vertices, paper_edges = PAPER_TABLE1[name]
        # Class structure must match exactly.
        assert stats.num_classes == paper_classes
        # Graph sizes must track Table I: loose tolerances because the quick
        # profile subsamples the datasets.
        assert abs(stats.avg_vertices - paper_vertices) / paper_vertices < 0.40
        assert abs(stats.avg_edges - paper_edges) / paper_edges < 0.75


@pytest.mark.benchmark(group="table1")
def test_table1_full_scale_graph_counts(benchmark):
    """At scale 1.0 the generators reproduce the exact Table I graph counts."""

    def generate_smallest_full_dataset():
        return make_benchmark_dataset("MUTAG", scale=1.0, seed=0)

    dataset = benchmark.pedantic(generate_smallest_full_dataset, rounds=1, iterations=1)
    assert len(dataset) == DATASET_SPECS["MUTAG"].num_graphs

    rows = []
    for name, spec in DATASET_SPECS.items():
        rows.append([name, spec.num_graphs, PAPER_TABLE1[name][0]])
    print_report(
        "Table I: full-scale graph counts (spec vs. paper)",
        render_table(["dataset", "spec graphs", "paper graphs"], rows),
    )
    for name, spec in DATASET_SPECS.items():
        assert spec.num_graphs == PAPER_TABLE1[name][0]
