"""Ablation: bundling normalization, similarity metric, and the paper's extensions.

Covers the remaining design choices listed in DESIGN.md §5:

* majority-vote (sign) normalization of graph hypervectors vs. raw integer
  accumulators;
* cosine vs. Hamming similarity at inference;
* the future-work extensions (retraining, multiple class vectors per class)
  that trade efficiency for accuracy, quantifying what they buy on a
  benchmark-style dataset.
"""

from __future__ import annotations

import time

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.extensions import (
    MultiCentroidGraphHDClassifier,
    RetrainedGraphHDClassifier,
)
from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import render_table

from conftest import print_report


@pytest.mark.benchmark(group="ablation")
def test_ablation_normalization_and_similarity(benchmark, profile, benchmark_datasets):
    """Sign-normalized vs. integer graph hypervectors, cosine vs. Hamming."""
    dataset = benchmark_datasets["MUTAG"]

    configurations = {
        "bipolar + cosine (paper)": dict(normalize=True, metric="cosine"),
        "integer + cosine": dict(normalize=False, metric="cosine"),
        "bipolar + hamming": dict(normalize=True, metric="hamming"),
    }

    def run_paper_configuration():
        return cross_validate(
            lambda: GraphHDClassifier(
                GraphHDConfig(
                    dimension=profile.dimension,
                    normalize_graph_hypervectors=True,
                    seed=0,
                ),
                metric="cosine",
            ),
            dataset,
            method_name="GraphHD[paper]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    results = {"bipolar + cosine (paper)": benchmark.pedantic(
        run_paper_configuration, rounds=1, iterations=1
    )}
    for name, options in configurations.items():
        if name in results:
            continue
        results[name] = cross_validate(
            lambda options=options: GraphHDClassifier(
                GraphHDConfig(
                    dimension=profile.dimension,
                    normalize_graph_hypervectors=options["normalize"],
                    seed=0,
                ),
                metric=options["metric"],
            ),
            dataset,
            method_name=f"GraphHD[{name}]",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    rows = [
        [name, round(result.mean_accuracy, 3), round(result.mean_train_seconds, 4)]
        for name, result in results.items()
    ]
    print_report(
        "Ablation: bundling normalization and similarity metric (MUTAG-style dataset)",
        render_table(["configuration", "accuracy", "train seconds/fold"], rows),
    )

    paper_accuracy = results["bipolar + cosine (paper)"].mean_accuracy
    for name, result in results.items():
        # All three variants are legitimate HDC designs; none should collapse.
        assert result.mean_accuracy > 0.5, name
    # The paper's configuration should be competitive with the alternatives.
    best = max(result.mean_accuracy for result in results.values())
    assert paper_accuracy >= best - 0.15


@pytest.mark.benchmark(group="ablation")
def test_ablation_accuracy_efficiency_extensions(benchmark, profile, benchmark_datasets):
    """Future-work extensions: retraining and multi-centroid class vectors.

    Section VII asks to what extent GraphHD's efficiency can be traded for
    accuracy.  This benchmark quantifies the trade on the ENZYMES-style
    dataset (the hardest one): extra training cost vs. accuracy gained.
    """
    dataset = benchmark_datasets["ENZYMES"]
    config = GraphHDConfig(dimension=profile.dimension, seed=0)

    variants = {
        "GraphHD (baseline)": lambda: GraphHDClassifier(config),
        "GraphHD + retraining (10 epochs)": lambda: RetrainedGraphHDClassifier(
            config, retrain_epochs=10
        ),
        "GraphHD + 2 centroids per class": lambda: MultiCentroidGraphHDClassifier(
            config, centroids_per_class=2
        ),
    }

    def run_baseline():
        return cross_validate(
            variants["GraphHD (baseline)"],
            dataset,
            method_name="GraphHD",
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    results = {"GraphHD (baseline)": benchmark.pedantic(run_baseline, rounds=1, iterations=1)}
    for name, factory in variants.items():
        if name in results:
            continue
        results[name] = cross_validate(
            factory,
            dataset,
            method_name=name,
            n_splits=profile.n_splits,
            repetitions=1,
            seed=profile.seed,
            encoding_cache=False,
        )

    baseline = results["GraphHD (baseline)"]
    rows = []
    for name, result in results.items():
        slowdown = result.mean_train_seconds / max(baseline.mean_train_seconds, 1e-9)
        rows.append(
            [
                name,
                round(result.mean_accuracy, 3),
                round(result.mean_train_seconds, 4),
                f"{slowdown:.1f}x",
            ]
        )
    print_report(
        "Ablation: accuracy/efficiency trade-off of the paper's future-work "
        "extensions (ENZYMES-style dataset)",
        render_table(
            ["variant", "accuracy", "train seconds/fold", "training cost vs baseline"],
            rows,
        ),
    )

    for name, result in results.items():
        assert 0.0 <= result.mean_accuracy <= 1.0
        assert result.mean_train_seconds > 0
    # The extensions must not be catastrophically worse than the baseline.
    for name in (
        "GraphHD + retraining (10 epochs)",
        "GraphHD + 2 centroids per class",
    ):
        assert results[name].mean_accuracy >= baseline.mean_accuracy - 0.15
