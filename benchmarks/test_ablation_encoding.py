"""Ablation: vertex identifier choice (the core design decision of GraphHD).

The paper's key encoding idea is to identify vertices across graphs by their
PageRank centrality *rank*.  This ablation replaces PageRank with degree
centrality, eigenvector centrality and a random (no cross-graph meaning)
identifier, and measures cross-validated accuracy on two benchmark-style
datasets.  Expected shape: any meaningful centrality beats the random
identifier; PageRank and eigenvector/degree centralities perform similarly on
small sparse graphs.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import render_table

from conftest import print_report

CENTRALITIES = ("pagerank", "degree", "eigenvector", "random")


@pytest.mark.benchmark(group="ablation")
def test_ablation_vertex_identifier(benchmark, profile, benchmark_datasets):
    """Compare PageRank-rank identifiers against degree/eigenvector/random."""
    datasets = [benchmark_datasets["MUTAG"], benchmark_datasets["PROTEINS"]]

    def run_pagerank_configuration():
        results = {}
        for dataset in datasets:
            results[dataset.name] = cross_validate(
                lambda: GraphHDClassifier(
                    GraphHDConfig(
                        dimension=profile.dimension, centrality="pagerank", seed=0
                    )
                ),
                dataset,
                method_name="GraphHD[pagerank]",
                n_splits=profile.n_splits,
                repetitions=1,
                seed=profile.seed,
                encoding_cache=False,
            )
        return results

    pagerank_results = benchmark.pedantic(
        run_pagerank_configuration, rounds=1, iterations=1
    )

    accuracy: dict[str, dict[str, float]] = {
        dataset.name: {"pagerank": pagerank_results[dataset.name].mean_accuracy}
        for dataset in datasets
    }
    for centrality in CENTRALITIES[1:]:
        for dataset in datasets:
            result = cross_validate(
                lambda centrality=centrality: GraphHDClassifier(
                    GraphHDConfig(
                        dimension=profile.dimension, centrality=centrality, seed=0
                    )
                ),
                dataset,
                method_name=f"GraphHD[{centrality}]",
                n_splits=profile.n_splits,
                repetitions=1,
                seed=profile.seed,
                encoding_cache=False,
            )
            accuracy[dataset.name][centrality] = result.mean_accuracy

    rows = [
        [name] + [round(accuracy[name][centrality], 3) for centrality in CENTRALITIES]
        for name in accuracy
    ]
    print_report(
        "Ablation: vertex identifier (cross-validated accuracy)",
        render_table(["dataset"] + list(CENTRALITIES), rows),
    )

    for name, row in accuracy.items():
        meaningful = max(row["pagerank"], row["degree"], row["eigenvector"])
        # A topology-aware identifier must not lose badly to the random one,
        # and PageRank (the paper's choice) must be competitive with the best
        # alternative centrality (the subsampled quick profile is noisy, so
        # the tolerance is generous; at full scale the gap shrinks further).
        assert meaningful >= row["random"] - 0.05, name
        assert row["pagerank"] >= meaningful - 0.15, name
        assert row["pagerank"] >= row["random"] - 0.05, name
