"""Weisfeiler–Leman optimal assignment kernel (WL-OA).

Kriege et al. (2016) define the optimal assignment kernel induced by the
hierarchy of WL colours: vertices of two graphs are optimally matched under a
vertex similarity that counts how many refinement rounds assign both vertices
the same colour.  Because the WL colours form a hierarchy (a colour at round
``i + 1`` refines exactly one colour at round ``i``), the optimal assignment
value has a closed form — the *histogram intersection* of the per-round colour
counts:

``k_OA(G, G') = sum_{round r} sum_{colour c} min(count_G^r(c), count_{G'}^r(c))``

which is what this implementation computes.  Like the subtree kernel, the
colour dictionary must be shared, so :meth:`transform` re-refines the training
graphs together with the query graphs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.wl_refinement import wl_refinement
from repro.kernels.base import GraphKernel


def _per_round_color_counts(colorings: list[np.ndarray]) -> list[dict[int, int]]:
    """Colour histogram of one graph for each refinement round."""
    histograms = []
    for colors in colorings:
        counts: dict[int, int] = {}
        for color in colors:
            color = int(color)
            counts[color] = counts.get(color, 0) + 1
        histograms.append(counts)
    return histograms


def _histogram_intersection(a: dict[int, int], b: dict[int, int]) -> float:
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    total = 0.0
    for key, count in small.items():
        other = large.get(key)
        if other is not None:
            total += min(count, other)
    return total


def _assignment_value(
    rounds_a: list[dict[int, int]], rounds_b: list[dict[int, int]]
) -> float:
    return sum(
        _histogram_intersection(histogram_a, histogram_b)
        for histogram_a, histogram_b in zip(rounds_a, rounds_b)
    )


class WLOptimalAssignmentKernel(GraphKernel):
    """WL-OA kernel via histogram intersection over the WL colour hierarchy."""

    grid: dict[str, Sequence] = {"iterations": tuple(range(0, 6))}

    def __init__(self, iterations: int = 3, *, use_vertex_labels: bool = False) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        self.iterations = int(iterations)
        self.use_vertex_labels = bool(use_vertex_labels)
        self._train_graphs: list[Graph] | None = None

    def _round_histograms(
        self, graphs: Sequence[Graph]
    ) -> list[list[dict[int, int]]]:
        colorings = wl_refinement(
            graphs, self.iterations, use_vertex_labels=self.use_vertex_labels
        )
        return [_per_round_color_counts(history) for history in colorings]

    def fit_transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        self._train_graphs = list(graphs)
        histograms = self._round_histograms(self._train_graphs)
        n = len(histograms)
        gram = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                value = _assignment_value(histograms[i], histograms[j])
                gram[i, j] = value
                gram[j, i] = value
        return gram

    def transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        if self._train_graphs is None:
            raise RuntimeError("kernel has not been fitted")
        graphs = list(graphs)
        combined = self._train_graphs + graphs
        histograms = self._round_histograms(combined)
        train_histograms = histograms[: len(self._train_graphs)]
        query_histograms = histograms[len(self._train_graphs) :]
        gram = np.zeros((len(query_histograms), len(train_histograms)), dtype=np.float64)
        for i, query in enumerate(query_histograms):
            for j, reference in enumerate(train_histograms):
                gram[i, j] = _assignment_value(query, reference)
        return gram

    def self_similarity(self, graph: Graph) -> float:
        # A graph optimally assigned to itself matches every vertex at every
        # round, so the value is (iterations + 1) * num_vertices.
        return float((self.iterations + 1) * graph.num_vertices)

    def clone(self) -> "WLOptimalAssignmentKernel":
        return WLOptimalAssignmentKernel(
            self.iterations, use_vertex_labels=self.use_vertex_labels
        )
