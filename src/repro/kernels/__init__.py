"""Graph kernel baselines.

The paper compares GraphHD against two kernel methods from the TUDataset
reference evaluation: the Weisfeiler–Leman subtree kernel (1-WL, Shervashidze
et al. 2011) and the Weisfeiler–Leman optimal assignment kernel (WL-OA, Kriege
et al. 2016).  Both are implemented from scratch here, alongside two simpler
kernels (vertex histogram, shortest path) useful for testing and ablations,
a kernel-matrix normalizer, and a kernel SVM (SMO) so the full
kernel-machine pipeline — gram matrix, C grid search, one-vs-rest
classification — matches the baseline protocol of the paper.
"""

from repro.kernels.base import GraphKernel, KernelClassifier, normalize_gram
from repro.kernels.vertex_histogram import VertexHistogramKernel
from repro.kernels.shortest_path import ShortestPathKernel
from repro.kernels.wl_subtree import WLSubtreeKernel
from repro.kernels.wl_optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.svm import SVC, OneVsRestSVC

__all__ = [
    "GraphKernel",
    "KernelClassifier",
    "normalize_gram",
    "VertexHistogramKernel",
    "ShortestPathKernel",
    "WLSubtreeKernel",
    "WLOptimalAssignmentKernel",
    "SVC",
    "OneVsRestSVC",
]
