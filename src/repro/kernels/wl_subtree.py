"""Weisfeiler–Leman subtree kernel (1-WL).

Shervashidze et al. (2011).  Each graph is represented by the sparse vector of
counts of every WL colour over ``h`` refinement iterations (including the
initial colouring); the kernel value is the dot product of two such vectors.
The colour dictionary must be shared across all graphs participating in a
gram-matrix computation, so :meth:`transform` re-runs the refinement over the
stored training graphs together with the query graphs.

The paper searches the number of iterations in ``{0, ..., 5}``; that grid is
exposed through the ``grid`` attribute consumed by
:class:`repro.kernels.base.KernelClassifier`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.wl_refinement import wl_subtree_features
from repro.kernels.base import GraphKernel, sparse_feature_gram


class WLSubtreeKernel(GraphKernel):
    """1-WL subtree kernel with a configurable number of refinement iterations."""

    grid: dict[str, Sequence] = {"iterations": tuple(range(0, 6))}

    def __init__(self, iterations: int = 3, *, use_vertex_labels: bool = False) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {iterations}")
        self.iterations = int(iterations)
        self.use_vertex_labels = bool(use_vertex_labels)
        self._train_graphs: list[Graph] | None = None
        self._train_features: list[dict[int, int]] | None = None

    def fit_transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        self._train_graphs = list(graphs)
        self._train_features = wl_subtree_features(
            self._train_graphs,
            self.iterations,
            use_vertex_labels=self.use_vertex_labels,
        )
        return sparse_feature_gram(self._train_features)

    def transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        if self._train_graphs is None:
            raise RuntimeError("kernel has not been fitted")
        graphs = list(graphs)
        combined = self._train_graphs + graphs
        features = wl_subtree_features(
            combined, self.iterations, use_vertex_labels=self.use_vertex_labels
        )
        train_features = features[: len(self._train_graphs)]
        query_features = features[len(self._train_graphs) :]
        return sparse_feature_gram(query_features, train_features)

    def self_similarity(self, graph: Graph) -> float:
        features = wl_subtree_features(
            [graph], self.iterations, use_vertex_labels=self.use_vertex_labels
        )[0]
        return float(sum(value * value for value in features.values()))

    def clone(self) -> "WLSubtreeKernel":
        return WLSubtreeKernel(
            self.iterations, use_vertex_labels=self.use_vertex_labels
        )
