"""Shortest-path graph kernel.

A classic explicit-feature-map kernel (Borgwardt & Kriegel, 2005): a graph is
represented by the histogram of shortest-path lengths between all connected
vertex pairs (optionally refined by the endpoint labels), and the kernel value
is the dot product of two histograms.  Included as an additional baseline for
ablations and to exercise the kernel-machine pipeline with a second feature
map.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import GraphKernel, sparse_feature_gram


def breadth_first_distances(graph: Graph, source: int) -> np.ndarray:
    """Unweighted shortest-path distances from ``source``; -1 for unreachable."""
    distances = np.full(graph.num_vertices, -1, dtype=np.int64)
    distances[source] = 0
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if distances[neighbor] < 0:
                distances[neighbor] = distances[vertex] + 1
                queue.append(neighbor)
    return distances


def shortest_path_features(
    graph: Graph, *, use_vertex_labels: bool = False, max_distance: int | None = None
) -> dict[int, float]:
    """Histogram of shortest-path triples ``(label_u, distance, label_v)``.

    For unlabelled graphs the endpoint labels collapse to a constant and the
    feature map reduces to a histogram of path lengths.
    """
    counts: dict[int, float] = {}
    labelled = use_vertex_labels and graph.vertex_labels is not None
    for source in range(graph.num_vertices):
        distances = breadth_first_distances(graph, source)
        for target in range(source + 1, graph.num_vertices):
            distance = int(distances[target])
            if distance <= 0:
                continue
            if max_distance is not None and distance > max_distance:
                continue
            if labelled:
                label_u = graph.vertex_labels[source]
                label_v = graph.vertex_labels[target]
                low, high = sorted((hash(label_u), hash(label_v)))
                key = hash((low, distance, high))
            else:
                key = distance
            counts[key] = counts.get(key, 0.0) + 1.0
    return counts


class ShortestPathKernel(GraphKernel):
    """Dot-product kernel over shortest-path length histograms."""

    grid: dict[str, Sequence] = {}

    def __init__(
        self, *, use_vertex_labels: bool = False, max_distance: int | None = None
    ) -> None:
        self.use_vertex_labels = bool(use_vertex_labels)
        self.max_distance = max_distance
        self._train_features: list[dict[int, float]] | None = None

    def _features(self, graphs: Sequence[Graph]) -> list[dict[int, float]]:
        return [
            shortest_path_features(
                graph,
                use_vertex_labels=self.use_vertex_labels,
                max_distance=self.max_distance,
            )
            for graph in graphs
        ]

    def fit_transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        self._train_features = self._features(graphs)
        return sparse_feature_gram(self._train_features)

    def transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        if self._train_features is None:
            raise RuntimeError("kernel has not been fitted")
        return sparse_feature_gram(self._features(graphs), self._train_features)

    def self_similarity(self, graph: Graph) -> float:
        features = shortest_path_features(
            graph,
            use_vertex_labels=self.use_vertex_labels,
            max_distance=self.max_distance,
        )
        return float(sum(value * value for value in features.values()))

    def clone(self) -> "ShortestPathKernel":
        return ShortestPathKernel(
            use_vertex_labels=self.use_vertex_labels, max_distance=self.max_distance
        )
