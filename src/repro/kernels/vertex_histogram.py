"""Vertex histogram kernel.

The simplest explicit-feature-map graph kernel: a graph is represented by the
histogram of its vertex labels (or of vertex degrees when the graph carries no
labels, which is the label-free regime the paper evaluates in), and the kernel
value is the dot product of two histograms.  Used as a sanity-check baseline
and as the base case (0 WL iterations) of the WL subtree kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import GraphKernel, sparse_feature_gram


def vertex_histogram(graph: Graph, *, use_vertex_labels: bool = True) -> dict[int, float]:
    """Sparse histogram of vertex labels (or degrees for unlabelled graphs)."""
    counts: dict[int, float] = {}
    if use_vertex_labels and graph.vertex_labels is not None:
        values = [hash(label) for label in graph.vertex_labels]
    else:
        values = [int(degree) for degree in graph.degrees()]
    for value in values:
        counts[value] = counts.get(value, 0.0) + 1.0
    return counts


class VertexHistogramKernel(GraphKernel):
    """Dot-product kernel over vertex label (or degree) histograms."""

    grid: dict[str, Sequence] = {}

    def __init__(self, *, use_vertex_labels: bool = True) -> None:
        self.use_vertex_labels = bool(use_vertex_labels)
        self._train_features: list[dict[int, float]] | None = None

    def _features(self, graphs: Sequence[Graph]) -> list[dict[int, float]]:
        return [
            vertex_histogram(graph, use_vertex_labels=self.use_vertex_labels)
            for graph in graphs
        ]

    def fit_transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        self._train_features = self._features(graphs)
        return sparse_feature_gram(self._train_features)

    def transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        if self._train_features is None:
            raise RuntimeError("kernel has not been fitted")
        return sparse_feature_gram(self._features(graphs), self._train_features)

    def self_similarity(self, graph: Graph) -> float:
        features = vertex_histogram(graph, use_vertex_labels=self.use_vertex_labels)
        return float(sum(value * value for value in features.values()))

    def clone(self) -> "VertexHistogramKernel":
        return VertexHistogramKernel(use_vertex_labels=self.use_vertex_labels)
