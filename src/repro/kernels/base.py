"""Graph kernel base classes and the kernel-machine classifier.

A graph kernel computes a positive semi-definite similarity (gram) matrix
between graphs; a kernel machine (here an SVM trained with SMO) then learns a
classifier from that matrix.  The :class:`KernelClassifier` wires the two
together following the paper's baseline protocol: the SVM cost parameter ``C``
is selected from ``{10^-3, ..., 10^3}`` and the number of WL iterations from
``{0, ..., 5}`` by internal cross-validation on the training fold.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

import numpy as np

from repro.datasets.splits import StratifiedKFold
from repro.graphs.graph import Graph
from repro.kernels.svm import OneVsRestSVC

#: The C grid used by the paper's kernel baselines.
DEFAULT_C_GRID = tuple(10.0**exponent for exponent in range(-3, 4))


class GraphKernel:
    """Base class for graph kernels.

    Subclasses implement :meth:`fit_transform` (gram matrix of the training
    graphs) and :meth:`transform` (cross-gram matrix between new graphs and
    the training graphs).  The default implementations derive both from a
    :meth:`_features` method returning sparse count dictionaries, which covers
    every explicit-feature-map kernel in this package; kernels with implicit
    maps (such as WL-OA) override the gram computations directly.
    """

    #: Hyper-parameters (name -> iterable of values) that the
    #: :class:`KernelClassifier` may grid-search over.
    grid: dict[str, Sequence] = {}

    def fit_transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Compute the train gram matrix and remember the training graphs."""
        raise NotImplementedError

    def transform(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Compute the cross-gram matrix of new graphs against the training graphs."""
        raise NotImplementedError

    def self_similarity(self, graph: Graph) -> float:
        """Kernel value of ``graph`` with itself (used for cosine normalization)."""
        raise NotImplementedError

    def clone(self) -> "GraphKernel":
        """A fresh, unfitted copy with the same hyper-parameters."""
        raise NotImplementedError


def normalize_gram(gram: np.ndarray, diagonal_rows=None, diagonal_cols=None) -> np.ndarray:
    """Cosine-normalize a gram matrix: ``K'_{ij} = K_{ij} / sqrt(K_ii K_jj)``.

    For cross-gram matrices the self-similarities of the row and column graphs
    must be supplied explicitly.  Zero self-similarities are clamped to 1 to
    avoid dividing by zero (the corresponding rows are all-zero anyway).
    """
    gram = np.asarray(gram, dtype=np.float64)
    if diagonal_rows is None or diagonal_cols is None:
        if gram.shape[0] != gram.shape[1]:
            raise ValueError(
                "diagonals must be provided to normalize a non-square gram matrix"
            )
        diagonal_rows = np.diag(gram).copy()
        diagonal_cols = diagonal_rows
    diagonal_rows = np.asarray(diagonal_rows, dtype=np.float64).copy()
    diagonal_cols = np.asarray(diagonal_cols, dtype=np.float64).copy()
    diagonal_rows[diagonal_rows <= 0] = 1.0
    diagonal_cols[diagonal_cols <= 0] = 1.0
    return gram / np.sqrt(np.outer(diagonal_rows, diagonal_cols))


def sparse_feature_gram(
    row_features: Sequence[dict[int, float]],
    col_features: Sequence[dict[int, float]] | None = None,
) -> np.ndarray:
    """Gram matrix of sparse count-dictionary feature maps (dot products)."""
    symmetric = col_features is None
    if col_features is None:
        col_features = row_features
    gram = np.zeros((len(row_features), len(col_features)), dtype=np.float64)
    for i, row in enumerate(row_features):
        start = i if symmetric else 0
        for j in range(start, len(col_features)):
            col = col_features[j]
            # Iterate over the smaller dictionary for speed.
            small, large = (row, col) if len(row) <= len(col) else (col, row)
            value = 0.0
            for key, count in small.items():
                other = large.get(key)
                if other is not None:
                    value += count * other
            gram[i, j] = value
            if symmetric:
                gram[j, i] = value
    return gram


class KernelClassifier:
    """Graph classifier: graph kernel + SVM with hyper-parameter grid search.

    Parameters
    ----------
    kernel:
        A :class:`GraphKernel` instance used as a template; grid search clones
        it with different hyper-parameters.
    c_grid:
        SVM cost values to search (paper: 10^-3 ... 10^3).
    normalize:
        Whether to cosine-normalize gram matrices before the SVM.
    selection_folds:
        Number of internal cross-validation folds used for model selection on
        the training data (kept small because each configuration requires a
        full gram-matrix computation).
    """

    def __init__(
        self,
        kernel: GraphKernel,
        *,
        c_grid: Sequence[float] = DEFAULT_C_GRID,
        normalize: bool = True,
        selection_folds: int = 3,
        seed: int | None = 0,
    ) -> None:
        if not c_grid:
            raise ValueError("c_grid must not be empty")
        self.kernel_template = kernel
        self.c_grid = tuple(float(c) for c in c_grid)
        self.normalize = bool(normalize)
        self.selection_folds = int(selection_folds)
        self.seed = seed
        self.kernel_: GraphKernel | None = None
        self.svm_: OneVsRestSVC | None = None
        self.best_parameters_: dict | None = None
        self._train_diagonal: np.ndarray | None = None

    def _kernel_configurations(self) -> list[dict]:
        grid = self.kernel_template.grid
        if not grid:
            return [{}]
        names = sorted(grid)
        configurations = []
        for values in itertools.product(*(grid[name] for name in names)):
            configurations.append(dict(zip(names, values)))
        return configurations

    def _make_kernel(self, configuration: dict) -> GraphKernel:
        kernel = self.kernel_template.clone()
        for name, value in configuration.items():
            setattr(kernel, name, value)
        return kernel

    def _prepare_gram(self, gram: np.ndarray) -> np.ndarray:
        if self.normalize:
            return normalize_gram(gram)
        return gram

    def _evaluate_configuration(
        self,
        gram: np.ndarray,
        labels: list[Hashable],
        c_value: float,
    ) -> float:
        """Internal CV accuracy of one (kernel configuration, C) pair."""
        labels_array = np.asarray(labels, dtype=object)
        min_class_count = min(
            int(np.sum(labels_array == label)) for label in set(labels)
        )
        folds = max(2, min(self.selection_folds, min_class_count))
        if min_class_count < 2:
            # Degenerate training fold: fall back to training accuracy.
            svm = OneVsRestSVC(C=c_value)
            svm.fit(gram, labels)
            return float(np.mean(np.asarray(svm.predict(gram), dtype=object) == labels_array))
        splitter = StratifiedKFold(folds, shuffle=True, seed=self.seed)
        accuracies = []
        for train_index, valid_index in splitter.split(labels):
            svm = OneVsRestSVC(C=c_value)
            svm.fit(gram[np.ix_(train_index, train_index)], labels_array[train_index])
            predictions = svm.predict(gram[np.ix_(valid_index, train_index)])
            accuracy = float(
                np.mean(np.asarray(predictions, dtype=object) == labels_array[valid_index])
            )
            accuracies.append(accuracy)
        return float(np.mean(accuracies))

    def fit(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> "KernelClassifier":
        """Select hyper-parameters by internal CV and fit the final SVM."""
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")

        best_score = -np.inf
        best_state: tuple[GraphKernel, np.ndarray, float, dict] | None = None
        for configuration in self._kernel_configurations():
            kernel = self._make_kernel(configuration)
            gram = self._prepare_gram(kernel.fit_transform(graphs))
            for c_value in self.c_grid:
                score = self._evaluate_configuration(gram, labels, c_value)
                if score > best_score:
                    best_score = score
                    best_state = (kernel, gram, c_value, configuration)

        assert best_state is not None  # grid is never empty
        kernel, gram, c_value, configuration = best_state
        self.kernel_ = kernel
        self._train_diagonal = np.diag(kernel.fit_transform(graphs)).copy()
        self.svm_ = OneVsRestSVC(C=c_value)
        self.svm_.fit(gram, labels)
        self.best_parameters_ = {"C": c_value, **configuration, "cv_accuracy": best_score}
        return self

    def predict(self, graphs: Sequence[Graph]) -> list[Hashable]:
        """Predict class labels for new graphs."""
        if self.kernel_ is None or self.svm_ is None:
            raise RuntimeError("classifier has not been fitted")
        graphs = list(graphs)
        cross_gram = self.kernel_.transform(graphs)
        if self.normalize:
            self_similarities = np.array(
                [self._self_similarity(graph) for graph in graphs]
            )
            cross_gram = normalize_gram(
                cross_gram, self_similarities, self._train_diagonal
            )
        return self.svm_.predict(cross_gram)

    def _self_similarity(self, graph: Graph) -> float:
        """Kernel value of a graph with itself under the fitted kernel."""
        assert self.kernel_ is not None
        return float(self.kernel_.self_similarity(graph))

    def score(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> float:
        """Accuracy on a labelled set of graphs."""
        labels = list(labels)
        predictions = self.predict(graphs)
        return float(
            np.mean(
                np.asarray(predictions, dtype=object) == np.asarray(labels, dtype=object)
            )
        )
