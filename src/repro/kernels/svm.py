"""Support vector machine on precomputed kernels.

Kernel methods in the paper use an SVM as the kernel machine.  This module
implements a binary soft-margin SVM trained with a simplified Sequential
Minimal Optimization (SMO) procedure that operates directly on a precomputed
gram matrix, plus a one-vs-rest wrapper for multi-class problems (ENZYMES has
six classes).  The implementation favours clarity and robustness over raw
speed; gram-matrix computation dominates the kernel baselines' runtime anyway,
which preserves the scaling behaviour the paper measures.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np


class SVC:
    """Binary soft-margin SVM on a precomputed kernel, trained with SMO.

    Parameters
    ----------
    C:
        Soft-margin cost parameter.
    tolerance:
        KKT violation tolerance used by the SMO working-set selection.
    max_passes:
        Number of consecutive full passes without any multiplier update
        required before training stops.
    max_iterations:
        Hard cap on the number of full passes over the training data.
    """

    def __init__(
        self,
        C: float = 1.0,
        *,
        tolerance: float = 1e-3,
        max_passes: int = 3,
        max_iterations: int = 200,
        seed: int | None = 0,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = float(C)
        self.tolerance = float(tolerance)
        self.max_passes = int(max_passes)
        self.max_iterations = int(max_iterations)
        self.seed = seed
        self.alphas_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.targets_: np.ndarray | None = None

    def fit(self, gram: np.ndarray, targets: Sequence[int]) -> "SVC":
        """Train on a square gram matrix and ±1 targets."""
        gram = np.asarray(gram, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
            raise ValueError(f"gram matrix must be square, got shape {gram.shape}")
        if gram.shape[0] != targets.shape[0]:
            raise ValueError("gram matrix and targets size mismatch")
        if not np.all(np.isin(targets, (-1.0, 1.0))):
            raise ValueError("targets must be -1 or +1")

        n = gram.shape[0]
        rng = np.random.default_rng(self.seed)
        alphas = np.zeros(n, dtype=np.float64)
        bias = 0.0

        def decision(index: int) -> float:
            return float(np.dot(alphas * targets, gram[:, index]) + bias)

        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            changed = 0
            for i in range(n):
                error_i = decision(i) - targets[i]
                violates_kkt = (
                    targets[i] * error_i < -self.tolerance and alphas[i] < self.C
                ) or (targets[i] * error_i > self.tolerance and alphas[i] > 0)
                if not violates_kkt:
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = decision(j) - targets[j]

                alpha_i_old = alphas[i]
                alpha_j_old = alphas[j]
                if targets[i] != targets[j]:
                    low = max(0.0, alphas[j] - alphas[i])
                    high = min(self.C, self.C + alphas[j] - alphas[i])
                else:
                    low = max(0.0, alphas[i] + alphas[j] - self.C)
                    high = min(self.C, alphas[i] + alphas[j])
                if low >= high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alphas[j] -= targets[j] * (error_i - error_j) / eta
                alphas[j] = min(max(alphas[j], low), high)
                if abs(alphas[j] - alpha_j_old) < 1e-7:
                    continue
                alphas[i] += targets[i] * targets[j] * (alpha_j_old - alphas[j])

                bias_i = (
                    bias
                    - error_i
                    - targets[i] * (alphas[i] - alpha_i_old) * gram[i, i]
                    - targets[j] * (alphas[j] - alpha_j_old) * gram[i, j]
                )
                bias_j = (
                    bias
                    - error_j
                    - targets[i] * (alphas[i] - alpha_i_old) * gram[i, j]
                    - targets[j] * (alphas[j] - alpha_j_old) * gram[j, j]
                )
                if 0 < alphas[i] < self.C:
                    bias = bias_i
                elif 0 < alphas[j] < self.C:
                    bias = bias_j
                else:
                    bias = (bias_i + bias_j) / 2.0
                changed += 1
            iterations += 1
            if changed == 0:
                passes += 1
            else:
                passes = 0

        self.alphas_ = alphas
        self.bias_ = bias
        self.targets_ = targets
        return self

    def decision_function(self, cross_gram: np.ndarray) -> np.ndarray:
        """Signed decision values for rows of a (queries x train) cross-gram matrix."""
        if self.alphas_ is None or self.targets_ is None:
            raise RuntimeError("SVC has not been fitted")
        cross_gram = np.asarray(cross_gram, dtype=np.float64)
        if cross_gram.ndim == 1:
            cross_gram = cross_gram[None, :]
        if cross_gram.shape[1] != self.alphas_.shape[0]:
            raise ValueError(
                f"cross-gram has {cross_gram.shape[1]} columns, "
                f"expected {self.alphas_.shape[0]}"
            )
        return cross_gram @ (self.alphas_ * self.targets_) + self.bias_

    def predict(self, cross_gram: np.ndarray) -> np.ndarray:
        """Predicted ±1 labels for query rows of the cross-gram matrix."""
        scores = self.decision_function(cross_gram)
        predictions = np.where(scores >= 0, 1.0, -1.0)
        return predictions

    @property
    def support_indices_(self) -> np.ndarray:
        """Indices of training samples with non-zero multipliers."""
        if self.alphas_ is None:
            raise RuntimeError("SVC has not been fitted")
        return np.flatnonzero(self.alphas_ > 1e-8)


class OneVsRestSVC:
    """One-vs-rest multi-class wrapper around :class:`SVC`.

    For binary problems a single underlying SVM is trained.  Class labels may
    be arbitrary hashables; ties between one-vs-rest decision values are
    resolved by the largest margin.
    """

    def __init__(self, C: float = 1.0, **svc_kwargs) -> None:
        self.C = float(C)
        self.svc_kwargs = svc_kwargs
        self.classes_: list[Hashable] = []
        self._machines: list[SVC] = []

    def fit(self, gram: np.ndarray, labels: Sequence[Hashable]) -> "OneVsRestSVC":
        """Train one binary SVM per class on the shared gram matrix."""
        labels = list(labels)
        gram = np.asarray(gram, dtype=np.float64)
        distinct = sorted(set(labels), key=lambda value: (str(type(value)), str(value)))
        if len(distinct) < 2:
            raise ValueError("need at least two classes to train a classifier")
        self.classes_ = distinct
        label_array = np.asarray(labels, dtype=object)

        self._machines = []
        if len(distinct) == 2:
            targets = np.where(label_array == distinct[1], 1.0, -1.0)
            machine = SVC(C=self.C, **self.svc_kwargs)
            machine.fit(gram, targets)
            self._machines.append(machine)
        else:
            for positive_class in distinct:
                targets = np.where(label_array == positive_class, 1.0, -1.0)
                machine = SVC(C=self.C, **self.svc_kwargs)
                machine.fit(gram, targets)
                self._machines.append(machine)
        return self

    def decision_function(self, cross_gram: np.ndarray) -> np.ndarray:
        """Per-class decision scores; shape ``(num_queries, num_classes)``."""
        if not self._machines:
            raise RuntimeError("OneVsRestSVC has not been fitted")
        cross_gram = np.asarray(cross_gram, dtype=np.float64)
        if len(self.classes_) == 2:
            scores = self._machines[0].decision_function(cross_gram)
            return np.stack([-scores, scores], axis=1)
        return np.stack(
            [machine.decision_function(cross_gram) for machine in self._machines],
            axis=1,
        )

    def predict(self, cross_gram: np.ndarray) -> list[Hashable]:
        """Predicted class labels for query rows of the cross-gram matrix."""
        scores = self.decision_function(cross_gram)
        winners = np.argmax(scores, axis=1)
        return [self.classes_[int(index)] for index in winners]
