"""Command-line interface for the GraphHD reproduction.

Provides a thin wrapper over the library so the main experiments can be run
without writing code::

    python -m repro.cli quickstart --dataset MUTAG --scale 0.5
    python -m repro.cli compare --datasets MUTAG PTC_FM --methods GraphHD 1-WL
    python -m repro.cli scaling --sizes 50 100 200 --num-graphs 40
    python -m repro.cli robustness --dataset MUTAG --fractions 0 0.1 0.3
    python -m repro.cli datasets
    python -m repro.cli store stats .encoding-store
    python -m repro.cli store prune .encoding-store --max-bytes 100000000
    python -m repro.cli train shard --dataset MUTAG --shard-index 0 --num-shards 2 --output s0.npz
    python -m repro.cli train merge s0.npz s1.npz --output model.npz
    python -m repro.cli train info s0.npz
    python -m repro.cli serve --model model.npz --port 8080

Every sub-command prints plain-text tables (the same renderer the benchmark
harness uses) and returns a zero exit code on success.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.hdc.backend import BACKEND_NAMES
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.splits import train_test_split
from repro.eval.comparison import compare_methods
from repro.eval.cross_validation import cross_validate
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.sharded import shard_indices
from repro.hdc.training_state import TrainingState, merge_states
from repro.eval.methods import METHOD_NAMES
from repro.eval.parallel import ENV_N_JOBS, TaskPolicy
from repro.eval.reporting import render_figure3, render_series, render_table
from repro.eval.robustness import graphhd_robustness_curve
from repro.eval.scaling import scaling_experiment


def _add_backend_argument(parser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="dense",
        help="GraphHD compute backend: dense int8 bipolar (paper) or "
        "bit-packed uint64 binary (XOR/popcount, ~8x less memory)",
    )


def _add_encoding_cache_argument(parser) -> None:
    parser.add_argument(
        "--no-encoding-cache",
        dest="encoding_cache",
        action="store_false",
        help="re-encode graphs in every fold/draw instead of encoding each "
        "dataset once (the paper's timing protocol; slower, same accuracies)",
    )


def _add_parallel_arguments(parser) -> None:
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="worker processes for the evaluation harness "
        f"(default: the {ENV_N_JOBS} environment variable, or 1 = serial; "
        "0 or negative = all cores); accuracies and fold assignments are "
        "bit-identical to serial, but measured wall-clock timings reflect "
        "concurrently running workers",
    )
    parser.add_argument(
        "--encoding-store",
        metavar="PATH",
        default=None,
        help="directory of the persistent on-disk encoding store; repeated "
        "runs and sweeps load cached encodings instead of re-encoding",
    )
    parser.add_argument(
        "--clear-encoding-store",
        action="store_true",
        help="delete every entry of --encoding-store before running",
    )
    parser.add_argument(
        "--encoding-store-mmap",
        action="store_true",
        help="serve encoding-store hits as read-only memory-mapped views, so "
        "worker processes share one page-cached matrix instead of copying it "
        "(results are bit-identical either way)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any evaluation task attempt running longer than "
        "this many seconds (needs worker processes, i.e. --n-jobs > 1; "
        "default: unlimited)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failed/timed-out/killed evaluation task up to N more "
        "times with exponential backoff before quarantining it "
        "(results stay bit-identical to an undisturbed run; default: 0)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="directory of a crash-safe result journal: completed tasks are "
        "recorded as they finish, and re-running the same command resumes "
        "from the journal, executing only unfinished tasks",
    )


def _encoding_store_from_args(args) -> tuple[EncodingStore | None, str]:
    """The persistent store selected by the CLI flags, cleared when asked.

    Returns ``(store, preamble)``; the preamble reports a requested
    ``--clear-encoding-store`` honestly (complete entries and swept
    temporary files counted separately).  The store only participates when
    the in-memory encoding cache is on; ``--no-encoding-cache`` (the paper's
    timing protocol) therefore disables it too, though
    ``--clear-encoding-store`` still clears the directory.
    """
    path = getattr(args, "encoding_store", None)
    if path is None:
        return None, ""
    store = EncodingStore(path)
    preamble = ""
    if getattr(args, "clear_encoding_store", False):
        report = store.clear()
        preamble = (
            f"cleared encoding store {store.path}: "
            f"{report.entries_removed} entries, "
            f"{report.temp_files_removed} temp files\n"
        )
    if not getattr(args, "encoding_cache", True):
        return None, preamble
    return store, preamble


def _mmap_mode_from_args(args) -> str | None:
    """The store mmap policy selected by ``--encoding-store-mmap``."""
    return "r" if getattr(args, "encoding_store_mmap", False) else None


def _task_policy_from_args(args) -> TaskPolicy | None:
    """The fault-tolerance policy selected by the CLI flags (None = default)."""
    timeout = getattr(args, "task_timeout", None)
    retries = getattr(args, "task_retries", 0) or 0
    checkpoint = getattr(args, "checkpoint", None)
    if timeout is None and retries == 0 and checkpoint is None:
        return None
    return TaskPolicy(timeout=timeout, retries=retries, checkpoint_dir=checkpoint)


def _store_summary(store: EncodingStore | None) -> str:
    """One-line persistent-store report appended to a command's output."""
    if store is None:
        return ""
    stats = store.stats
    return (
        f"\nencoding store {store.path}: hits={stats['hits']} "
        f"misses={stats['misses']} entries={stats['entries']}"
    )


def _add_quickstart_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "quickstart", help="cross-validate GraphHD on one benchmark dataset"
    )
    parser.add_argument("--dataset", default="MUTAG", help="benchmark dataset name")
    parser.add_argument("--scale", type=float, default=0.5, help="dataset subsample fraction")
    parser.add_argument("--dimension", type=int, default=10_000, help="hypervector dimensionality")
    parser.add_argument("--folds", type=int, default=5, help="number of cross-validation folds")
    parser.add_argument("--seed", type=int, default=0)
    _add_backend_argument(parser)
    _add_encoding_cache_argument(parser)
    _add_parallel_arguments(parser)


def _add_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="compare methods on benchmark datasets (Figure 3)"
    )
    parser.add_argument("--datasets", nargs="+", default=["MUTAG", "PTC_FM"])
    parser.add_argument("--methods", nargs="+", default=list(METHOD_NAMES))
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--folds", type=int, default=3)
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--dimension", type=int, default=10_000)
    parser.add_argument("--fast", action="store_true", help="use reduced baseline settings")
    parser.add_argument("--seed", type=int, default=0)
    _add_backend_argument(parser)
    _add_encoding_cache_argument(parser)
    _add_parallel_arguments(parser)


def _add_scaling_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "scaling", help="training time vs. graph size sweep (Figure 4)"
    )
    parser.add_argument("--sizes", nargs="+", type=int, default=[50, 100, 200, 400])
    parser.add_argument("--num-graphs", type=int, default=40)
    parser.add_argument("--methods", nargs="+", default=["GraphHD", "GIN-e", "WL-OA"])
    parser.add_argument("--edge-probability", type=float, default=0.05)
    parser.add_argument("--dimension", type=int, default=10_000)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    _add_backend_argument(parser)
    _add_encoding_cache_argument(parser)
    _add_parallel_arguments(parser)


def _add_robustness_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "robustness", help="accuracy under corrupted class hypervectors"
    )
    parser.add_argument("--dataset", default="MUTAG")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument(
        "--fractions",
        nargs="+",
        type=float,
        default=[0.0, 0.1, 0.2, 0.3, 0.4],
        help="fractions of corrupted class-vector components",
    )
    parser.add_argument("--dimension", type=int, default=10_000)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    _add_backend_argument(parser)
    _add_encoding_cache_argument(parser)
    _add_parallel_arguments(parser)


def _add_datasets_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "datasets", help="list the available benchmark datasets"
    )
    # Accepted for CLI uniformity; listing datasets is backend-independent.
    _add_backend_argument(parser)


def _add_store_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "store", help="manage a persistent encoding store directory"
    )
    actions = parser.add_subparsers(dest="store_action", required=True)

    list_parser = actions.add_parser(
        "list", help="list every entry with size, format and access times"
    )
    stats_parser = actions.add_parser(
        "stats", help="aggregate store statistics (entries, bytes, formats)"
    )
    prune_parser = actions.add_parser(
        "prune", help="evict entries by LRU size bound and/or age horizon"
    )
    prune_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used entries until the store fits this "
        "many bytes",
    )
    prune_parser.add_argument(
        "--max-age",
        type=float,
        default=None,
        help="evict entries last accessed more than this many seconds ago",
    )
    prune_parser.add_argument(
        "--policy",
        choices=["lru"],
        default="lru",
        help="eviction order (only least-recently-used is implemented)",
    )
    clear_parser = actions.add_parser(
        "clear", help="delete every entry and stray temporary file"
    )
    migrate_parser = actions.add_parser(
        "migrate",
        help="rewrite legacy compressed .npz entries into the "
        "uncompressed, mmap-able format",
    )
    for action_parser in (
        list_parser,
        stats_parser,
        prune_parser,
        clear_parser,
        migrate_parser,
    ):
        action_parser.add_argument("path", help="encoding store directory")


def _add_train_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "train",
        help="sharded map-reduce training: accumulate shard states, merge "
        "them into a model (bit-identical to single-shot training)",
    )
    actions = parser.add_subparsers(dest="train_action", required=True)

    shard_parser = actions.add_parser(
        "shard",
        help="train one shard of a dataset into a mergeable TrainingState",
    )
    shard_parser.add_argument("--dataset", default="MUTAG", help="benchmark dataset name")
    shard_parser.add_argument(
        "--scale", type=float, default=0.5, help="dataset subsample fraction"
    )
    shard_parser.add_argument(
        "--dimension", type=int, default=10_000, help="hypervector dimensionality"
    )
    shard_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="basis seed; shards merge only when trained with the same seed",
    )
    shard_parser.add_argument(
        "--shard-index", type=int, required=True, help="which shard to train (0-based)"
    )
    shard_parser.add_argument(
        "--num-shards", type=int, required=True, help="total number of shards"
    )
    shard_parser.add_argument(
        "--output", required=True, help="path of the .npz training-state file to write"
    )
    _add_backend_argument(shard_parser)
    _add_parallel_arguments(shard_parser)

    merge_parser = actions.add_parser(
        "merge",
        help="merge shard TrainingStates and save the resulting model",
    )
    merge_parser.add_argument(
        "states", nargs="+", help="shard .npz training-state files, in shard order"
    )
    merge_parser.add_argument(
        "--output", required=True, help="path of the model .npz archive to write"
    )
    merge_parser.add_argument(
        "--state-output",
        default=None,
        help="optionally also save the merged TrainingState itself",
    )
    merge_parser.add_argument(
        "--metric", default="cosine", help="similarity metric of the saved model"
    )

    info_parser = actions.add_parser(
        "info", help="summarize a saved TrainingState file"
    )
    info_parser.add_argument("path", help=".npz training-state file")


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve a saved model over HTTP with micro-batched inference "
        "(POST /predict, GET /healthz, GET /stats, POST /reload)",
    )
    parser.add_argument(
        "--model",
        required=True,
        help="path of a trained GraphHDClassifier .npz archive "
        "(GraphHDClassifier.save or `repro train merge`); train with "
        "--backend packed for the fastest popcount inference hot path",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        help="graph-count budget of one inference micro-batch; concurrent "
        "requests coalesce up to this many graphs per encode/similarity pass",
    )
    parser.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="milliseconds a batch opener waits for co-travelling requests "
        "before executing (the batching latency tax on an idle server)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="fail a request whose batch has not completed in this time",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request line"
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser for ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphHD reproduction: graph classification with hyperdimensional computing",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_quickstart_parser(subparsers)
    _add_compare_parser(subparsers)
    _add_scaling_parser(subparsers)
    _add_robustness_parser(subparsers)
    _add_datasets_parser(subparsers)
    _add_store_parser(subparsers)
    _add_train_parser(subparsers)
    _add_serve_parser(subparsers)
    return parser


def run_quickstart(args) -> str:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    store, preamble = _encoding_store_from_args(args)
    result = cross_validate(
        lambda: GraphHDClassifier(
            GraphHDConfig(
                dimension=args.dimension, seed=args.seed, backend=args.backend
            )
        ),
        dataset,
        method_name="GraphHD",
        n_splits=args.folds,
        repetitions=1,
        seed=args.seed,
        encoding_cache=args.encoding_cache,
        n_jobs=args.n_jobs,
        encoding_store=store,
        mmap_mode=_mmap_mode_from_args(args),
        task_policy=_task_policy_from_args(args),
    )
    rows = [
        ["dataset", dataset.name],
        ["graphs", len(dataset)],
        ["classes", dataset.num_classes],
        ["accuracy (mean)", round(result.mean_accuracy, 4)],
        ["accuracy (std)", round(result.std_accuracy, 4)],
        ["train seconds/fold", round(result.mean_train_seconds, 4)],
        ["inference seconds/graph", round(result.mean_inference_seconds_per_graph, 6)],
    ]
    if result.encoding_cached:
        rows.append(["encode-once seconds", round(result.encoding_seconds, 4)])
        if store is not None:
            rows.append(
                ["encoding store", "hit" if result.encoding_store_hit else "miss"]
            )
    return preamble + render_table(
        ["metric", "value"], rows, title="GraphHD quickstart"
    ) + _store_summary(store)


def run_compare(args) -> str:
    datasets = [
        load_dataset(name, scale=args.scale, seed=args.seed) for name in args.datasets
    ]
    store, preamble = _encoding_store_from_args(args)
    comparison = compare_methods(
        datasets,
        methods=tuple(args.methods),
        fast=args.fast,
        n_splits=args.folds,
        repetitions=args.repetitions,
        seed=args.seed,
        dimension=args.dimension,
        backend=args.backend,
        encoding_cache=args.encoding_cache,
        n_jobs=args.n_jobs,
        encoding_store=store,
        mmap_mode=_mmap_mode_from_args(args),
        task_policy=_task_policy_from_args(args),
    )
    output = preamble + render_figure3(comparison)
    # With the encoding cache, per-fold training time excludes encoding; show
    # the one-off encode cost alongside so the timing panel stays honest.
    # encoding_store_hit is recorded per result, so the report stays accurate
    # when the grid cells encoded inside worker processes.
    cached_rows = [
        [
            dataset,
            method,
            round(result.encoding_seconds, 4),
            ("hit" if result.encoding_store_hit else "miss") if store else "-",
        ]
        for (dataset, method), result in comparison.results.items()
        if result.encoding_cached
    ]
    if cached_rows:
        output += "\n\n" + render_table(
            ["dataset", "method", "encode-once seconds", "store"],
            cached_rows,
            title="Encoding cache: dataset encoded once per method "
            "(excluded from per-fold training time)",
        )
    store_hits = sum(
        result.encoding_store_hit for result in comparison.results.values()
    )
    if store is not None:
        output += (
            f"\nencoding store {store.path}: hits={store_hits} "
            f"misses={len(cached_rows) - store_hits} entries={len(store)}"
        )
    return output


def run_scaling(args) -> str:
    store, preamble = _encoding_store_from_args(args)
    points = scaling_experiment(
        args.sizes,
        methods=tuple(args.methods),
        num_graphs=args.num_graphs,
        edge_probability=args.edge_probability,
        fast=args.fast,
        seed=args.seed,
        dimension=args.dimension,
        backend=args.backend,
        encoding_cache=args.encoding_cache,
        n_jobs=args.n_jobs,
        encoding_store=store,
        mmap_mode=_mmap_mode_from_args(args),
        task_policy=_task_policy_from_args(args),
    )
    series = {
        method: [round(point.train_seconds[method], 4) for point in points]
        for method in args.methods
    }
    if args.encoding_cache:
        for method in args.methods:
            encode_series = [
                round(point.encode_seconds.get(method, 0.0), 4) for point in points
            ]
            if any(encode_series):
                series[f"{method} (encode)"] = encode_series
    output = preamble + render_series(
        [point.num_vertices for point in points],
        series,
        x_name="vertices",
        title="Training time in seconds vs. graph size (Figure 4)",
    )
    if store is not None:
        hits = sum(
            sum(point.encoding_store_hit.values()) for point in points
        )
        totals = sum(len(point.encoding_store_hit) for point in points)
        output += (
            f"\nencoding store {store.path}: hits={hits} "
            f"misses={totals - hits} entries={len(store)}"
        )
    return output


def run_robustness(args) -> str:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    store, preamble = _encoding_store_from_args(args)
    train_indices, test_indices = train_test_split(
        dataset.labels, test_fraction=0.25, seed=args.seed
    )
    curve = graphhd_robustness_curve(
        lambda: GraphHDClassifier(
            GraphHDConfig(
                dimension=args.dimension, seed=args.seed, backend=args.backend
            )
        ),
        [dataset.graphs[i] for i in train_indices],
        [dataset.labels[i] for i in train_indices],
        [dataset.graphs[i] for i in test_indices],
        [dataset.labels[i] for i in test_indices],
        corruption_fractions=args.fractions,
        repetitions=args.repetitions,
        seed=args.seed,
        encoding_cache=args.encoding_cache,
        n_jobs=args.n_jobs,
        encoding_store=store,
        mmap_mode=_mmap_mode_from_args(args),
        task_policy=_task_policy_from_args(args),
    )
    rows = [
        [f"{point.corruption_fraction:.0%}", round(point.accuracy, 4)]
        for point in curve.points
    ]
    return preamble + render_table(
        ["corrupted components", "accuracy"],
        rows,
        title=f"GraphHD robustness on {dataset.name}",
    ) + _store_summary(store)


def run_datasets(args) -> str:
    rows = [[name] for name in available_datasets()]
    return render_table(["dataset"], rows, title="Available benchmark datasets")


def _format_timestamp(stamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def run_store(args) -> str:
    store = EncodingStore(args.path)
    if args.store_action == "list":
        manifest = store.manifest()
        rows = [
            [
                info.key[:16],
                info.format,
                info.size_bytes,
                _format_timestamp(info.created_at),
                _format_timestamp(info.last_access_at),
            ]
            for info in sorted(
                manifest.values(), key=lambda info: info.last_access_at
            )
        ]
        return render_table(
            ["key", "format", "bytes", "created", "last access"],
            rows,
            title=f"Encoding store {store.path} ({len(rows)} entries)",
        )
    if args.store_action == "stats":
        stats = store.stats
        rows = [
            ["entries", stats["entries"]],
            ["total bytes", stats["total_bytes"]],
            ["legacy (.npz) entries", stats["legacy_entries"]],
            ["mmap-able (.npy) entries", stats["entries"] - stats["legacy_entries"]],
            ["stray temp files", stats["temp_files"]],
        ]
        return render_table(
            ["metric", "value"], rows, title=f"Encoding store {store.path}"
        )
    if args.store_action == "prune":
        if args.max_bytes is None and args.max_age is None:
            raise SystemExit(
                "repro store prune: at least one of --max-bytes / --max-age "
                "is required"
            )
        report = store.prune(
            max_bytes=args.max_bytes, max_age=args.max_age, policy=args.policy
        )
        return (
            f"pruned encoding store {store.path}: "
            f"removed {report.entries_removed} entries "
            f"({report.bytes_freed} bytes), "
            f"{report.entries_remaining} entries "
            f"({report.bytes_remaining} bytes) remain"
        )
    if args.store_action == "clear":
        report = store.clear()
        return (
            f"cleared encoding store {store.path}: "
            f"{report.entries_removed} entries, "
            f"{report.temp_files_removed} temp files"
        )
    if args.store_action == "migrate":
        migrated = store.migrate()
        return (
            f"migrated encoding store {store.path}: "
            f"{migrated} legacy entries rewritten to the mmap-able format"
        )
    raise ValueError(f"unknown store action {args.store_action!r}")


def _run_train_shard(args) -> str:
    if args.num_shards < 1:
        raise SystemExit(
            f"repro train shard: --num-shards must be positive, got {args.num_shards}"
        )
    if not 0 <= args.shard_index < args.num_shards:
        raise SystemExit(
            f"repro train shard: --shard-index must be in [0, {args.num_shards}), "
            f"got {args.shard_index}"
        )
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    store, preamble = _encoding_store_from_args(args)
    model = GraphHDClassifier(
        GraphHDConfig(dimension=args.dimension, seed=args.seed, backend=args.backend)
    )
    block = shard_indices(len(dataset), args.num_shards)[args.shard_index]
    if block.size == 0:
        raise SystemExit(
            f"repro train shard: shard {args.shard_index} of {args.num_shards} is "
            f"empty ({len(dataset)} graphs); use fewer shards"
        )
    labels = [dataset.labels[i] for i in block]
    if store is not None:
        # Encode the whole dataset through the persistent store, so every
        # shard process shares one cached entry instead of re-encoding.
        encodings, _ = dataset_encodings(
            model,
            dataset.graphs,
            store,
            fingerprint=dataset.fingerprint(),
            mmap_mode=_mmap_mode_from_args(args),
        )
        state = model.fit_state_encoded(encodings[block], labels)
    else:
        state = model.fit_state([dataset.graphs[i] for i in block], labels)
    state.save(args.output)
    rows = [
        ["dataset", dataset.name],
        ["shard", f"{args.shard_index + 1}/{args.num_shards}"],
        ["graphs in shard", int(block.size)],
        ["classes in shard", len(state.classes)],
        ["dimension", state.dimension],
        ["backend", state.backend.name],
        ["state file", args.output],
    ]
    return (
        preamble
        + render_table(["field", "value"], rows, title="Trained shard state")
        + _store_summary(store)
    )


def _run_train_merge(args) -> str:
    states = [TrainingState.load(path) for path in args.states]
    merged = merge_states(states)
    context = merged.context
    if context is None or context.get("encoder") != "GraphHDEncoder":
        raise SystemExit(
            "repro train merge: the merged state carries no GraphHDEncoder "
            "context, so the model configuration cannot be reconstructed; "
            "merge states produced by `repro train shard` or "
            "GraphHDClassifier.fit_state"
        )
    model = GraphHDClassifier(GraphHDConfig(**context["config"]), metric=args.metric)
    model.fit_from_state(merged)
    model.save(args.output)
    if args.state_output is not None:
        merged.save(args.state_output)
    rows = [
        ["shards merged", len(states)],
        ["classes", len(merged.classes)],
        ["training samples", merged.num_samples],
        ["dimension", merged.dimension],
        ["backend", merged.backend.name],
        ["model file", args.output],
    ]
    if args.state_output is not None:
        rows.append(["merged state file", args.state_output])
    return render_table(["field", "value"], rows, title="Merged sharded model")


def _run_train_info(args) -> str:
    state = TrainingState.load(args.path)
    context = state.context or {}
    config = context.get("config", {})
    rows = [
        ["dimension", state.dimension],
        ["backend", state.backend.name],
        ["classes", len(state.classes)],
        ["training samples", state.num_samples],
        ["encoder", context.get("encoder", "-")],
        ["seed", config.get("seed", "-")],
        ["centrality", config.get("centrality", "-")],
    ]
    rows += [
        [f"count[{label!r}]", state.count(label)] for label in state.classes
    ]
    return render_table(
        ["field", "value"], rows, title=f"TrainingState {args.path}"
    )


def run_serve(args) -> str:
    """Start the batched inference service and block until interrupted."""
    # Imported lazily so the serving stack only loads for this command.
    from repro.serve.app import create_server, run_server

    server = create_server(
        args.model,
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_delay=args.max_delay_ms / 1000.0,
        request_timeout=args.request_timeout,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    handle = server.service.manager.current()
    rows = [
        ["address", f"http://{host}:{port}"],
        ["model", handle.path],
        ["model version", handle.version],
        ["backend", handle.model.config.backend],
        ["dimension", handle.model.config.dimension],
        ["classes", handle.num_classes],
        ["metric", handle.model.metric],
        ["max batch size", args.max_batch_size],
        ["max batch delay", f"{args.max_delay_ms} ms"],
        ["endpoints", "POST /predict, GET /healthz, GET /stats, POST /reload"],
    ]
    print(render_table(["field", "value"], rows, title="repro serve"), flush=True)
    run_server(server)
    return f"server on http://{host}:{port} stopped"


def run_train(args) -> str:
    if args.train_action == "shard":
        return _run_train_shard(args)
    if args.train_action == "merge":
        return _run_train_merge(args)
    if args.train_action == "info":
        return _run_train_info(args)
    raise ValueError(f"unknown train action {args.train_action!r}")


_COMMANDS = {
    "quickstart": run_quickstart,
    "compare": run_compare,
    "scaling": run_scaling,
    "robustness": run_robustness,
    "datasets": run_datasets,
    "store": run_store,
    "train": run_train,
    "serve": run_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "clear_encoding_store", False) and not getattr(
        args, "encoding_store", None
    ):
        parser.error("--clear-encoding-store requires --encoding-store PATH")
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
