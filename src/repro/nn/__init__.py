"""Neural network substrate for the GNN baselines.

The paper compares GraphHD against two graph neural networks, GIN-eps and
GIN-eps-JK (Xu et al., 2019; 2018), trained with Adam and a
reduce-on-plateau learning-rate schedule.  This subpackage provides everything
needed to train those models from scratch on top of numpy:

* :mod:`repro.nn.autograd` — a reverse-mode automatic differentiation engine
  over dense numpy arrays with support for constant sparse matrices
  (message passing and graph pooling are sparse mat-muls);
* :mod:`repro.nn.layers` — Linear, MLP, ReLU, Dropout, BatchNorm;
* :mod:`repro.nn.gnn` — the GIN convolution, sum pooling, jumping knowledge,
  and the GIN-eps / GIN-eps-JK classifiers;
* :mod:`repro.nn.optim` — SGD, Adam, and the ReduceLROnPlateau scheduler;
* :mod:`repro.nn.losses` — softmax cross-entropy;
* :mod:`repro.nn.batching` + :mod:`repro.nn.training` — graph mini-batching
  and the training loop used by the evaluation harness.
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import MLP, BatchNorm1d, Dropout, Linear, Module, ReLU, Sequential
from repro.nn.gnn import GINClassifier, GINConv, GINJKClassifier
from repro.nn.optim import SGD, Adam, ReduceLROnPlateau
from repro.nn.losses import cross_entropy
from repro.nn.batching import GraphBatch, batch_graphs
from repro.nn.training import GNNTrainer, TrainingConfig

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "MLP",
    "GINConv",
    "GINClassifier",
    "GINJKClassifier",
    "SGD",
    "Adam",
    "ReduceLROnPlateau",
    "cross_entropy",
    "GraphBatch",
    "batch_graphs",
    "GNNTrainer",
    "TrainingConfig",
]
