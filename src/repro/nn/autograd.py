"""A small reverse-mode automatic differentiation engine over numpy arrays.

The engine implements exactly what the GIN baselines need: dense matrix
multiplication, broadcasting element-wise arithmetic, ReLU, sparse
(constant) matrix products for message passing and pooling, reductions, and
log-softmax.  Gradients are accumulated by a topological-order backward pass
over the recorded computation graph, mirroring the design of PyTorch's
autograd at a much smaller scale.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np
from scipy import sparse

# Global flag toggled by the ``no_grad`` context manager.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording (used for inference)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` back to ``shape`` after numpy broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading broadcast dimensions.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure.

    Parameters
    ----------
    data:
        Array-like value; always stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        *,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents = _parents if _GRAD_ENABLED else ()
        self.name = name

    # ----------------------------------------------------------------- basics
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got shape {self.data.shape}"
            )
        return float(self.data.item())

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing the data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # --------------------------------------------------------------- plumbing
    @staticmethod
    def _ensure(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, gradient: np.ndarray) -> None:
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad = self.grad + gradient

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if gradient is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            gradient = np.ones_like(self.data)

        # Topological order of the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        gradients: dict[int, np.ndarray] = {id(self): np.asarray(gradient, dtype=np.float64)}
        for node in reversed(order):
            node_gradient = gradients.pop(id(node), None)
            if node_gradient is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf parameter: accumulate into .grad.
                node._accumulate(node_gradient)
            if node._backward is not None:
                contributions = node._backward(node_gradient)
                for parent, contribution in contributions:
                    if contribution is None:
                        continue
                    existing = gradients.get(id(parent))
                    if existing is None:
                        gradients[id(parent)] = contribution
                    else:
                        gradients[id(parent)] = existing + contribution

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], list[tuple["Tensor", np.ndarray | None]]],
    ) -> "Tensor":
        track = _GRAD_ENABLED and any(parent.requires_grad for parent in parents)
        result = Tensor(data, requires_grad=track, _parents=parents if track else ())
        if track:
            # Interior node: gradients flow through it (requires_grad marks the
            # graph as live) but only leaf tensors accumulate .grad.
            result._backward = backward
        return result

    # ------------------------------------------------------------- operations
    def __add__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data + other.data

        def backward(gradient):
            return [
                (self, _unbroadcast(gradient, self.data.shape)),
                (other, _unbroadcast(gradient, other.data.shape)),
            ]

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(gradient):
            return [(self, -gradient)]

        return self._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data * other.data

        def backward(gradient):
            return [
                (self, _unbroadcast(gradient * other.data, self.data.shape)),
                (other, _unbroadcast(gradient * self.data, other.data.shape)),
            ]

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data / other.data

        def backward(gradient):
            return [
                (self, _unbroadcast(gradient / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(
                        -gradient * self.data / (other.data**2), other.data.shape
                    ),
                ),
            ]

        return self._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(gradient):
            return [(self, gradient * exponent * self.data ** (exponent - 1))]

        return self._make(data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._ensure(other)
        data = self.data @ other.data

        def backward(gradient):
            return [
                (self, gradient @ other.data.T),
                (other, self.data.T @ gradient),
            ]

        return self._make(data, (self, other), backward)

    __matmul__ = matmul

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(gradient):
            return [(self, gradient * mask)]

        return self._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(gradient):
            return [(self, gradient * data)]

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(gradient):
            return [(self, gradient / self.data)]

        return self._make(data, (self,), backward)

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient):
            gradient = np.asarray(gradient, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(gradient, self.data.shape)
            else:
                if not keepdims:
                    gradient = np.expand_dims(gradient, axis=axis)
                expanded = np.broadcast_to(gradient, self.data.shape)
            return [(self, expanded.copy())]

        return self._make(data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)

        def backward(gradient):
            return [(self, gradient.reshape(self.data.shape))]

        return self._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(gradient):
            return [(self, gradient.T)]

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum_exp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum_exp
        softmax = np.exp(data)

        def backward(gradient):
            summed = gradient.sum(axis=axis, keepdims=True)
            return [(self, gradient - softmax * summed)]

        return self._make(data, (self,), backward)

    def concatenate(self, others: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [self] + [self._ensure(other) for other in others]
        data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
        sizes = [tensor.data.shape[axis] for tensor in tensors]
        boundaries = np.cumsum(sizes)[:-1]

        def backward(gradient):
            pieces = np.split(gradient, boundaries, axis=axis)
            return list(zip(tensors, pieces))

        return self._make(data, tuple(tensors), backward)


def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate a list of tensors along ``axis`` (autograd-aware)."""
    if not tensors:
        raise ValueError("cannot concatenate an empty list of tensors")
    if len(tensors) == 1:
        return tensors[0]
    return tensors[0].concatenate(tensors[1:], axis=axis)


def sparse_matmul(matrix: sparse.spmatrix, tensor: Tensor) -> Tensor:
    """Multiply a *constant* sparse matrix with a dense tensor.

    Used for message passing (adjacency @ node features) and graph pooling
    (indicator @ node features).  The sparse matrix carries no gradient; the
    gradient with respect to the dense operand is ``matrix.T @ upstream``.
    """
    matrix = matrix.tocsr()
    data = matrix @ tensor.data

    def backward(gradient):
        return [(tensor, matrix.T @ gradient)]

    return Tensor._make(data, (tensor,), backward)


def parameter(data, name: str | None = None) -> Tensor:
    """Create a leaf tensor that accumulates gradients (a trainable parameter)."""
    tensor = Tensor(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)
    return tensor
