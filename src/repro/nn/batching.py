"""Mini-batching of graphs for GNN training.

A batch of graphs is represented the way graph learning frameworks do it:
the graphs are merged into one disjoint union whose adjacency matrix is block
diagonal, node features are stacked, and a sparse pooling matrix maps node
rows to graph rows so that graph-level readout (sum pooling) is a single
sparse matrix product.

In the label-free setting of the paper the GNNs receive degenerate node
features; following the TUDataset reference evaluation we use the one-hot
encoded vertex degree (capped) as input features, or the constant feature 1
when ``degree_features`` is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np
from scipy import sparse

from repro.graphs.graph import Graph


@dataclass
class GraphBatch:
    """A batch of graphs merged into one disjoint union.

    Attributes
    ----------
    node_features:
        Dense array of shape ``(total_nodes, feature_dim)``.
    adjacency:
        Block-diagonal sparse adjacency matrix (with self-loops excluded; GIN
        adds the central node term itself via its epsilon weighting).
    pooling:
        Sparse ``(num_graphs, total_nodes)`` indicator matrix for sum pooling.
    labels:
        Integer class index of each graph (or ``None`` at pure inference time).
    num_graphs:
        Number of graphs in the batch.
    """

    node_features: np.ndarray
    adjacency: sparse.csr_matrix
    pooling: sparse.csr_matrix
    labels: np.ndarray | None
    num_graphs: int


def degree_feature_matrix(graphs: Sequence[Graph], max_degree: int) -> np.ndarray:
    """One-hot encoded (capped) vertex degrees, stacked over all graphs."""
    total_nodes = sum(graph.num_vertices for graph in graphs)
    features = np.zeros((total_nodes, max_degree + 1), dtype=np.float64)
    offset = 0
    for graph in graphs:
        degrees = np.minimum(graph.degrees(), max_degree)
        features[offset + np.arange(graph.num_vertices), degrees] = 1.0
        offset += graph.num_vertices
    return features


def constant_feature_matrix(graphs: Sequence[Graph]) -> np.ndarray:
    """A single constant feature of 1.0 per vertex."""
    total_nodes = sum(graph.num_vertices for graph in graphs)
    return np.ones((total_nodes, 1), dtype=np.float64)


def batch_graphs(
    graphs: Sequence[Graph],
    *,
    class_to_index: dict[Hashable, int] | None = None,
    max_degree: int = 32,
    degree_features: bool = True,
) -> GraphBatch:
    """Merge a list of graphs into a :class:`GraphBatch`.

    Parameters
    ----------
    graphs:
        The graphs to merge; order is preserved.
    class_to_index:
        Mapping from graph labels to contiguous class indices.  When ``None``
        the batch carries no labels (inference-only batch).
    max_degree:
        Degrees above this value share the last one-hot bucket.
    degree_features:
        Use one-hot degree features (True, the reference GNN protocol for
        unlabelled graphs) or a constant scalar feature (False).
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("cannot batch an empty list of graphs")

    adjacency = sparse.block_diag(
        [graph.adjacency_matrix() for graph in graphs], format="csr"
    )

    total_nodes = sum(graph.num_vertices for graph in graphs)
    rows = []
    cols = []
    offset = 0
    for graph_index, graph in enumerate(graphs):
        rows.extend([graph_index] * graph.num_vertices)
        cols.extend(range(offset, offset + graph.num_vertices))
        offset += graph.num_vertices
    pooling = sparse.csr_matrix(
        (np.ones(total_nodes), (rows, cols)), shape=(len(graphs), total_nodes)
    )

    if degree_features:
        node_features = degree_feature_matrix(graphs, max_degree)
    else:
        node_features = constant_feature_matrix(graphs)

    labels = None
    if class_to_index is not None:
        labels = np.array(
            [class_to_index[graph.graph_label] for graph in graphs], dtype=np.int64
        )

    return GraphBatch(
        node_features=node_features,
        adjacency=adjacency,
        pooling=pooling,
        labels=labels,
        num_graphs=len(graphs),
    )


def iterate_minibatches(
    graphs: Sequence[Graph],
    *,
    batch_size: int,
    class_to_index: dict[Hashable, int],
    max_degree: int = 32,
    degree_features: bool = True,
    shuffle: bool = True,
    rng: int | np.random.Generator | None = None,
):
    """Yield :class:`GraphBatch` objects covering ``graphs`` in mini-batches."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    graphs = list(graphs)
    order = np.arange(len(graphs))
    if shuffle:
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        generator.shuffle(order)
    for start in range(0, len(graphs), batch_size):
        indices = order[start : start + batch_size]
        yield batch_graphs(
            [graphs[index] for index in indices],
            class_to_index=class_to_index,
            max_degree=max_degree,
            degree_features=degree_features,
        )
