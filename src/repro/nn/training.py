"""Training loop for the GNN baselines.

The trainer reproduces the baseline protocol of the paper (Section V-A2):
Adam starting at learning rate 0.01, a reduce-on-plateau schedule with
patience 5 and decay 0.5 down to 1e-6, mini-batches of 128 graphs, and a
fixed architecture of 1 GIN layer with 32 hidden units.  Node features are
one-hot encoded degrees because the evaluation restricts all methods to graph
structure only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.nn.autograd import no_grad
from repro.nn.batching import batch_graphs, iterate_minibatches
from repro.nn.gnn import GINClassifier, GINJKClassifier
from repro.nn.layers import Module
from repro.nn.losses import accuracy_from_logits, cross_entropy
from repro.nn.optim import Adam, ReduceLROnPlateau


@dataclass
class TrainingConfig:
    """Hyper-parameters of the GNN training loop (paper defaults).

    The paper trains with Adam at 0.01 and a plateau scheduler that halves the
    learning rate (patience 5) down to 1e-6; training stops when the schedule
    bottoms out or after ``epochs`` epochs, mirroring the TUDataset reference
    protocol the baselines were taken from.
    """

    hidden_features: int = 32
    num_layers: int = 1
    epochs: int = 100
    batch_size: int = 128
    learning_rate: float = 0.01
    scheduler_patience: int = 5
    scheduler_factor: float = 0.5
    min_learning_rate: float = 1e-6
    stop_at_min_learning_rate: bool = True
    dropout: float = 0.5
    max_degree: int = 32
    use_batch_norm: bool = True
    seed: int | None = 0


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded during training."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    wall_time_seconds: float = 0.0


class GNNTrainer:
    """Fits a GIN-eps or GIN-eps-JK classifier on a set of labelled graphs.

    Parameters
    ----------
    variant:
        ``"gin"`` for GIN-eps or ``"gin-jk"`` for GIN-eps-JK.
    config:
        Training hyper-parameters; defaults follow the paper.
    """

    def __init__(self, variant: str = "gin", config: TrainingConfig | None = None) -> None:
        if variant not in ("gin", "gin-jk"):
            raise ValueError(f"variant must be 'gin' or 'gin-jk', got {variant!r}")
        self.variant = variant
        self.config = config or TrainingConfig()
        self.model: Module | None = None
        self.class_to_index: dict[Hashable, int] = {}
        self.index_to_class: list[Hashable] = []
        self.history: TrainingHistory | None = None

    def _build_model(self, in_features: int, num_classes: int) -> Module:
        config = self.config
        if self.variant == "gin":
            return GINClassifier(
                in_features,
                num_classes,
                hidden_features=config.hidden_features,
                num_layers=config.num_layers,
                dropout=config.dropout,
                use_batch_norm=config.use_batch_norm,
                seed=config.seed,
            )
        return GINJKClassifier(
            in_features,
            num_classes,
            hidden_features=config.hidden_features,
            num_layers=config.num_layers,
            dropout=config.dropout,
            use_batch_norm=config.use_batch_norm,
            seed=config.seed,
        )

    def fit(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> "GNNTrainer":
        """Train the model on labelled graphs."""
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")
        config = self.config

        distinct = sorted(set(labels), key=lambda value: (str(type(value)), str(value)))
        self.class_to_index = {label: index for index, label in enumerate(distinct)}
        self.index_to_class = distinct

        in_features = config.max_degree + 1
        self.model = self._build_model(in_features, len(distinct))
        self.model.train()
        optimizer = Adam(self.model.parameters(), learning_rate=config.learning_rate)
        scheduler = ReduceLROnPlateau(
            optimizer,
            factor=config.scheduler_factor,
            patience=config.scheduler_patience,
            min_learning_rate=config.min_learning_rate,
        )

        labelled_graphs = []
        for graph, label in zip(graphs, labels):
            if graph.graph_label != label:
                graph = graph.copy()
                graph.graph_label = label
            labelled_graphs.append(graph)

        history = TrainingHistory()
        rng = np.random.default_rng(config.seed)
        start_time = time.perf_counter()
        for _ in range(config.epochs):
            epoch_losses = []
            epoch_accuracies = []
            for batch in iterate_minibatches(
                labelled_graphs,
                batch_size=config.batch_size,
                class_to_index=self.class_to_index,
                max_degree=config.max_degree,
                shuffle=True,
                rng=rng,
            ):
                optimizer.zero_grad()
                logits = self.model(batch)
                loss = cross_entropy(logits, batch.labels)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
                epoch_accuracies.append(accuracy_from_logits(logits, batch.labels))
            epoch_loss = float(np.mean(epoch_losses))
            history.losses.append(epoch_loss)
            history.accuracies.append(float(np.mean(epoch_accuracies)))
            history.learning_rates.append(optimizer.learning_rate)
            scheduler.step(epoch_loss)
            if (
                config.stop_at_min_learning_rate
                and optimizer.learning_rate <= config.min_learning_rate
            ):
                break
        history.wall_time_seconds = time.perf_counter() - start_time
        self.history = history
        return self

    def predict(self, graphs: Sequence[Graph]) -> list[Hashable]:
        """Predict class labels for new graphs."""
        if self.model is None:
            raise RuntimeError("trainer has not been fitted")
        graphs = list(graphs)
        self.model.eval()
        predictions: list[Hashable] = []
        with no_grad():
            for start in range(0, len(graphs), self.config.batch_size):
                chunk = graphs[start : start + self.config.batch_size]
                batch = batch_graphs(
                    chunk,
                    class_to_index=None,
                    max_degree=self.config.max_degree,
                )
                logits = self.model(batch)
                indices = logits.data.argmax(axis=-1)
                predictions.extend(self.index_to_class[int(index)] for index in indices)
        self.model.train()
        return predictions

    def score(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> float:
        """Accuracy on a labelled set of graphs."""
        labels = list(labels)
        predictions = self.predict(graphs)
        if not labels:
            raise ValueError("cannot score an empty set of graphs")
        correct = sum(
            1 for predicted, actual in zip(predictions, labels) if predicted == actual
        )
        return correct / len(labels)
