"""Neural network layers built on the autograd engine.

Only the layers needed by the GIN baselines are provided: linear layers with
Glorot initialization, ReLU, dropout, 1-D batch normalization (used inside the
GIN multi-layer perceptrons), a ``Sequential`` container and a convenience
``MLP`` factory.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.autograd import Tensor, parameter


class Module:
    """Base class for layers and models.

    Subclasses register parameters by assigning :class:`Tensor` leaves created
    with :func:`repro.nn.autograd.parameter` to attributes, and sub-modules by
    assigning :class:`Module` attributes; :meth:`parameters` walks both.
    """

    training: bool = True

    def parameters(self) -> list[Tensor]:
        """All trainable parameters of this module and its children."""
        found: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, found, seen)
        return found

    def _collect(self, value, found: list[Tensor], seen: set[int]) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            for parameter_tensor in value.parameters():
                if id(parameter_tensor) not in seen:
                    seen.add(id(parameter_tensor))
                    found.append(parameter_tensor)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, found, seen)

    def zero_grad(self) -> None:
        """Reset the gradients of every parameter."""
        for parameter_tensor in self.parameters():
            parameter_tensor.zero_grad()

    def train(self) -> "Module":
        """Switch this module (and children) to training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) to evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(parameter_tensor.data.size for parameter_tensor in self.parameters()))


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with Glorot-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        limit = np.sqrt(6.0 / (in_features + out_features))
        weight = generator.uniform(-limit, limit, size=(in_features, out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = parameter(weight, name="weight")
        self.bias = parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        outputs = inputs @ self.weight
        if self.bias is not None:
            outputs = outputs + self.bias
        return outputs


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, probability: float = 0.5, *, rng: int | np.random.Generator | None = None):
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {probability}")
        self.probability = float(probability)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.probability == 0.0:
            return inputs
        keep = 1.0 - self.probability
        mask = (self._rng.random(inputs.shape) < keep).astype(np.float64) / keep
        return inputs * Tensor(mask)


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of ``(batch, features)`` inputs.

    Keeps running estimates of mean and variance for evaluation mode, as the
    reference GIN implementation does inside its MLPs.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.1, epsilon: float = 1e-5):
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.gamma = parameter(np.ones(num_features), name="gamma")
        self.beta = parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, inputs: Tensor) -> Tensor:
        if self.training:
            batch_mean = inputs.data.mean(axis=0)
            batch_var = inputs.data.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            mean, variance = batch_mean, batch_var
        else:
            mean, variance = self.running_mean, self.running_var
        scale = 1.0 / np.sqrt(variance + self.epsilon)
        normalized = (inputs + Tensor(-mean)) * Tensor(scale)
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Applies a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def forward(self, inputs: Tensor) -> Tensor:
        outputs = inputs
        for module in self.modules:
            outputs = module(outputs)
        return outputs


def MLP(
    in_features: int,
    hidden_features: int,
    out_features: int,
    *,
    use_batch_norm: bool = True,
    rng: int | np.random.Generator | None = None,
) -> Sequential:
    """Two-layer perceptron used inside GIN convolutions.

    Structure: ``Linear -> ReLU -> Linear`` with an optional batch norm on the
    output, mirroring the reference GIN architecture.
    """
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    layers: list[Module] = [
        Linear(in_features, hidden_features, rng=generator),
        ReLU(),
        Linear(hidden_features, out_features, rng=generator),
    ]
    if use_batch_norm:
        layers.append(BatchNorm1d(out_features))
    return Sequential(*layers)
