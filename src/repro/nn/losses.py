"""Loss functions for the GNN baselines."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy between ``logits`` and integer class targets.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, num_classes)``.
    targets:
        Integer array of shape ``(batch,)`` with class indices.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits shape {logits.shape}"
        )
    if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
        raise ValueError("target class index out of range")

    log_probabilities = logits.log_softmax(axis=-1)
    batch_size, num_classes = logits.shape
    one_hot = np.zeros((batch_size, num_classes), dtype=np.float64)
    one_hot[np.arange(batch_size), targets] = 1.0
    negative_log_likelihood = -(log_probabilities * Tensor(one_hot)).sum() * (
        1.0 / batch_size
    )
    return negative_log_likelihood


def accuracy_from_logits(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose arg-max matches the target class index."""
    values = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if len(targets) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = values.argmax(axis=-1)
    return float(np.mean(predictions == targets))
