"""Optimizers and learning-rate scheduling.

The paper trains the GNN baselines with Adam starting at a learning rate of
0.01 and a reduce-on-plateau scheduler (patience 5, decay 0.5, minimum 1e-6),
so both are implemented here along with plain SGD (used in tests and as a
sanity baseline).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base class holding the parameter list and the shared ``zero_grad``."""

    def __init__(self, parameters: Sequence[Tensor], learning_rate: float) -> None:
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received an empty parameter list")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.parameters = parameters
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        """Reset the gradient of every parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                self._velocity[index] = (
                    self.momentum * self._velocity[index] + gradient
                )
                gradient = self._velocity[index]
            parameter.data -= self.learning_rate * gradient


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        learning_rate: float = 0.01,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            self._first_moment[index] = (
                self.beta1 * self._first_moment[index] + (1 - self.beta1) * gradient
            )
            self._second_moment[index] = (
                self.beta2 * self._second_moment[index]
                + (1 - self.beta2) * gradient**2
            )
            corrected_first = self._first_moment[index] / bias1
            corrected_second = self._second_moment[index] / bias2
            parameter.data -= (
                self.learning_rate
                * corrected_first
                / (np.sqrt(corrected_second) + self.epsilon)
            )


class ReduceLROnPlateau:
    """Reduce the optimizer's learning rate when a monitored metric stops improving.

    Matches the scheduler used by the paper: patience 5, decay factor 0.5, and
    a minimum learning rate of 1e-6.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        factor: float = 0.5,
        patience: int = 5,
        min_learning_rate: float = 1e-6,
        mode: str = "min",
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if patience < 0:
            raise ValueError(f"patience must be non-negative, got {patience}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.optimizer = optimizer
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_learning_rate = float(min_learning_rate)
        self.mode = mode
        self._best: float | None = None
        self._bad_epochs = 0

    @property
    def learning_rate(self) -> float:
        """Current learning rate of the wrapped optimizer."""
        return self.optimizer.learning_rate

    def _is_improvement(self, metric: float) -> bool:
        if self._best is None:
            return True
        if self.mode == "min":
            return metric < self._best - 1e-12
        return metric > self._best + 1e-12

    def step(self, metric: float) -> bool:
        """Record ``metric`` for this epoch; returns True if the LR was reduced."""
        if self._is_improvement(metric):
            self._best = float(metric)
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        if self._bad_epochs > self.patience:
            new_learning_rate = max(
                self.optimizer.learning_rate * self.factor, self.min_learning_rate
            )
            reduced = new_learning_rate < self.optimizer.learning_rate
            self.optimizer.learning_rate = new_learning_rate
            self._bad_epochs = 0
            return reduced
        return False
