"""Graph isomorphism network models: GIN-eps and GIN-eps-JK.

Xu et al. (2019) define the GIN convolution

``h_v^{(k)} = MLP^{(k)}((1 + eps^{(k)}) * h_v^{(k-1)} + sum_{u in N(v)} h_u^{(k-1)})``

where ``eps`` is a learnable scalar (the "-eps" variants of the paper).
Graph-level readout is sum pooling of the node embeddings; the jumping
knowledge variant (GIN-eps-JK, Xu et al. 2018) concatenates the readouts of
every layer (including the input features) before the final classifier, which
is also the readout used by the reference GIN implementation.

The paper's baseline configuration is 1 GIN layer with 32 hidden units, which
is the default here.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate, parameter, sparse_matmul
from repro.nn.batching import GraphBatch
from repro.nn.layers import MLP, Dropout, Linear, Module


class GINConv(Module):
    """A single GIN convolution with a learnable epsilon."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        hidden_features: int | None = None,
        use_batch_norm: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        hidden = hidden_features if hidden_features is not None else out_features
        self.mlp = MLP(
            in_features,
            hidden,
            out_features,
            use_batch_norm=use_batch_norm,
            rng=rng,
        )
        self.epsilon = parameter(np.zeros(1), name="epsilon")

    def forward(self, node_features: Tensor, adjacency) -> Tensor:
        neighbor_sum = sparse_matmul(adjacency, node_features)
        center = node_features * (self.epsilon + Tensor(np.ones(1)))
        return self.mlp(center + neighbor_sum)


class GINClassifier(Module):
    """GIN-eps graph classifier: GIN layers, sum pooling, linear read-out."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        *,
        hidden_features: int = 32,
        num_layers: int = 1,
        dropout: float = 0.5,
        use_batch_norm: bool = True,
        seed: int | None = 0,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be at least 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.hidden_features = int(hidden_features)
        self.convolutions = [
            GINConv(
                in_features if layer == 0 else hidden_features,
                hidden_features,
                use_batch_norm=use_batch_norm,
                rng=rng,
            )
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)
        self.readout = Linear(hidden_features, num_classes, rng=rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        hidden = Tensor(batch.node_features)
        for convolution in self.convolutions:
            hidden = convolution(hidden, batch.adjacency).relu()
        pooled = sparse_matmul(batch.pooling, hidden)
        pooled = self.dropout(pooled)
        return self.readout(pooled)


class GINJKClassifier(Module):
    """GIN-eps-JK: jumping-knowledge readout concatenating every layer's pooling."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        *,
        hidden_features: int = 32,
        num_layers: int = 1,
        dropout: float = 0.5,
        use_batch_norm: bool = True,
        seed: int | None = 0,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be at least 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.num_layers = int(num_layers)
        self.hidden_features = int(hidden_features)
        self.in_features = int(in_features)
        self.convolutions = [
            GINConv(
                in_features if layer == 0 else hidden_features,
                hidden_features,
                use_batch_norm=use_batch_norm,
                rng=rng,
            )
            for layer in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)
        readout_features = in_features + hidden_features * num_layers
        self.readout = Linear(readout_features, num_classes, rng=rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        hidden = Tensor(batch.node_features)
        layer_poolings = [sparse_matmul(batch.pooling, hidden)]
        for convolution in self.convolutions:
            hidden = convolution(hidden, batch.adjacency).relu()
            layer_poolings.append(sparse_matmul(batch.pooling, hidden))
        pooled = concatenate(layer_poolings, axis=-1)
        pooled = self.dropout(pooled)
        return self.readout(pooled)
