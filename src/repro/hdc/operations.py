"""The fundamental HDC operations: bundling, binding, permutation, similarity.

The paper (Section III) describes three operations over hypervectors:

* **bundling** (addition): element-wise sum followed by an optional
  majority-vote normalization, producing a vector similar to all its inputs;
* **binding** (multiplication): element-wise product, producing a vector
  quasi-orthogonal to both inputs — used by GraphHD to encode edges;
* **permutation**: a cyclic rotation of the components, used to encode order.

Similarity between hypervectors is measured with cosine similarity (bipolar)
or the (inverse) normalized Hamming distance (binary).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hdc.hypervector import ACCUMULATOR_DTYPE, HV_DTYPE, ensure_matrix


def bind(*hypervectors: np.ndarray) -> np.ndarray:
    """Bind two or more bipolar hypervectors by element-wise multiplication.

    Binding is associative, commutative and — for bipolar vectors — its own
    inverse: ``bind(bind(a, b), b) == a``.  The result is quasi-orthogonal to
    each operand, which is what makes it suitable for representing an
    association such as a graph edge.

    Raises
    ------
    ValueError
        If fewer than two hypervectors are given or their shapes differ.
    """
    if len(hypervectors) < 2:
        raise ValueError("bind requires at least two hypervectors")
    first = np.asarray(hypervectors[0])
    result = first.astype(ACCUMULATOR_DTYPE, copy=True)
    for other in hypervectors[1:]:
        other = np.asarray(other)
        if other.shape != first.shape:
            raise ValueError(
                f"cannot bind hypervectors of shapes {first.shape} and {other.shape}"
            )
        result *= other.astype(ACCUMULATOR_DTYPE)
    return result.astype(HV_DTYPE)


def bundle(
    hypervectors: Sequence[np.ndarray] | np.ndarray,
    *,
    normalize: bool = True,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Bundle (add) a collection of hypervectors.

    Parameters
    ----------
    hypervectors:
        Sequence of hypervectors (or a 2-D array of shape
        ``(count, dimension)``) to be bundled.
    normalize:
        If ``True`` (default), apply the element-wise majority vote
        ``sign(sum)`` so the result is again bipolar.  Ties (an exact zero
        component, possible for an even number of inputs) are broken
        randomly, which avoids a systematic bias towards either polarity.
        If ``False``, the raw integer sum is returned — useful when further
        bundling is going to happen (e.g. class-vector accumulation).
    rng:
        Seed or generator used only for random tie breaking.

    Returns
    -------
    numpy.ndarray
        Bipolar ``int8`` vector if ``normalize`` else an ``int64`` sum vector.
    """
    matrix = ensure_matrix(hypervectors)
    summed = matrix.astype(ACCUMULATOR_DTYPE).sum(axis=0)
    if not normalize:
        return summed
    return normalize_hard(summed, rng=rng)


def random_tie_signs(
    rng: int | np.random.Generator | None, count: int
) -> np.ndarray:
    """Draw ``count`` random bipolar signs for majority-vote tie-breaking.

    This is *the* tie-breaking stream: every majority vote — the dense
    :func:`normalize_hard` and the packed word-space vote of
    :mod:`repro.hdc.bitslice` — draws ties through this one function, in
    row-major component order, one draw per tie.  Sharing the draw (same
    generator construction, same ``integers`` call, same sign mapping) is
    what makes dense and packed normalization bit-identical even on tie-heavy
    accumulators.
    """
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    return (
        2 * generator.integers(0, 2, size=int(count), dtype=np.int8) - 1
    ).astype(HV_DTYPE)


def normalize_hard(
    accumulator: np.ndarray,
    *,
    rng: int | np.random.Generator | None = None,
    tie_breaker: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the element-wise majority vote (sign) to an accumulated sum.

    Zero entries — ties in the majority vote — are assigned a random polarity
    so that repeated normalization of even bundles does not bias the result.
    Passing a fixed bipolar ``tie_breaker`` vector instead makes the
    normalization fully deterministic (ties copy the tie-breaker's sign),
    which GraphHD uses so that a graph always encodes to the same hypervector
    regardless of batching.

    ``accumulator`` may also be a ``(count, dimension)`` matrix of
    accumulators (the flat-batch encoding path normalizes a whole dataset at
    once); a 1-D ``tie_breaker`` is then broadcast across the rows.
    """
    accumulator = np.asarray(accumulator)
    signed = np.sign(accumulator).astype(HV_DTYPE)
    ties = signed == 0
    if np.any(ties):
        if tie_breaker is not None:
            tie_breaker = np.asarray(tie_breaker)
            if tie_breaker.shape != signed.shape[-tie_breaker.ndim :]:
                raise ValueError(
                    f"tie_breaker shape {tie_breaker.shape} does not match "
                    f"accumulator shape {signed.shape}"
                )
            signed[ties] = np.broadcast_to(tie_breaker, signed.shape)[ties].astype(
                HV_DTYPE
            )
        else:
            signed[ties] = random_tie_signs(rng, int(ties.sum()))
    return signed


def permute(hypervector: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically rotate the components of a hypervector.

    Permutation preserves the distance structure of the space while producing
    a vector quasi-orthogonal to its input; it is typically used to encode the
    position of an element in a sequence.  ``permute(x, k)`` undone by
    ``permute(x, -k)``.
    """
    array = np.asarray(hypervector)
    return np.roll(array, shifts, axis=-1)


def dot_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Raw dot product between two hypervectors as a Python float."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.dot(a, b))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors, in ``[-1, 1]``.

    A zero vector has, by convention, similarity 0 with everything.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Inverse normalized Hamming distance: the fraction of equal components.

    Works for both binary and bipolar hypervectors; the result lies in
    ``[0, 1]`` where 1 means identical and ~0.5 means unrelated random vectors.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 1.0
    return float(np.mean(a == b))


_SIMILARITY_FUNCTIONS = {
    "cosine": cosine_similarity,
    "hamming": hamming_similarity,
    "dot": dot_similarity,
}


def similarity(a: np.ndarray, b: np.ndarray, metric: str = "cosine") -> float:
    """Dispatch to one of the supported similarity metrics by name.

    Supported metrics: ``"cosine"``, ``"hamming"``, ``"dot"``.
    """
    try:
        function = _SIMILARITY_FUNCTIONS[metric]
    except KeyError as error:
        raise ValueError(
            f"unknown similarity metric {metric!r}; "
            f"expected one of {sorted(_SIMILARITY_FUNCTIONS)}"
        ) from error
    return function(a, b)


def similarity_matrix(
    queries: Sequence[np.ndarray] | np.ndarray,
    references: Sequence[np.ndarray] | np.ndarray,
    metric: str = "cosine",
) -> np.ndarray:
    """Pairwise similarity between two collections of hypervectors.

    Returns an array of shape ``(len(queries), len(references))``.  The cosine
    and dot metrics are computed with a single matrix product; Hamming falls
    back to a vectorized comparison.
    """
    query_matrix = ensure_matrix(queries).astype(np.float64)
    reference_matrix = ensure_matrix(references).astype(np.float64)
    if query_matrix.shape[1] != reference_matrix.shape[1]:
        raise ValueError(
            "dimensionality mismatch: "
            f"{query_matrix.shape[1]} vs {reference_matrix.shape[1]}"
        )
    if metric == "dot":
        return query_matrix @ reference_matrix.T
    if metric == "cosine":
        query_norms = np.linalg.norm(query_matrix, axis=1, keepdims=True)
        reference_norms = np.linalg.norm(reference_matrix, axis=1, keepdims=True)
        query_norms[query_norms == 0.0] = 1.0
        reference_norms[reference_norms == 0.0] = 1.0
        return (query_matrix / query_norms) @ (reference_matrix / reference_norms).T
    if metric == "hamming":
        # Broadcast comparison in blocks to avoid building a huge 3-D array.
        result = np.empty((query_matrix.shape[0], reference_matrix.shape[0]))
        for index, query in enumerate(query_matrix):
            result[index] = np.mean(reference_matrix == query, axis=1)
        return result
    raise ValueError(
        f"unknown similarity metric {metric!r}; "
        f"expected one of {sorted(_SIMILARITY_FUNCTIONS)}"
    )
