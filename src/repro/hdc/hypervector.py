"""Creation and conversion of hypervectors.

Hypervectors are plain :class:`numpy.ndarray` objects.  GraphHD (and the rest of
this library) follows the paper and uses *bipolar* hypervectors whose components
are drawn independently and uniformly from ``{-1, +1}``, with a default
dimensionality of 10,000.  Binary ``{0, 1}`` hypervectors are also supported
because several HDC hardware papers (e.g. Schmuck et al.) operate on dense
binary vectors; conversion helpers map between the two conventions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Dimensionality used by the paper for all experiments.
DEFAULT_DIMENSION = 10_000

#: Integer dtype used for bipolar/binary hypervectors.  ``int8`` keeps the
#: memory footprint of a 10,000-dimensional vector at 10 kB.
HV_DTYPE = np.int8

#: Accumulator dtype used when bundling many hypervectors.
ACCUMULATOR_DTYPE = np.int64


def _as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for fresh OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_bipolar(
    dimension: int = DEFAULT_DIMENSION,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw a single random bipolar hypervector with i.i.d. ``{-1, +1}`` entries.

    Parameters
    ----------
    dimension:
        Number of components.  Must be positive.
    rng:
        Seed or generator controlling the draw.

    Returns
    -------
    numpy.ndarray
        An ``int8`` array of shape ``(dimension,)``.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    generator = _as_generator(rng)
    values = generator.integers(0, 2, size=dimension, dtype=HV_DTYPE)
    return (2 * values - 1).astype(HV_DTYPE)


def random_binary(
    dimension: int = DEFAULT_DIMENSION,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw a single random binary hypervector with i.i.d. ``{0, 1}`` entries."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    generator = _as_generator(rng)
    return generator.integers(0, 2, size=dimension, dtype=HV_DTYPE)


def random_hypervectors(
    count: int,
    dimension: int = DEFAULT_DIMENSION,
    *,
    kind: str = "bipolar",
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``count`` independent random hypervectors as a 2-D array.

    Parameters
    ----------
    count:
        Number of hypervectors to generate.
    dimension:
        Dimensionality of each hypervector.
    kind:
        Either ``"bipolar"`` (entries in ``{-1, +1}``) or ``"binary"``
        (entries in ``{0, 1}``).
    rng:
        Seed or generator controlling the draw.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(count, dimension)`` and dtype ``int8``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    generator = _as_generator(rng)
    bits = generator.integers(0, 2, size=(count, dimension), dtype=HV_DTYPE)
    if kind == "binary":
        return bits
    if kind == "bipolar":
        return (2 * bits - 1).astype(HV_DTYPE)
    raise ValueError(f"kind must be 'bipolar' or 'binary', got {kind!r}")


def to_bipolar(hypervector: np.ndarray) -> np.ndarray:
    """Convert a binary ``{0, 1}`` hypervector to bipolar ``{-1, +1}``.

    Bipolar inputs are returned unchanged (as a copy is not required the same
    array may be returned).
    """
    array = np.asarray(hypervector)
    if array.size == 0:
        return array.astype(HV_DTYPE)
    minimum = array.min()
    if minimum < 0:
        # Already bipolar.
        return array.astype(HV_DTYPE, copy=False)
    return (2 * array.astype(ACCUMULATOR_DTYPE) - 1).astype(HV_DTYPE)


def to_binary(hypervector: np.ndarray) -> np.ndarray:
    """Convert a bipolar ``{-1, +1}`` hypervector to binary ``{0, 1}``.

    Binary inputs are returned unchanged.  Zero entries map to 0.
    """
    array = np.asarray(hypervector)
    if array.size == 0:
        return array.astype(HV_DTYPE)
    if array.min() >= 0:
        return array.astype(HV_DTYPE, copy=False)
    return (array > 0).astype(HV_DTYPE)


def ensure_matrix(hypervectors: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
    """Stack a sequence of hypervectors into a 2-D ``(count, dimension)`` array.

    A 2-D array input is passed through unchanged.  Raises ``ValueError`` on an
    empty sequence because the dimensionality would be ambiguous.
    """
    if isinstance(hypervectors, np.ndarray) and hypervectors.ndim == 2:
        return hypervectors
    stacked = [np.asarray(hv) for hv in hypervectors]
    if not stacked:
        raise ValueError("cannot stack an empty sequence of hypervectors")
    return np.vstack(stacked)


def expected_orthogonality_bound(dimension: int, num_std: float = 4.0) -> float:
    """Bound on the absolute cosine similarity of two random bipolar hypervectors.

    Two i.i.d. random bipolar vectors have dot products distributed with mean 0
    and standard deviation ``sqrt(dimension)``, so their cosine similarity has
    standard deviation ``1 / sqrt(dimension)``.  The returned bound is
    ``num_std`` standard deviations, useful in tests asserting
    quasi-orthogonality.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return num_std / float(np.sqrt(dimension))
