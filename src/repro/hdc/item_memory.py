"""Item memories: stores of basis hypervectors.

The encoding stage of every HDC model starts from a set of *basis
hypervectors* that represent the atomic units of information (symbols,
feature identifiers, discretized values, ...).  These stay fixed throughout
training and inference.  Three standard flavours are provided:

* :class:`ItemMemory` — independent random hypervectors, one per symbol; any
  two entries are quasi-orthogonal.  GraphHD uses this to map PageRank
  centrality ranks to vertex hypervectors.
* :class:`LevelItemMemory` — correlated hypervectors for ordered/quantized
  scalar values: neighbouring levels share most components, the extremes are
  quasi-orthogonal.
* :class:`CircularItemMemory` — like the level memory but wrapping around,
  suited for periodic quantities (angles, time of day).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.hdc.backend import HDCBackend, get_backend
from repro.hdc.hypervector import DEFAULT_DIMENSION, HV_DTYPE, random_bipolar


class ItemMemory:
    """Lazy dictionary of independent random basis hypervectors.

    Hypervectors are generated on first access and memoized so the same key
    always maps to the same hypervector within one memory instance.  The
    generation is driven by a private generator seeded at construction, making
    the memory fully reproducible for a given seed *and* insertion order; the
    :meth:`get_many` helper additionally guarantees order-independence by
    sorting keys when they are all of one sortable type.

    The memory stores hypervectors in the native format of its compute
    ``backend`` (dense int8 bipolar by default, bit-packed ``uint64`` words
    for the packed backend).  Both backends consume the same random stream,
    so for a given seed the packed entries are exactly the bit-packing of the
    dense entries.
    """

    def __init__(
        self,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
        backend: str | HDCBackend | None = None,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.backend = get_backend(backend)
        self._rng = np.random.default_rng(seed)
        self._store: dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def keys(self) -> Iterable[Hashable]:
        """Keys that currently have a materialized hypervector."""
        return self._store.keys()

    def get(self, key: Hashable) -> np.ndarray:
        """Return the hypervector for ``key``, creating it on first access."""
        hypervector = self._store.get(key)
        if hypervector is None:
            hypervector = self.backend.random_one(self.dimension, rng=self._rng)
            self._store[key] = hypervector
        return hypervector

    __getitem__ = get

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Return hypervectors for ``keys`` stacked into a ``(len, d)`` array.

        Unseen keys are materialized first, in sorted order when possible, so
        that the mapping does not depend on the order of the query.
        """
        keys = list(keys)
        unseen = [key for key in keys if key not in self._store]
        if unseen:
            try:
                ordered = sorted(set(unseen))
            except TypeError:
                ordered = list(dict.fromkeys(unseen))
            for key in ordered:
                self.get(key)
        if not keys:
            return self.backend.empty(0, self.dimension)
        return np.vstack([self._store[key] for key in keys])

    def as_dict(self) -> Mapping[Hashable, np.ndarray]:
        """Read-only snapshot of the materialized entries."""
        return dict(self._store)


class LevelItemMemory:
    """Correlated hypervectors for an ordered set of quantization levels.

    The memory interpolates between two random endpoint hypervectors: level 0
    equals the low endpoint, the last level equals the high endpoint, and each
    intermediate level flips a progressively larger prefix of a random
    component permutation.  Consecutive levels therefore differ in roughly
    ``dimension / (levels - 1)`` components, giving the similarity structure
    expected of a thermometer/level encoding.
    """

    def __init__(
        self,
        levels: int,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be at least 2, got {levels}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.levels = int(levels)
        self.dimension = int(dimension)
        rng = np.random.default_rng(seed)
        low = random_bipolar(dimension, rng=rng)
        high = random_bipolar(dimension, rng=rng)
        flip_order = rng.permutation(dimension)
        self._vectors = np.empty((levels, dimension), dtype=HV_DTYPE)
        for level in range(levels):
            fraction = level / (levels - 1)
            flip_count = int(round(fraction * dimension))
            vector = low.copy()
            flip_positions = flip_order[:flip_count]
            vector[flip_positions] = high[flip_positions]
            self._vectors[level] = vector

    def __len__(self) -> int:
        return self.levels

    def get(self, level: int) -> np.ndarray:
        """Hypervector for quantization ``level`` (0-based)."""
        if not 0 <= level < self.levels:
            raise IndexError(f"level {level} out of range [0, {self.levels})")
        return self._vectors[level]

    __getitem__ = get

    def get_value(self, value: float, low: float, high: float) -> np.ndarray:
        """Quantize ``value`` from ``[low, high]`` into a level and return its HV."""
        if high <= low:
            raise ValueError(f"invalid range [{low}, {high}]")
        clipped = min(max(value, low), high)
        fraction = (clipped - low) / (high - low)
        level = int(round(fraction * (self.levels - 1)))
        return self.get(level)

    def all_vectors(self) -> np.ndarray:
        """All level hypervectors as a ``(levels, dimension)`` array."""
        return self._vectors.copy()


class CircularItemMemory:
    """Level-style memory whose similarity structure wraps around.

    Levels are placed on a circle and encoded by flipping a sliding window of
    half the components: the cosine similarity between two levels decreases
    linearly with their circular distance, reaching its minimum (maximal
    dissimilarity) for diametrically opposite levels and rising back to 1 as
    the distance wraps around.  Suited for periodic quantities such as angles
    or time of day.
    """

    def __init__(
        self,
        levels: int,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be at least 2, got {levels}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.levels = int(levels)
        self.dimension = int(dimension)
        rng = np.random.default_rng(seed)
        base = random_bipolar(dimension, rng=rng)
        flip_order = rng.permutation(dimension)
        half = dimension // 2
        self._vectors = np.empty((levels, dimension), dtype=HV_DTYPE)
        for level in range(levels):
            fraction = level / levels
            start = int(round(fraction * dimension))
            vector = base.copy()
            window = np.arange(start, start + half) % dimension
            positions = flip_order[window]
            vector[positions] = -vector[positions]
            self._vectors[level] = vector

    def __len__(self) -> int:
        return self.levels

    def get(self, level: int) -> np.ndarray:
        """Hypervector for ``level``; indices wrap modulo the number of levels."""
        return self._vectors[level % self.levels]

    __getitem__ = get

    def all_vectors(self) -> np.ndarray:
        """All level hypervectors as a ``(levels, dimension)`` array."""
        return self._vectors.copy()
