"""Item memories: stores of basis hypervectors.

The encoding stage of every HDC model starts from a set of *basis
hypervectors* that represent the atomic units of information (symbols,
feature identifiers, discretized values, ...).  These stay fixed throughout
training and inference.  Three standard flavours are provided:

* :class:`ItemMemory` — independent random hypervectors, one per symbol; any
  two entries are quasi-orthogonal.  GraphHD uses this to map PageRank
  centrality ranks to vertex hypervectors.
* :class:`LevelItemMemory` — correlated hypervectors for ordered/quantized
  scalar values: neighbouring levels share most components, the extremes are
  quasi-orthogonal.
* :class:`CircularItemMemory` — like the level memory but wrapping around,
  suited for periodic quantities (angles, time of day).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.hdc.backend import HDCBackend, get_backend
from repro.hdc.hypervector import DEFAULT_DIMENSION, HV_DTYPE, random_bipolar


class ItemMemory:
    """Lazy dictionary of independent random basis hypervectors.

    Hypervectors are generated on first access and memoized so the same key
    always maps to the same hypervector within one memory instance.  The
    generation is driven by a private generator seeded at construction, making
    the memory fully reproducible for a given seed *and* insertion order; the
    :meth:`get_many` helper additionally guarantees order-independence by
    sorting keys when they are all of one sortable type.

    The memory stores hypervectors in the native format of its compute
    ``backend`` (dense int8 bipolar by default, bit-packed ``uint64`` words
    for the packed backend).  Both backends consume the same random stream,
    so for a given seed the packed entries are exactly the bit-packing of the
    dense entries.

    Internally the entries live as rows of one contiguous, append-only
    ``(capacity, storage_width)`` matrix (grown by doubling), so batched
    lookups are plain row gathers instead of a ``np.vstack`` over a dict —
    the flat-batch graph encoder indexes straight into :attr:`matrix`.
    """

    def __init__(
        self,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
        backend: str | HDCBackend | None = None,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.backend = get_backend(backend)
        self._rng = np.random.default_rng(seed)
        self._index: dict[Hashable, int] = {}
        self._matrix = self.backend.empty(0, self.dimension)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def keys(self) -> Iterable[Hashable]:
        """Keys that currently have a materialized hypervector."""
        return self._index.keys()

    @property
    def matrix(self) -> np.ndarray:
        """Contiguous ``(len(self), storage_width)`` view of all entries.

        Row ``i`` is the hypervector of the ``i``-th materialized key (see
        :meth:`index_of`); the view is read-only and stays valid until the
        next entry is materialized.
        """
        view = self._matrix[: len(self._index)]
        view.flags.writeable = False
        return view

    def index_of(self, key: Hashable) -> int:
        """Row index of ``key`` in :attr:`matrix`, materializing it if needed."""
        index = self._index.get(key)
        if index is None:
            index = self._append(self.backend.random_one(self.dimension, rng=self._rng))
            self._index[key] = index
        return index

    def _append(self, hypervector: np.ndarray) -> int:
        count = len(self._index)
        if count >= self._matrix.shape[0]:
            capacity = max(8, 2 * self._matrix.shape[0])
            grown = self.backend.empty(capacity, self.dimension)
            grown[:count] = self._matrix[:count]
            self._matrix = grown
        self._matrix[count] = hypervector
        return count

    def get(self, key: Hashable) -> np.ndarray:
        """Return the hypervector for ``key``, creating it on first access."""
        # Materialize before indexing: appending may reallocate the matrix.
        index = self.index_of(key)
        return self._matrix[index]

    __getitem__ = get

    def set(self, key: Hashable, hypervector: np.ndarray) -> None:
        """Store an explicit hypervector for ``key`` (used by model loading).

        Overwrites the entry if ``key`` is already materialized; otherwise the
        vector is appended without consuming the random stream.
        """
        hypervector = np.asarray(hypervector, dtype=self._matrix.dtype)
        expected = self.backend.storage_width(self.dimension)
        if hypervector.shape != (expected,):
            raise ValueError(
                f"expected a hypervector of shape ({expected},), got {hypervector.shape}"
            )
        index = self._index.get(key)
        if index is None:
            self._index[key] = self._append(hypervector)
        else:
            self._matrix[index] = hypervector

    def _ensure_keys(self, keys: list[Hashable]) -> None:
        """Materialize ``keys``, unseen ones first in sorted order when possible."""
        unseen = [key for key in keys if key not in self._index]
        if not unseen:
            return
        try:
            ordered = sorted(set(unseen))
        except TypeError:
            ordered = list(dict.fromkeys(unseen))
        for key in ordered:
            self.index_of(key)

    def indices_for(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Row indices of ``keys`` in :attr:`matrix` as an int64 array.

        Unseen keys are materialized first, in sorted order when possible, so
        the mapping does not depend on the order of the query.
        """
        keys = list(keys)
        self._ensure_keys(keys)
        index = self._index
        return np.fromiter(
            (index[key] for key in keys), dtype=np.int64, count=len(keys)
        )

    def get_many(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Return hypervectors for ``keys`` stacked into a ``(len, d)`` array.

        Unseen keys are materialized first, in sorted order when possible, so
        that the mapping does not depend on the order of the query.
        """
        keys = list(keys)
        if not keys:
            return self.backend.empty(0, self.dimension)
        # Materialize before indexing: appending may reallocate the matrix.
        indices = self.indices_for(keys)
        return self._matrix[indices]

    def as_dict(self) -> Mapping[Hashable, np.ndarray]:
        """Read-only snapshot of the materialized entries."""
        return {key: self._matrix[index].copy() for key, index in self._index.items()}


class LevelItemMemory:
    """Correlated hypervectors for an ordered set of quantization levels.

    The memory interpolates between two random endpoint hypervectors: level 0
    equals the low endpoint, the last level equals the high endpoint, and each
    intermediate level flips a progressively larger prefix of a random
    component permutation.  Consecutive levels therefore differ in roughly
    ``dimension / (levels - 1)`` components, giving the similarity structure
    expected of a thermometer/level encoding.
    """

    def __init__(
        self,
        levels: int,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be at least 2, got {levels}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.levels = int(levels)
        self.dimension = int(dimension)
        rng = np.random.default_rng(seed)
        low = random_bipolar(dimension, rng=rng)
        high = random_bipolar(dimension, rng=rng)
        flip_order = rng.permutation(dimension)
        self._vectors = np.empty((levels, dimension), dtype=HV_DTYPE)
        for level in range(levels):
            fraction = level / (levels - 1)
            flip_count = int(round(fraction * dimension))
            vector = low.copy()
            flip_positions = flip_order[:flip_count]
            vector[flip_positions] = high[flip_positions]
            self._vectors[level] = vector

    def __len__(self) -> int:
        return self.levels

    def get(self, level: int) -> np.ndarray:
        """Hypervector for quantization ``level`` (0-based)."""
        if not 0 <= level < self.levels:
            raise IndexError(f"level {level} out of range [0, {self.levels})")
        return self._vectors[level]

    __getitem__ = get

    def get_value(self, value: float, low: float, high: float) -> np.ndarray:
        """Quantize ``value`` from ``[low, high]`` into a level and return its HV."""
        if high <= low:
            raise ValueError(f"invalid range [{low}, {high}]")
        clipped = min(max(value, low), high)
        fraction = (clipped - low) / (high - low)
        level = int(round(fraction * (self.levels - 1)))
        return self.get(level)

    def all_vectors(self) -> np.ndarray:
        """All level hypervectors as a ``(levels, dimension)`` array."""
        return self._vectors.copy()


class CircularItemMemory:
    """Level-style memory whose similarity structure wraps around.

    Levels are placed on a circle and encoded by flipping a sliding window of
    half the components: the cosine similarity between two levels decreases
    linearly with their circular distance, reaching its minimum (maximal
    dissimilarity) for diametrically opposite levels and rising back to 1 as
    the distance wraps around.  Suited for periodic quantities such as angles
    or time of day.
    """

    def __init__(
        self,
        levels: int,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be at least 2, got {levels}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.levels = int(levels)
        self.dimension = int(dimension)
        rng = np.random.default_rng(seed)
        base = random_bipolar(dimension, rng=rng)
        flip_order = rng.permutation(dimension)
        half = dimension // 2
        self._vectors = np.empty((levels, dimension), dtype=HV_DTYPE)
        for level in range(levels):
            fraction = level / levels
            start = int(round(fraction * dimension))
            vector = base.copy()
            window = np.arange(start, start + half) % dimension
            positions = flip_order[window]
            vector[positions] = -vector[positions]
            self._vectors[level] = vector

    def __len__(self) -> int:
        return self.levels

    def get(self, level: int) -> np.ndarray:
        """Hypervector for ``level``; indices wrap modulo the number of levels."""
        return self._vectors[level % self.levels]

    __getitem__ = get

    def all_vectors(self) -> np.ndarray:
        """All level hypervectors as a ``(levels, dimension)`` array."""
        return self._vectors.copy()
