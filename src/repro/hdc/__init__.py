"""Hyperdimensional computing (HDC) substrate.

This subpackage implements the HDC machinery that GraphHD builds on:

* :mod:`repro.hdc.hypervector` — creation of random bipolar/binary hypervectors.
* :mod:`repro.hdc.operations` — the three fundamental HDC operations
  (bundling/addition, binding/multiplication, permutation) and similarity metrics.
* :mod:`repro.hdc.item_memory` — basis-hypervector stores (random, level, circular).
* :mod:`repro.hdc.encoders` — generic encoders (record-based, n-gram, sequence).
* :mod:`repro.hdc.training_state` — the mergeable, serializable training-state
  value object (centroid training is a monoid; shard, merge, resume).
* :mod:`repro.hdc.associative_memory` — class-vector memory used for inference.
* :mod:`repro.hdc.classifier` — a generic centroid HDC classifier with optional
  retraining and online learning.
* :mod:`repro.hdc.backend` — pluggable compute backends: the dense int8
  bipolar backend (the paper's formulation) and a bit-packed ``uint64`` binary
  backend (XOR binding, popcount Hamming similarity, ~8x less memory).
* :mod:`repro.hdc.bitslice` — bit-sliced carry-save accumulators: the
  word-space arithmetic the packed backend's training kernels (bundling,
  segmented accumulation, majority vote) are built on.
"""

from repro.hdc.backend import (
    BACKEND_NAMES,
    POPCOUNT_IMPLEMENTATION,
    DenseBackend,
    HDCBackend,
    PackedBackend,
    get_backend,
    pack_bipolar,
    unpack_to_bipolar,
)
from repro.hdc.bitslice import (
    BitSliceAccumulator,
    bitslice_reduce,
    bitslice_segment_reduce,
    bitslice_to_counts,
    counts_to_bitslice,
    majority_vote_words,
    rotate_components,
)
from repro.hdc.hypervector import (
    DEFAULT_DIMENSION,
    random_binary,
    random_bipolar,
    random_hypervectors,
    to_binary,
    to_bipolar,
)
from repro.hdc.operations import (
    bind,
    bundle,
    cosine_similarity,
    hamming_similarity,
    dot_similarity,
    normalize_hard,
    permute,
    similarity,
)
from repro.hdc.item_memory import CircularItemMemory, ItemMemory, LevelItemMemory
from repro.hdc.encoders import NGramEncoder, RecordEncoder, SequenceEncoder
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.classifier import CentroidClassifier
from repro.hdc.training_state import MergeError, TrainingState, merge_states

__all__ = [
    "BACKEND_NAMES",
    "HDCBackend",
    "DenseBackend",
    "PackedBackend",
    "get_backend",
    "pack_bipolar",
    "unpack_to_bipolar",
    "POPCOUNT_IMPLEMENTATION",
    "BitSliceAccumulator",
    "bitslice_reduce",
    "bitslice_segment_reduce",
    "bitslice_to_counts",
    "counts_to_bitslice",
    "majority_vote_words",
    "rotate_components",
    "DEFAULT_DIMENSION",
    "random_bipolar",
    "random_binary",
    "random_hypervectors",
    "to_binary",
    "to_bipolar",
    "bind",
    "bundle",
    "permute",
    "normalize_hard",
    "cosine_similarity",
    "hamming_similarity",
    "dot_similarity",
    "similarity",
    "ItemMemory",
    "LevelItemMemory",
    "CircularItemMemory",
    "RecordEncoder",
    "NGramEncoder",
    "SequenceEncoder",
    "AssociativeMemory",
    "CentroidClassifier",
    "TrainingState",
    "MergeError",
    "merge_states",
]
