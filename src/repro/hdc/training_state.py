"""Mergeable training state: the monoid underneath HDC centroid training.

The paper's training step is pure superposition — a class vector is the sum
of the encoded training graphs of that class — so centroid accumulation is
associative and commutative and *training is a monoid*: any dataset can be
sharded, each shard trained independently (in another process, on another
machine, or on another day), and the partial results merged into exactly the
model that single-shot training would have produced.

:class:`TrainingState` is that monoid element made first-class: a value
object holding the per-class ``int64`` component-space accumulators, the
per-class sample counts, and the identity needed to decide whether two
states may be merged (dimension, compute backend, and an optional ``context``
dict stamped by the encoder-owning model).  It offers:

* :meth:`merge` — the monoid operation.  Associative, and order-insensitive
  up to the first-seen class ordering rule (accumulators and counts are
  identical for every merge order; the class *listing order* follows the
  left operand first, then unseen classes of the right operand in their
  first-seen order).  Raises :class:`MergeError` on dimension/backend/context
  mismatch.
* :meth:`save` / :meth:`load` — a versioned ``.npz`` round trip, so partial
  states can travel between processes, machines and sessions.
* :meth:`finalize` — seal the state into an
  :class:`~repro.hdc.associative_memory.AssociativeMemory` for inference.

Merge-compatibility contract
----------------------------
Two states are mergeable iff they have the same ``dimension``, the same
backend (by registry name), and compatible ``context``: contexts are
compared by equality, with ``None`` acting as a wildcard that adopts the
other operand's context.  The context of states produced by
``GraphHDClassifier.fit_state`` records the encoder class and full encoder
configuration, so states are only mergeable when their encodings live in the
same vector space (same basis seed, centrality, dimension, backend, ...).
Merging is exact only for *seeded* encoders — two unseeded models share a
``seed: None`` context but draw different bases, which no runtime check can
detect; shard drivers should use seeded configurations.
"""

from __future__ import annotations

import json
from typing import Hashable, Sequence

import numpy as np

from repro.hdc.backend import HDCBackend, get_backend
from repro.hdc.hypervector import ACCUMULATOR_DTYPE, ensure_matrix


class MergeError(ValueError):
    """Two training states (or a state and a model) cannot be combined.

    Raised when dimensions, compute backends or encoder contexts differ —
    merging across those boundaries would silently mix incompatible vector
    spaces.
    """


def object_vector(items: Sequence) -> np.ndarray:
    """A 1-D object array of ``items``.

    ``np.array(items, dtype=object)`` would broadcast equal-length sequence
    items (e.g. tuple labels) into a 2-D array, corrupting them on reload;
    pre-allocating the 1-D shape keeps every item intact.
    """
    vector = np.empty(len(items), dtype=object)
    vector[:] = items
    return vector


def label_class_indices(
    labels: Sequence[Hashable],
) -> tuple[list[Hashable], np.ndarray]:
    """Map labels to (first-seen class list, per-sample int64 class indices).

    Comparing integer class indices sidesteps the ``ndarray == tuple``
    broadcasting hazard of object-array comparisons, so sequence labels
    (e.g. tuples) group correctly; shared by every batch trainer that
    partitions encodings per class.
    """
    labels = list(labels)
    class_labels = list(dict.fromkeys(labels))
    index_of = {label: index for index, label in enumerate(class_labels)}
    class_ids = np.fromiter(
        (index_of[label] for label in labels), dtype=np.int64, count=len(labels)
    )
    return class_labels, class_ids


class TrainingState:
    """Per-class accumulators + counts + merge-compatibility identity.

    Parameters
    ----------
    dimension:
        Component-space dimensionality of the accumulators.
    backend:
        Compute backend the *encodings* fed to this state live in; the
        accumulators themselves are always backend-independent ``int64``
        component-space arrays, but the backend identity participates in the
        merge-compatibility check (a packed-trained and a dense-trained state
        describe the same space only when produced from the same seed, which
        the context check covers; the backend check keeps the native query
        format unambiguous when finalizing).
    context:
        Optional JSON-serializable dict identifying the encoder that produced
        the accumulated encodings (see the module docstring's
        merge-compatibility contract).  ``None`` acts as a wildcard.
    """

    #: On-disk format version written by :meth:`save`.
    FORMAT_VERSION = 1

    #: Archive marker distinguishing state files from model files.
    ARCHIVE_KIND = "training_state"

    def __init__(
        self,
        dimension: int,
        *,
        backend: str | HDCBackend | None = None,
        context: dict | None = None,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.backend = get_backend(backend)
        self.context = context
        self._accumulators: dict[Hashable, np.ndarray] = {}
        self._counts: dict[Hashable, int] = {}
        self._mutation_count = 0

    # ------------------------------------------------------------------ state
    @property
    def mutation_count(self) -> int:
        """Monotone counter bumped by every accumulator mutation.

        Lets derived-value caches (e.g. the associative memory's normalized
        reference matrix on the serving hot path) detect staleness without
        comparing array contents: a cache keyed on ``(state, mutation_count)``
        is valid exactly while neither changes.
        """
        return self._mutation_count
    @property
    def classes(self) -> list[Hashable]:
        """Class labels currently accumulated, in first-seen order."""
        return list(self._accumulators.keys())

    def __len__(self) -> int:
        return len(self._accumulators)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._accumulators

    def count(self, label: Hashable) -> int:
        """Number of samples accumulated into ``label`` (net of removals)."""
        return self._counts.get(label, 0)

    @property
    def num_samples(self) -> int:
        """Total samples accumulated across every class (net of removals)."""
        return sum(self._counts.values())

    def accumulator(self, label: Hashable) -> np.ndarray:
        """A copy of the raw ``int64`` accumulator of ``label``."""
        if label not in self._accumulators:
            raise KeyError(f"unknown class label: {label!r}")
        return self._accumulators[label].copy()

    def copy(self) -> "TrainingState":
        """An independent deep copy of this state."""
        duplicate = TrainingState(
            self.dimension,
            backend=self.backend,
            context=None if self.context is None else dict(self.context),
        )
        duplicate._accumulators = {
            label: accumulator.copy()
            for label, accumulator in self._accumulators.items()
        }
        duplicate._counts = dict(self._counts)
        return duplicate

    def __eq__(self, other: object) -> bool:
        """Strict value equality: identity, class order, accumulators, counts."""
        if not isinstance(other, TrainingState):
            return NotImplemented
        if (
            self.dimension != other.dimension
            or self.backend.name != other.backend.name
            or self.context != other.context
            or self.classes != other.classes
            or self._counts != other._counts
        ):
            return False
        return all(
            np.array_equal(self._accumulators[label], other._accumulators[label])
            for label in self._accumulators
        )

    __hash__ = None  # mutable value object

    def __repr__(self) -> str:
        return (
            f"TrainingState(dimension={self.dimension}, "
            f"backend={self.backend.name!r}, classes={len(self)}, "
            f"samples={self.num_samples})"
        )

    # ------------------------------------------------------------ accumulation
    def add_accumulator(
        self, label: Hashable, accumulator: np.ndarray, count: int
    ) -> None:
        """Add a pre-computed component-space sum of ``count`` encodings.

        The accumulator is validated against the backend: it must be a
        ``(dimension,)`` component-space array of a dtype that casts safely
        to ``int64`` — native packed words (``uint64``) and float arrays are
        rejected with a clear ``ValueError`` instead of being silently
        wrapped or truncated into the class vector.
        """
        accumulator = self.backend.validate_accumulator(accumulator, self.dimension)
        existing = self._accumulators.get(label)
        if existing is None:
            self._accumulators[label] = accumulator.copy()
        else:
            existing += accumulator
        self._counts[label] = self._counts.get(label, 0) + int(count)
        self._mutation_count += 1

    def add_bitslice(self, label: Hashable, accumulator) -> None:
        """Commit a word-space :class:`~repro.hdc.bitslice.BitSliceAccumulator`.

        The boundary where the carry-save training path rejoins the canonical
        exchange format: the bit-sliced planes are expanded once to the signed
        ``int64`` component-space sum (``total - 2 * counts``), so merge /
        save / load semantics are untouched.  Streaming packed trainers can
        keep bundling in uint64 word space and pay the component-space
        conversion a single time per class.
        """
        if accumulator.dimension != self.dimension:
            raise ValueError(
                f"bit-sliced accumulator dimension {accumulator.dimension} "
                f"does not match state dimension {self.dimension}"
            )
        self.add_accumulator(label, accumulator.to_accumulator(), accumulator.total)

    def add_encoding(
        self, label: Hashable, encoding: np.ndarray, weight: float = 1.0
    ) -> None:
        """Accumulate one *native* encoding into the class of ``label``.

        ``weight`` scales the contribution; negative weights subtract, which
        is how perceptron-style HDC retraining removes a sample from the
        wrong class (the count decrements by one per negative-weight add).
        """
        encoding = np.asarray(encoding)
        width = self.backend.storage_width(self.dimension)
        if encoding.shape != (width,):
            raise ValueError(
                f"expected a hypervector of shape ({width},), got {encoding.shape}"
            )
        if self.backend.is_component_space:
            # Keep the original dtype: un-normalized integer encodings can
            # exceed the int8 range that backend.unpack would clamp to.
            components = encoding
        else:
            components = self.backend.unpack(encoding, self.dimension)
        contribution = (components.astype(np.float64) * weight).astype(
            ACCUMULATOR_DTYPE
        )
        existing = self._accumulators.get(label)
        if existing is None:
            self._accumulators[label] = contribution.copy()
        else:
            existing += contribution
        self._counts[label] = self._counts.get(label, 0) + (1 if weight > 0 else -1)
        self._mutation_count += 1

    def add_encodings(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> "TrainingState":
        """Accumulate a batch of native encodings, one label per row.

        This is *the* batch-training kernel: every class is accumulated with
        one segmented backend call, and because integer sums commute the
        resulting class vectors are exactly those of per-class (or
        per-sample) accumulation.  Returns ``self`` for chaining.
        """
        matrix = ensure_matrix(encodings)
        labels = list(labels)
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"number of encodings ({matrix.shape[0]}) does not match "
                f"number of labels ({len(labels)})"
            )
        width = self.backend.storage_width(self.dimension)
        if matrix.shape[1] != width:
            raise ValueError(
                f"expected encodings of dimension {width}, got {matrix.shape[1]}"
            )
        class_labels, class_ids = label_class_indices(labels)
        counts = np.bincount(class_ids, minlength=len(class_labels))
        accumulators = self.backend.segment_accumulate(
            matrix, class_ids, len(class_labels), self.dimension
        )
        for index, label in enumerate(class_labels):
            self.add_accumulator(label, accumulators[index], int(counts[index]))
        return self

    # ---------------------------------------------------------------- algebra
    def check_mergeable(self, other: "TrainingState") -> None:
        """Raise :class:`MergeError` unless ``other`` can merge into this state."""
        if not isinstance(other, TrainingState):
            raise MergeError(
                f"cannot merge a TrainingState with {type(other).__name__}"
            )
        if self.dimension != other.dimension:
            raise MergeError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        if self.backend.name != other.backend.name:
            raise MergeError(
                f"backend mismatch: {self.backend.name!r} vs {other.backend.name!r}"
            )
        if (
            self.context is not None
            and other.context is not None
            and self.context != other.context
        ):
            raise MergeError(
                "encoder context mismatch: the states were produced by "
                f"differently configured encoders ({self.context!r} vs "
                f"{other.context!r})"
            )

    def merge_update(self, other: "TrainingState") -> "TrainingState":
        """In-place merge: add ``other``'s accumulators and counts into this state.

        New classes are appended in ``other``'s first-seen order; a ``None``
        context adopts the other operand's context.  Returns ``self``.
        """
        self.check_mergeable(other)
        for label, accumulator in other._accumulators.items():
            existing = self._accumulators.get(label)
            if existing is None:
                self._accumulators[label] = accumulator.copy()
                self._counts[label] = other._counts.get(label, 0)
            else:
                self.backend.merge_accumulators(existing, accumulator, self.dimension)
                self._counts[label] = self._counts.get(label, 0) + other._counts.get(
                    label, 0
                )
        if self.context is None and other.context is not None:
            self.context = dict(other.context)
        self._mutation_count += 1
        return self

    def merge(self, other: "TrainingState") -> "TrainingState":
        """The monoid operation: a new state holding both operands' samples.

        Associative; accumulators and counts are identical for every merge
        order, and the class listing order is first-seen left-to-right.
        Raises :class:`MergeError` on dimension/backend/context mismatch.
        """
        return self.copy().merge_update(other)

    # --------------------------------------------------------------- sealing
    def finalize(
        self,
        *,
        metric: str = "cosine",
        normalize_queries: bool = False,
    ) -> "AssociativeMemory":  # noqa: F821 - runtime import below
        """Seal this state into an associative memory for inference.

        The memory receives an independent copy of the accumulators, so the
        state can keep accumulating (continual ingestion) without mutating
        already-finalized models.
        """
        # Imported here: associative_memory builds *on* TrainingState, so a
        # module-level import would be circular.
        from repro.hdc.associative_memory import AssociativeMemory

        return AssociativeMemory.from_state(
            self, metric=metric, normalize_queries=normalize_queries
        )

    # ------------------------------------------------------------ persistence
    def _payload_arrays(self) -> dict[str, np.ndarray | str]:
        """The archive entries shared by :meth:`save` and the model format."""
        labels = self.classes
        accumulators = (
            np.vstack([self._accumulators[label] for label in labels])
            if labels
            else np.empty((0, self.dimension), dtype=ACCUMULATOR_DTYPE)
        )
        counts = np.array([self._counts[label] for label in labels], dtype=np.int64)
        return {
            "dimension": np.int64(self.dimension),
            "backend": self.backend.name,
            "context": json.dumps(self.context),
            "class_labels": object_vector(labels),
            "class_accumulators": accumulators,
            "class_counts": counts,
        }

    @classmethod
    def _from_payload(cls, data, prefix: str = "") -> "TrainingState":
        """Rebuild a state from archive entries written by ``_payload_arrays``."""
        context = json.loads(str(data[f"{prefix}context"]))
        state = cls(
            int(data[f"{prefix}dimension"]),
            backend=str(data[f"{prefix}backend"]),
            context=context,
        )
        counts = data[f"{prefix}class_counts"]
        accumulators = data[f"{prefix}class_accumulators"]
        for index, label in enumerate(data[f"{prefix}class_labels"]):
            state._accumulators[label] = np.array(
                accumulators[index], dtype=ACCUMULATOR_DTYPE, copy=True
            )
            state._counts[label] = int(counts[index])
        return state

    def save(self, path) -> None:
        """Serialize this state to a versioned ``.npz`` archive.

        Class labels are stored as a pickled object array, so any hashable
        label type (ints, strings, tuples) survives the round trip; the
        context travels as JSON.
        """
        np.savez_compressed(
            path,
            format_version=np.int64(self.FORMAT_VERSION),
            kind=self.ARCHIVE_KIND,
            **self._payload_arrays(),
        )

    @classmethod
    def load(cls, path) -> "TrainingState":
        """Restore a state previously written by :meth:`save`.

        Raises an actionable ``ValueError`` (expected vs. found) on archives
        written by other components or by newer format versions, instead of
        surfacing a bare ``KeyError``.
        """
        with np.load(path, allow_pickle=True) as data:
            if "format_version" not in data.files:
                raise ValueError(
                    f"{path} is not a TrainingState archive: it has no "
                    "format_version entry (expected a file written by "
                    "TrainingState.save)"
                )
            kind = str(data["kind"]) if "kind" in data.files else "unknown"
            if kind != cls.ARCHIVE_KIND:
                raise ValueError(
                    f"{path} is not a TrainingState archive: found kind "
                    f"{kind!r}, expected {cls.ARCHIVE_KIND!r} (model archives "
                    "load via GraphHDClassifier.load)"
                )
            version = int(data["format_version"])
            if version != cls.FORMAT_VERSION:
                raise ValueError(
                    f"unsupported TrainingState format version: found "
                    f"{version}, expected {cls.FORMAT_VERSION}; re-save the "
                    "state with a matching repro version"
                )
            return cls._from_payload(data)


def merge_states(states: Sequence[TrainingState]) -> TrainingState:
    """Fold a sequence of states with :meth:`TrainingState.merge`.

    The fold is left-to-right, so the merged class listing order is
    first-seen across the sequence; accumulators and counts are identical
    for every ordering.  Raises ``ValueError`` on an empty sequence (the
    monoid has no distinguished identity without a dimension).
    """
    states = list(states)
    if not states:
        raise ValueError("cannot merge an empty sequence of training states")
    merged = states[0].copy()
    for state in states[1:]:
        merged.merge_update(state)
    return merged
