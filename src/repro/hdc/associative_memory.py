"""Associative memory of class hypervectors.

A trained HDC model is a set of class vectors ``M = {C_1, ..., C_k}``
(Section III-B of the paper).  The associative memory stores these vectors,
answers nearest-class queries (inference, Section III-C), and supports the
incremental updates needed for retraining and online learning.

All accumulation state lives in a :class:`~repro.hdc.training_state.TrainingState`
— the first-class, serializable, *mergeable* record of a training run.  The
memory is therefore a thin inference wrapper: ``add``/``add_many``/
``add_accumulator`` route through the state, :meth:`export_state` hands a
copy of it out (for sharded map-reduce training, checkpointing, federated
aggregation), and :meth:`from_state`/:meth:`merge_state` rebuild or extend a
memory from states produced anywhere else.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.hdc.backend import HDCBackend, get_backend
from repro.hdc.hypervector import ensure_matrix
from repro.hdc.operations import normalize_hard
from repro.hdc.training_state import TrainingState


class AssociativeMemory:
    """Stores one accumulator vector per class and answers similarity queries.

    The memory keeps *integer accumulators* internally (the un-normalized sum
    of all hypervectors added to a class).  Queries can be answered either
    against the raw accumulators (the paper's formulation, where the class
    vector is the bundle of its training encodings) or against their
    majority-vote normalization.

    The accumulators live in backend-independent component space regardless
    of the compute ``backend``; the backend only controls the native format
    of the hypervectors being added/queried (dense int8 bipolar vs. packed
    ``uint64`` words) and the similarity kernel.  The packed backend always
    queries against normalized (bit-packed) class vectors, because popcount
    Hamming similarity is only defined between binary hypervectors.
    """

    def __init__(
        self,
        dimension: int,
        *,
        metric: str = "cosine",
        normalize_queries: bool = False,
        backend: str | HDCBackend | None = None,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.metric = metric
        self.backend = get_backend(backend)
        self.normalize_queries = (
            bool(normalize_queries) or not self.backend.is_component_space
        )
        self._state = TrainingState(self.dimension, backend=self.backend)
        self._storage_width = self.backend.storage_width(self.dimension)
        # (state, state.mutation_count, matrix): the native reference matrix
        # memoized for the serving hot path; see _reference_matrix_native.
        self._reference_cache: tuple[TrainingState, int, np.ndarray] | None = None

    # ------------------------------------------------------------------ state
    @property
    def _accumulators(self) -> dict[Hashable, np.ndarray]:
        """The live per-class accumulator dict (owned by the training state)."""
        return self._state._accumulators

    @property
    def _counts(self) -> dict[Hashable, int]:
        """The live per-class sample counts (owned by the training state)."""
        return self._state._counts

    @property
    def classes(self) -> list[Hashable]:
        """Class labels currently stored, in insertion order."""
        return self._state.classes

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._state

    def count(self, label: Hashable) -> int:
        """Number of hypervectors accumulated into ``label`` (net of removals)."""
        return self._state.count(label)

    def export_state(self) -> TrainingState:
        """A deep copy of this memory's training state.

        The copy is independent: accumulating into it (or merging it
        elsewhere) never mutates this memory.  The exported state carries no
        encoder context — stamp ``state.context`` when the caller knows the
        encoding identity (``GraphHDClassifier.export_state`` does).
        """
        return self._state.copy()

    @classmethod
    def from_state(
        cls,
        state: TrainingState,
        *,
        metric: str = "cosine",
        normalize_queries: bool = False,
    ) -> "AssociativeMemory":
        """Build a memory holding a copy of ``state``'s class vectors."""
        memory = cls(
            state.dimension,
            metric=metric,
            normalize_queries=normalize_queries,
            backend=state.backend,
        )
        memory._state = state.copy()
        return memory

    def merge_state(self, state: TrainingState) -> None:
        """Merge a training state's accumulators into this memory.

        Raises :class:`~repro.hdc.training_state.MergeError` on dimension or
        backend mismatch; the memory's own state carries no encoder context,
        so context compatibility is the caller's contract (checked by
        ``GraphHDClassifier.fit_from_state``).
        """
        self._state.merge_update(state)

    # ---------------------------------------------------------------- updates
    def add(self, label: Hashable, hypervector: np.ndarray, weight: float = 1.0) -> None:
        """Accumulate ``hypervector`` into the class vector for ``label``.

        ``weight`` scales the contribution; negative weights subtract, which is
        how perceptron-style HDC retraining removes a sample from the wrong
        class.
        """
        self._state.add_encoding(label, hypervector, weight=weight)

    def add_many(
        self,
        label: Hashable,
        hypervectors: Sequence[np.ndarray] | np.ndarray,
    ) -> None:
        """Accumulate a batch of hypervectors into one class."""
        matrix = ensure_matrix(hypervectors)
        if matrix.shape[1] != self._storage_width:
            raise ValueError(
                f"expected hypervectors of dimension {self._storage_width}, "
                f"got {matrix.shape[1]}"
            )
        summed = self.backend.accumulate(matrix, self.dimension)
        self.add_accumulator(label, summed, matrix.shape[0])

    def add_accumulator(
        self, label: Hashable, accumulator: np.ndarray, count: int
    ) -> None:
        """Add a pre-computed component-space sum of ``count`` hypervectors.

        Lets batch trainers accumulate all classes with one segmented kernel
        call and hand the per-class sums over, instead of re-accumulating
        per class through :meth:`add_many`.  The accumulator is validated
        against the backend (shape and safe ``int64`` castability), so a
        mismatched packed/dense array raises a clear ``ValueError`` instead
        of being silently mis-added.
        """
        self._state.add_accumulator(label, accumulator, count)

    # ---------------------------------------------------------------- queries
    def class_vector(self, label: Hashable, *, normalized: bool | None = None) -> np.ndarray:
        """Return the stored class vector for ``label``.

        ``normalized=True`` returns the bipolar majority vote of the
        accumulator; ``False`` returns the raw integer accumulator; ``None``
        follows the memory-wide ``normalize_queries`` setting.
        """
        if label not in self._state:
            raise KeyError(f"unknown class label: {label!r}")
        accumulator = self._accumulators[label]
        use_normalized = self.normalize_queries if normalized is None else normalized
        if use_normalized:
            return normalize_hard(accumulator, rng=0)
        return accumulator.copy()

    def _reference_matrix(self) -> np.ndarray:
        vectors = []
        for label in self._accumulators:
            vectors.append(self.class_vector(label))
        return np.vstack(vectors)

    def _reference_matrix_native(self) -> np.ndarray:
        """Class vectors in the backend's native format for similarity queries.

        Component-space backends query the class vectors directly (raw
        accumulators or their normalization, per ``normalize_queries``);
        packed storage re-packs the normalized class vectors so the popcount
        similarity kernel can compare them against native queries.

        The matrix is memoized against the training state's
        :attr:`~repro.hdc.training_state.TrainingState.mutation_count` and
        returned *read-only*: a long-lived inference service answers every
        query from one shared matrix instead of re-normalizing the class
        vectors per request, and concurrent readers cannot corrupt it.  Any
        accumulator mutation (``add``/``merge_state``/retraining) invalidates
        the cache on the next query.
        """
        state = self._state
        cached = self._reference_cache
        if (
            cached is not None
            and cached[0] is state
            and cached[1] == state.mutation_count
        ):
            return cached[2]
        if self.backend.is_component_space:
            matrix = self._reference_matrix()
        else:
            # Packed storage: majority-vote each accumulator directly in word
            # space.  One rng stream per class keeps the tie-breaking draws
            # bit-identical to class_vector's per-class
            # normalize_hard(acc, rng=0).
            matrix = np.vstack(
                [
                    self.backend.normalize(accumulator, rng=0)
                    for accumulator in self._accumulators.values()
                ]
            )
        matrix.flags.writeable = False
        self._reference_cache = (state, state.mutation_count, matrix)
        return matrix

    def similarities(
        self, queries: Sequence[np.ndarray] | np.ndarray
    ) -> tuple[np.ndarray, list[Hashable]]:
        """Similarity of each query against every stored class.

        Returns the ``(num_queries, num_classes)`` similarity matrix and the
        class labels in column order.
        """
        if not self._accumulators:
            raise RuntimeError("associative memory is empty; nothing to query")
        references = self._reference_matrix_native()
        matrix = self.backend.similarity_matrix(
            queries, references, self.dimension, metric=self.metric
        )
        return matrix, self.classes

    def query(self, hypervector: np.ndarray) -> Hashable:
        """Return the label of the most similar class vector."""
        scores, labels = self.similarities(np.asarray(hypervector)[None, :])
        return labels[int(np.argmax(scores[0]))]

    def query_many(self, hypervectors: Sequence[np.ndarray] | np.ndarray) -> list[Hashable]:
        """Return the most similar class label for each query hypervector."""
        scores, labels = self.similarities(hypervectors)
        winners = np.argmax(scores, axis=1)
        return [labels[int(index)] for index in winners]
