"""Associative memory of class hypervectors.

A trained HDC model is a set of class vectors ``M = {C_1, ..., C_k}``
(Section III-B of the paper).  The associative memory stores these vectors,
answers nearest-class queries (inference, Section III-C), and supports the
incremental updates needed for retraining and online learning.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.hdc.hypervector import ACCUMULATOR_DTYPE, ensure_matrix
from repro.hdc.operations import normalize_hard, similarity_matrix


class AssociativeMemory:
    """Stores one accumulator vector per class and answers similarity queries.

    The memory keeps *integer accumulators* internally (the un-normalized sum
    of all hypervectors added to a class).  Queries can be answered either
    against the raw accumulators (the paper's formulation, where the class
    vector is the bundle of its training encodings) or against their
    majority-vote normalization.
    """

    def __init__(
        self,
        dimension: int,
        *,
        metric: str = "cosine",
        normalize_queries: bool = False,
    ) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.metric = metric
        self.normalize_queries = bool(normalize_queries)
        self._accumulators: dict[Hashable, np.ndarray] = {}
        self._counts: dict[Hashable, int] = {}

    # ------------------------------------------------------------------ state
    @property
    def classes(self) -> list[Hashable]:
        """Class labels currently stored, in insertion order."""
        return list(self._accumulators.keys())

    def __len__(self) -> int:
        return len(self._accumulators)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._accumulators

    def count(self, label: Hashable) -> int:
        """Number of hypervectors accumulated into ``label`` (net of removals)."""
        return self._counts.get(label, 0)

    # ---------------------------------------------------------------- updates
    def add(self, label: Hashable, hypervector: np.ndarray, weight: float = 1.0) -> None:
        """Accumulate ``hypervector`` into the class vector for ``label``.

        ``weight`` scales the contribution; negative weights subtract, which is
        how perceptron-style HDC retraining removes a sample from the wrong
        class.
        """
        hypervector = np.asarray(hypervector)
        if hypervector.shape != (self.dimension,):
            raise ValueError(
                f"expected a hypervector of shape ({self.dimension},), "
                f"got {hypervector.shape}"
            )
        accumulator = self._accumulators.get(label)
        contribution = (hypervector.astype(np.float64) * weight).astype(
            ACCUMULATOR_DTYPE
        )
        if accumulator is None:
            self._accumulators[label] = contribution.copy()
        else:
            accumulator += contribution
        self._counts[label] = self._counts.get(label, 0) + (1 if weight > 0 else -1)

    def add_many(
        self,
        label: Hashable,
        hypervectors: Sequence[np.ndarray] | np.ndarray,
    ) -> None:
        """Accumulate a batch of hypervectors into one class."""
        matrix = ensure_matrix(hypervectors)
        if matrix.shape[1] != self.dimension:
            raise ValueError(
                f"expected hypervectors of dimension {self.dimension}, "
                f"got {matrix.shape[1]}"
            )
        summed = matrix.astype(ACCUMULATOR_DTYPE).sum(axis=0)
        accumulator = self._accumulators.get(label)
        if accumulator is None:
            self._accumulators[label] = summed
        else:
            accumulator += summed
        self._counts[label] = self._counts.get(label, 0) + matrix.shape[0]

    # ---------------------------------------------------------------- queries
    def class_vector(self, label: Hashable, *, normalized: bool | None = None) -> np.ndarray:
        """Return the stored class vector for ``label``.

        ``normalized=True`` returns the bipolar majority vote of the
        accumulator; ``False`` returns the raw integer accumulator; ``None``
        follows the memory-wide ``normalize_queries`` setting.
        """
        if label not in self._accumulators:
            raise KeyError(f"unknown class label: {label!r}")
        accumulator = self._accumulators[label]
        use_normalized = self.normalize_queries if normalized is None else normalized
        if use_normalized:
            return normalize_hard(accumulator, rng=0)
        return accumulator.copy()

    def _reference_matrix(self) -> np.ndarray:
        vectors = []
        for label in self._accumulators:
            vectors.append(self.class_vector(label))
        return np.vstack(vectors)

    def similarities(
        self, queries: Sequence[np.ndarray] | np.ndarray
    ) -> tuple[np.ndarray, list[Hashable]]:
        """Similarity of each query against every stored class.

        Returns the ``(num_queries, num_classes)`` similarity matrix and the
        class labels in column order.
        """
        if not self._accumulators:
            raise RuntimeError("associative memory is empty; nothing to query")
        references = self._reference_matrix()
        matrix = similarity_matrix(queries, references, metric=self.metric)
        return matrix, self.classes

    def query(self, hypervector: np.ndarray) -> Hashable:
        """Return the label of the most similar class vector."""
        scores, labels = self.similarities(np.asarray(hypervector)[None, :])
        return labels[int(np.argmax(scores[0]))]

    def query_many(self, hypervectors: Sequence[np.ndarray] | np.ndarray) -> list[Hashable]:
        """Return the most similar class label for each query hypervector."""
        scores, labels = self.similarities(hypervectors)
        winners = np.argmax(scores, axis=1)
        return [labels[int(index)] for index in winners]
