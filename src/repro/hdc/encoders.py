"""Generic HDC encoders.

These are the application-agnostic encoders described in Section III of the
paper: record-based encoding for feature vectors (key-value binding followed
by bundling), n-gram encoding for sequences (permute-and-bind), and a simple
position-bound sequence encoder.  GraphHD's own graph encoder lives in
:mod:`repro.core.encoding`; the encoders here serve as substrate, are used by
the label-aware GraphHD extension, and make the HDC subpackage a complete
standalone library.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.hdc.hypervector import DEFAULT_DIMENSION
from repro.hdc.item_memory import ItemMemory, LevelItemMemory
from repro.hdc.operations import bind, bundle, normalize_hard, permute


class RecordEncoder:
    """Record-based encoding of feature dictionaries.

    Each feature identifier (key) gets a random *key hypervector* and each
    feature value is mapped through either a categorical item memory or a
    level memory (for numeric values).  A record is encoded as the normalized
    bundle of the key-value bindings:

    ``H = [ K_1 * V_1 + K_2 * V_2 + ... + K_N * V_N ]``
    """

    def __init__(
        self,
        dimension: int = DEFAULT_DIMENSION,
        *,
        numeric_levels: int = 64,
        numeric_range: tuple[float, float] = (0.0, 1.0),
        seed: int | None = None,
    ) -> None:
        if numeric_levels < 2:
            raise ValueError(f"numeric_levels must be >= 2, got {numeric_levels}")
        self.dimension = int(dimension)
        self.numeric_range = (float(numeric_range[0]), float(numeric_range[1]))
        if self.numeric_range[1] <= self.numeric_range[0]:
            raise ValueError(f"invalid numeric_range {numeric_range}")
        root_rng = np.random.default_rng(seed)
        key_seed, value_seed, level_seed, tie_seed = root_rng.integers(
            0, 2**32 - 1, size=4
        )
        self._keys = ItemMemory(dimension, seed=int(key_seed))
        self._categorical_values = ItemMemory(dimension, seed=int(value_seed))
        self._levels = LevelItemMemory(numeric_levels, dimension, seed=int(level_seed))
        self._tie_rng = np.random.default_rng(int(tie_seed))

    def _value_hypervector(self, value: object) -> np.ndarray:
        if isinstance(value, bool):
            return self._categorical_values.get(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            low, high = self.numeric_range
            return self._levels.get_value(float(value), low, high)
        if isinstance(value, Hashable):
            return self._categorical_values.get(value)
        raise TypeError(f"unsupported feature value type: {type(value)!r}")

    def encode(self, record: Mapping[Hashable, object]) -> np.ndarray:
        """Encode a feature record (mapping of key to value) into a hypervector."""
        if not record:
            raise ValueError("cannot encode an empty record")
        bound = [
            bind(self._keys.get(key), self._value_hypervector(value))
            for key, value in record.items()
        ]
        return bundle(bound, rng=self._tie_rng)


class NGramEncoder:
    """N-gram encoding of symbol sequences via permute-and-bind.

    Each symbol gets a random hypervector; an n-gram ``(s_1, ..., s_n)`` is
    encoded as ``rho^{n-1}(S_1) * ... * rho(S_{n-1}) * S_n`` where ``rho`` is
    the cyclic permutation; the sequence hypervector is the normalized bundle
    of all its n-grams.  This is the classic HDC text/sequence encoding.
    """

    def __init__(
        self,
        n: int = 3,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self.dimension = int(dimension)
        root_rng = np.random.default_rng(seed)
        symbol_seed, tie_seed = root_rng.integers(0, 2**32 - 1, size=2)
        self._symbols = ItemMemory(dimension, seed=int(symbol_seed))
        self._tie_rng = np.random.default_rng(int(tie_seed))

    def encode_ngram(self, ngram: Sequence[Hashable]) -> np.ndarray:
        """Encode a single n-gram of symbols into one hypervector."""
        if len(ngram) != self.n:
            raise ValueError(f"expected an n-gram of length {self.n}, got {len(ngram)}")
        parts = [
            permute(self._symbols.get(symbol), self.n - 1 - position)
            for position, symbol in enumerate(ngram)
        ]
        if len(parts) == 1:
            return parts[0]
        return bind(*parts)

    def encode(self, sequence: Sequence[Hashable]) -> np.ndarray:
        """Encode a full sequence as the bundle of its sliding n-grams."""
        if len(sequence) < self.n:
            raise ValueError(
                f"sequence of length {len(sequence)} is shorter than n={self.n}"
            )
        ngrams = [
            self.encode_ngram(sequence[start : start + self.n])
            for start in range(len(sequence) - self.n + 1)
        ]
        return bundle(ngrams, rng=self._tie_rng)


class SequenceEncoder:
    """Position-bound sequence encoding.

    Each position ``i`` gets a random position hypervector ``P_i`` and each
    symbol a random symbol hypervector ``S``; the sequence is the normalized
    bundle of ``P_i * S_i``.  Unlike :class:`NGramEncoder` this preserves
    absolute positions rather than local order statistics.
    """

    def __init__(
        self,
        dimension: int = DEFAULT_DIMENSION,
        *,
        seed: int | None = None,
    ) -> None:
        self.dimension = int(dimension)
        root_rng = np.random.default_rng(seed)
        symbol_seed, position_seed, tie_seed = root_rng.integers(0, 2**32 - 1, size=3)
        self._symbols = ItemMemory(dimension, seed=int(symbol_seed))
        self._positions = ItemMemory(dimension, seed=int(position_seed))
        self._tie_rng = np.random.default_rng(int(tie_seed))

    def encode(self, sequence: Sequence[Hashable]) -> np.ndarray:
        """Encode a sequence of symbols into one hypervector."""
        if not sequence:
            raise ValueError("cannot encode an empty sequence")
        bound = [
            bind(self._positions.get(position), self._symbols.get(symbol))
            for position, symbol in enumerate(sequence)
        ]
        return bundle(bound, rng=self._tie_rng)
