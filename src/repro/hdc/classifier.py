"""Generic centroid-based HDC classifier.

This module implements the standard HDC training loop described in
Section III-B of the paper: encode every training sample, accumulate the
encodings per class into class hypervectors, and classify new samples by
nearest class vector.  It also implements two standard HDC refinements that
the paper lists as future-work extensions of GraphHD:

* **retraining** (perceptron-style): misclassified training samples are added
  to their true class and subtracted from the wrongly predicted class for a
  number of epochs;
* **online learning**: samples can be added one by one after the initial fit.

The classifier is encoding-agnostic: it operates on pre-encoded hypervectors,
so GraphHD (and any other encoder) can reuse it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.backend import HDCBackend, get_backend
from repro.hdc.hypervector import ensure_matrix
from repro.hdc.training_state import TrainingState, label_class_indices

__all__ = [
    "CentroidClassifier",
    "RetrainingReport",
    "label_class_indices",  # re-exported from training_state for callers
    "topk_from_scores",
]


def topk_from_scores(
    scores: np.ndarray, labels: Sequence[Hashable], k: int
) -> list[list[tuple[Hashable, float]]]:
    """Top-``k`` (label, score) pairs per row of a decision-score matrix.

    Rows are ranked by descending score with the same deterministic tie rule
    as :meth:`CentroidClassifier.predict`: equal scores rank in class-column
    order (first-trained class first), so the leading entry of every row is
    exactly the ``predict`` winner.  ``k`` is clamped to the number of
    classes.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    scores = np.asarray(scores, dtype=np.float64)
    k = min(int(k), scores.shape[1])
    # A stable sort of the negated scores keeps ascending column order among
    # ties, matching np.argmax's first-occurrence winner.
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return [
        [(labels[int(column)], float(scores[row, column])) for column in order[row]]
        for row in range(scores.shape[0])
    ]


@dataclass
class RetrainingReport:
    """Summary of a retraining run.

    Attributes
    ----------
    epochs_run:
        Number of retraining epochs actually executed.
    errors_per_epoch:
        Number of misclassified training samples at the start of each epoch.
    converged:
        True if an epoch finished with zero training errors.
    """

    epochs_run: int = 0
    errors_per_epoch: list[int] = field(default_factory=list)
    converged: bool = False


class CentroidClassifier:
    """Nearest-centroid classifier over hypervectors.

    Parameters
    ----------
    dimension:
        Dimensionality of the hypervectors this classifier operates on.
    metric:
        Similarity metric used for inference (``"cosine"``, ``"hamming"`` or
        ``"dot"``).
    normalize_class_vectors:
        If True the class accumulators are majority-vote normalized before
        similarity queries (binary/bipolar model); if False (default) the raw
        integer accumulators are used, matching the paper's formulation.
        The Hamming metric only makes sense between bipolar vectors, so it
        always normalizes regardless of this flag.
    backend:
        Compute backend the encodings are stored in (``"dense"`` int8 bipolar
        or ``"packed"`` uint64 words).  The packed backend always normalizes
        class vectors, because its popcount similarity kernel compares binary
        hypervectors.
    """

    def __init__(
        self,
        dimension: int,
        *,
        metric: str = "cosine",
        normalize_class_vectors: bool = False,
        backend: str | HDCBackend | None = None,
    ) -> None:
        self.dimension = int(dimension)
        self.metric = metric
        self.backend = get_backend(backend)
        # Hamming similarity compares component equality, which is meaningless
        # against un-normalized integer accumulators.
        normalize = bool(normalize_class_vectors) or metric == "hamming"
        self.memory = AssociativeMemory(
            dimension,
            metric=metric,
            normalize_queries=normalize,
            backend=self.backend,
        )
        self._is_fitted = False

    # ------------------------------------------------------------------ train
    def fit_state(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> TrainingState:
        """Accumulate the encodings into a fresh, mergeable training state.

        The map half of map-reduce training: the returned state does not
        touch this classifier's memory — install it (or a merge of several
        shard states) with :meth:`fit_from_state`.  All classes are
        accumulated with one segmented kernel call; integer sums commute, so
        the class vectors are exactly those of per-class accumulation.
        """
        return TrainingState(self.dimension, backend=self.backend).add_encodings(
            encodings, labels
        )

    def fit_from_state(self, state: TrainingState) -> "CentroidClassifier":
        """Merge a training state's class vectors into this classifier.

        The reduce half of map-reduce training; also the single code path
        every ``fit``/``partial_fit`` variant funnels through.  Raises
        :class:`~repro.hdc.training_state.MergeError` on dimension/backend
        mismatch.
        """
        self.memory.merge_state(state)
        self._is_fitted = True
        return self

    def fit(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> "CentroidClassifier":
        """Fit class vectors by bundling the encodings of each class."""
        return self.fit_from_state(self.fit_state(encodings, labels))

    def partial_fit(self, encoding: np.ndarray, label: Hashable) -> None:
        """Online update: add a single encoded sample to its class vector."""
        self.partial_fit_many(np.asarray(encoding)[None, :], [label])

    def partial_fit_many(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> None:
        """Online update with a batch of encoded samples (one label each).

        Batched counterpart of :meth:`partial_fit`; identical to calling it
        per sample (integer accumulation commutes), but pays the segmented
        accumulation kernel once for the whole batch.  On the packed backend
        that kernel is the bit-sliced carry-save reduction of
        :mod:`repro.hdc.bitslice`, so online batches bundle entirely in
        ``uint64`` word space before the one component-space commit.
        """
        self.fit_from_state(self.fit_state(encodings, labels))

    def retrain(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
        *,
        epochs: int = 10,
        learning_rate: float = 1.0,
    ) -> RetrainingReport:
        """Perceptron-style retraining over the (already encoded) training set.

        For each misclassified sample the encoding is added (scaled by
        ``learning_rate``) to the true class and subtracted from the predicted
        class.  Stops early when an epoch produces no errors.
        """
        if not self._is_fitted:
            raise RuntimeError("classifier must be fitted before retraining")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        matrix = ensure_matrix(encodings)
        labels = list(labels)
        if matrix.shape[0] != len(labels):
            raise ValueError("encodings and labels length mismatch")
        report = RetrainingReport()
        for _ in range(epochs):
            predictions = self.predict(matrix)
            errors = [
                index
                for index, (predicted, actual) in enumerate(zip(predictions, labels))
                if predicted != actual
            ]
            report.errors_per_epoch.append(len(errors))
            report.epochs_run += 1
            if not errors:
                report.converged = True
                break
            for index in errors:
                encoding = matrix[index]
                self.memory.add(labels[index], encoding, weight=learning_rate)
                self.memory.add(predictions[index], encoding, weight=-learning_rate)
        return report

    # -------------------------------------------------------------- inference
    @property
    def classes(self) -> list[Hashable]:
        """Class labels known to the classifier."""
        return self.memory.classes

    def decision_scores(
        self, encodings: Sequence[np.ndarray] | np.ndarray
    ) -> tuple[np.ndarray, list[Hashable]]:
        """Similarity of each encoding to every class vector."""
        if not self._is_fitted:
            raise RuntimeError("classifier has not been fitted")
        return self.memory.similarities(encodings)

    def predict(self, encodings: Sequence[np.ndarray] | np.ndarray) -> list[Hashable]:
        """Predict the class of each encoded sample.

        Ties are broken deterministically: the score columns follow class
        insertion order (first label seen during training first) on every
        backend, and among equal maximal scores the lowest column index —
        the earliest-trained class — wins.  Served and offline predictions
        are therefore stable across backends and batch compositions.
        """
        scores, labels = self.decision_scores(encodings)
        winners = np.argmax(scores, axis=1)
        return [labels[int(index)] for index in winners]

    def predict_topk(
        self, encodings: Sequence[np.ndarray] | np.ndarray, k: int = 1
    ) -> list[list[tuple[Hashable, float]]]:
        """Top-``k`` (label, score) pairs for each encoded sample.

        Backed by :meth:`decision_scores`; rows are ranked by descending
        similarity with the same tie rule as :meth:`predict`, so
        ``predict_topk(x, 1)[i][0][0] == predict(x)[i]`` always holds.
        """
        scores, labels = self.decision_scores(encodings)
        return topk_from_scores(scores, labels, k)

    def predict_one(self, encoding: np.ndarray) -> Hashable:
        """Predict the class of a single encoded sample."""
        return self.predict(np.asarray(encoding)[None, :])[0]

    def score(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> float:
        """Classification accuracy on pre-encoded samples.

        Raises ``ValueError`` when the numbers of encodings and labels
        differ — a silent ``zip`` truncation would report an accuracy over
        the wrong sample set.
        """
        labels = list(labels)
        if not labels:
            raise ValueError("cannot score an empty set of samples")
        predictions = self.predict(encodings)
        if len(predictions) != len(labels):
            raise ValueError(
                "encodings and labels must have the same length: got "
                f"{len(predictions)} encodings and {len(labels)} labels"
            )
        correct = sum(
            1 for predicted, actual in zip(predictions, labels) if predicted == actual
        )
        return correct / len(labels)
