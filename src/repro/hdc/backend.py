"""Pluggable HDC compute backends.

Every hypervector operation in this library ultimately flows through one of
two *compute backends*:

* :class:`DenseBackend` — the paper's formulation: bipolar ``{-1, +1}``
  hypervectors stored as one ``int8`` per component, binding by element-wise
  multiplication, cosine similarity.  This backend delegates to the original
  functions of :mod:`repro.hdc.hypervector` and :mod:`repro.hdc.operations`,
  so its results are bit-for-bit identical to the pre-backend code.
* :class:`PackedBackend` — the binary-HDC hardware formulation (Schmuck et
  al.): the same hypervectors bit-packed into ``uint64`` words, 64 components
  per word.  Binding becomes XOR, similarity becomes a popcount Hamming
  distance, and memory drops by ~8x — the representation that binary HDC
  accelerators (and our future sharded/served deployments) operate on.

The two backends describe *the same vector space*.  A packed vector is the
bit-packing of a bipolar vector under the mapping ``+1 -> bit 0``,
``-1 -> bit 1``; with that convention XOR on packed words equals sign
multiplication on the bipolar components, ``popcount(a ^ b)`` equals the
Hamming distance, and the packed "cosine" similarity ``1 - 2 * dist / d``
equals the true cosine of the bipolar equivalents exactly (bipolar vectors
all have norm ``sqrt(d)``).  Backends therefore rank candidates identically;
only storage and instruction mix differ.

Accumulators (un-normalized bundles) are backend-independent: both backends
accumulate into plain ``int64`` component-space arrays, so retraining,
online learning and robustness corruption work unchanged on either backend.
The packed backend's *training-side* kernels (accumulation, segmented
accumulation, majority vote, bundling) run on the bit-sliced carry-save
arithmetic of :mod:`repro.hdc.bitslice`, so bundling stays in ``uint64``
word space end to end and only converts to the ``int64`` exchange format at
the accumulator boundary — the per-row ``np.unpackbits`` expansion (an
8-64x transient memory blowup) is gone from the training hot path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.hdc.bitslice import (
    PACKED_DTYPE,
    WORD_BITS,
    bitslice_reduce,
    bitslice_segment_reduce,
    bitslice_to_counts,
    majority_vote_words,
    pack_bits,
    packed_words,
    rotate_components,
    scatter_random_tie_bits,
)
from repro.hdc.hypervector import (
    ACCUMULATOR_DTYPE,
    HV_DTYPE,
    ensure_matrix,
    random_bipolar,
    random_hypervectors,
)
from repro.hdc.operations import normalize_hard, permute, random_tie_signs
from repro.hdc.operations import similarity_matrix as dense_similarity_matrix

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "DenseBackend",
    "HDCBackend",
    "PACKED_DTYPE",
    "POPCOUNT_IMPLEMENTATION",
    "PackedBackend",
    "WORD_BITS",
    "get_backend",
    "pack_bipolar",
    "packed_words",
    "popcount",
    "popcount_lut",
    "unpack_to_bipolar",
]


def pack_bipolar(bipolar: np.ndarray) -> np.ndarray:
    """Bit-pack bipolar ``{-1, +1}`` hypervectors into ``uint64`` words.

    Component ``+1`` maps to bit 0 and ``-1`` to bit 1, so that XOR of packed
    words equals sign multiplication of the bipolar components.  Components
    are stored 64 per word, least-significant bit first; the final word of
    each vector is zero-padded when the dimensionality is not a multiple of
    64 (padding bits never influence XOR or popcount results).

    Accepts a single vector ``(d,)`` or a matrix ``(n, d)`` and preserves the
    input's number of dimensions.
    """
    array = np.asarray(bipolar)
    single = array.ndim == 1
    matrix = np.atleast_2d(array)
    words = pack_bits(matrix < 0, matrix.shape[1])
    return words[0] if single else words


def unpack_to_bipolar(packed: np.ndarray, dimension: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`: expand packed words to bipolar ``int8``."""
    array = np.asarray(packed, dtype=PACKED_DTYPE)
    single = array.ndim == 1
    matrix = np.atleast_2d(array)
    if matrix.shape[1] != packed_words(dimension):
        raise ValueError(
            f"expected {packed_words(dimension)} words for dimension {dimension}, "
            f"got {matrix.shape[1]}"
        )
    bytes_view = np.ascontiguousarray(matrix).view(np.uint8)
    bits = np.unpackbits(bytes_view, axis=1, bitorder="little")[:, :dimension]
    bipolar = (1 - 2 * bits.astype(np.int16)).astype(HV_DTYPE)
    return bipolar[0] if single else bipolar


_BYTE_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount_lut(words: np.ndarray) -> np.ndarray:
    """Per-element population count via a byte lookup table.

    The portable fallback: works on every NumPy, at the cost of a transient
    byte expansion.  Kept importable (not just as a conditional ``popcount``
    body) so its throughput can be benchmarked against the native kernel.
    """
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    counts = _BYTE_POPCOUNT[as_bytes].astype(np.uint64)
    return counts.reshape(words.shape + (words.dtype.itemsize,)).sum(axis=-1)


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count via the native ``np.bitwise_count``."""
        return np.bitwise_count(words)

    #: Which population-count kernel ``popcount`` dispatches to on this host;
    #: recorded by the kernel benchmarks so measured numbers are attributable.
    POPCOUNT_IMPLEMENTATION = "numpy.bitwise_count"
else:  # pragma: no cover - NumPy < 2 fallback
    popcount = popcount_lut
    POPCOUNT_IMPLEMENTATION = "byte-lut"


class HDCBackend(ABC):
    """Protocol implemented by every HDC compute backend.

    A backend owns the *native* storage format of hypervectors and the
    operations over them.  Accumulators (un-normalized bundles) are always
    plain ``int64`` component-space arrays so that incremental training is
    backend-agnostic.
    """

    #: Registry name of the backend ("dense", "packed", ...).
    name: str = ""

    #: NumPy dtype of the native hypervector storage.
    dtype: type = HV_DTYPE

    #: True when native storage *is* component space (one array column per
    #: component), so component-space products/sums can operate on native
    #: vectors directly.  Call sites branch on this capability — never on the
    #: backend name — to pick between component-space fast paths and the
    #: generic native-operation path.
    is_component_space: bool = False

    # ------------------------------------------------------------- storage
    @abstractmethod
    def storage_width(self, dimension: int) -> int:
        """Number of native-array columns used to store one hypervector."""

    def nbytes(self, count: int, dimension: int) -> int:
        """Bytes needed to store ``count`` hypervectors natively."""
        return count * self.storage_width(dimension) * np.dtype(self.dtype).itemsize

    def empty(self, count: int, dimension: int) -> np.ndarray:
        """An empty native matrix of ``count`` hypervectors."""
        return np.empty((count, self.storage_width(dimension)), dtype=self.dtype)

    # ------------------------------------------------------------ creation
    @abstractmethod
    def random(
        self,
        count: int,
        dimension: int,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """``count`` i.i.d. random hypervectors in native storage.

        For a given seed the drawn hypervectors correspond *exactly* across
        backends: the packed backend consumes the same random stream as the
        dense backend and packs the resulting bipolar vectors.
        """

    def random_one(
        self, dimension: int, *, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """A single random hypervector in native storage."""
        return self.random(1, dimension, rng=rng)[0]

    @abstractmethod
    def pack(self, bipolar: np.ndarray) -> np.ndarray:
        """Convert bipolar ``int8`` component vectors to native storage."""

    @abstractmethod
    def unpack(self, native: np.ndarray, dimension: int) -> np.ndarray:
        """Convert native storage back to bipolar ``int8`` component vectors."""

    # ---------------------------------------------------------- operations
    @abstractmethod
    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bind two native hypervectors (or row-aligned matrices)."""

    @abstractmethod
    def accumulate(self, native_matrix: np.ndarray, dimension: int) -> np.ndarray:
        """Signed component-space sum of native hypervectors (``int64 (d,)``)."""

    def segment_accumulate(
        self,
        native_matrix: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        dimension: int,
    ) -> np.ndarray:
        """Per-segment signed component-space sums of native hypervectors.

        Row ``i`` of ``native_matrix`` is added into output row
        ``segment_ids[i]``; the result is an ``int64 (num_segments, d)``
        accumulator matrix (rows of absent segments are zero).  This is the
        bundling kernel of the flat-batch graph encoder: the edge
        hypervectors of a whole dataset are accumulated into per-graph
        bundles in one call.  Segment ids may be in any order, but the
        sorted (non-decreasing) order produced by concatenating per-graph
        edge lists is the fast path.
        """
        matrix = np.atleast_2d(np.asarray(native_matrix))
        ids = np.asarray(segment_ids, dtype=np.int64)
        if num_segments < 0:
            raise ValueError(f"num_segments must be non-negative, got {num_segments}")
        if ids.ndim != 1 or ids.shape[0] != matrix.shape[0]:
            raise ValueError(
                f"segment_ids of shape {ids.shape} does not match "
                f"{matrix.shape[0]} hypervectors"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
            raise ValueError(
                f"segment ids must lie in [0, {num_segments}), "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        output = np.zeros((num_segments, dimension), dtype=ACCUMULATOR_DTYPE)
        if matrix.shape[0] == 0:
            return output
        if ids.size > 1 and np.any(ids[1:] < ids[:-1]):
            order = np.argsort(ids, kind="stable")
            matrix = matrix[order]
            ids = ids[order]
        self._segment_accumulate_sorted(matrix, ids, output, dimension)
        return output

    def _segment_accumulate_sorted(
        self,
        native_matrix: np.ndarray,
        sorted_ids: np.ndarray,
        output: np.ndarray,
        dimension: int,
    ) -> None:
        """Accumulate rows grouped by non-decreasing ``sorted_ids`` into ``output``."""
        unique_ids, starts = np.unique(sorted_ids, return_index=True)
        boundaries = np.append(starts, len(sorted_ids))
        for index, segment in enumerate(unique_ids):
            block = native_matrix[boundaries[index] : boundaries[index + 1]]
            output[segment] += self.accumulate(block, dimension)

    # -------------------------------------------------------- accumulators
    def validate_accumulator(
        self, accumulator: np.ndarray, dimension: int
    ) -> np.ndarray:
        """Check that ``accumulator`` is a component-space ``int64`` sum.

        Accumulators are backend-independent: one signed ``int64`` entry per
        component, regardless of the native storage format.  This validates
        the shape and rejects dtypes that do not cast *safely* to ``int64``
        — native packed words (``uint64``, which would silently wrap) and
        float arrays (which would silently truncate) both raise a clear
        ``ValueError`` instead of corrupting a class vector.  Returns the
        accumulator as an ``int64`` array (cast when needed).
        """
        array = np.asarray(accumulator)
        if array.shape != (dimension,):
            raise ValueError(
                f"expected a component-space accumulator of shape "
                f"({dimension},), got {array.shape}"
            )
        if array.dtype == ACCUMULATOR_DTYPE:
            return array
        if not np.can_cast(array.dtype, ACCUMULATOR_DTYPE, casting="safe"):
            raise ValueError(
                f"accumulator dtype {array.dtype} does not cast safely to "
                f"{np.dtype(ACCUMULATOR_DTYPE)}; accumulators must be signed "
                "component-space integer sums (native packed uint64 words "
                "must be accumulated with backend.accumulate, not added raw)"
            )
        return array.astype(ACCUMULATOR_DTYPE)

    def merge_accumulators(
        self, into: np.ndarray, other: np.ndarray, dimension: int
    ) -> np.ndarray:
        """Add the component-space accumulator ``other`` into ``into``.

        The merge kernel of sharded map-reduce training: integer vector
        addition, after validating ``other`` against this backend.  ``into``
        is updated in place and returned.
        """
        into += self.validate_accumulator(other, dimension)
        return into

    @abstractmethod
    def normalize(
        self,
        accumulator: np.ndarray,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Majority-vote an ``int64`` accumulator into a native hypervector."""

    @abstractmethod
    def permute(self, native: np.ndarray, dimension: int, shifts: int = 1) -> np.ndarray:
        """Cyclically rotate hypervector components (native in, native out)."""

    @abstractmethod
    def similarity_matrix(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        references: Sequence[np.ndarray] | np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        """Pairwise similarity of native queries against native references.

        Both backends support the metrics ``"cosine"``, ``"hamming"`` and
        ``"dot"`` and rank candidates identically for a given metric.
        """

    @abstractmethod
    def similarity_to_accumulators(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        accumulators: np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        """Similarity of native queries against component-space accumulators.

        Class vectors and cluster centroids are kept as backend-independent
        ``int64`` component-space accumulators; this method compares native
        queries against them.  The dense backend compares against the raw
        accumulators directly (the paper's formulation); binary backends
        majority-vote and re-pack the accumulators first, since their
        similarity kernels only compare native hypervectors.
        """

    def bundle(
        self,
        native_matrix: np.ndarray,
        dimension: int,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Accumulate and majority-vote a batch of native hypervectors."""
        accumulator = self.accumulate(native_matrix, dimension)
        return self.normalize(accumulator, tie_breaker=tie_breaker, rng=rng)


class DenseBackend(HDCBackend):
    """The original int8 bipolar backend (the paper's formulation).

    Every method delegates to the pre-existing functions in
    :mod:`repro.hdc.hypervector` / :mod:`repro.hdc.operations`, keeping the
    numerical behaviour of the refactored call sites bit-for-bit identical to
    the seed implementation.
    """

    name = "dense"
    dtype = HV_DTYPE
    is_component_space = True

    def storage_width(self, dimension: int) -> int:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        return dimension

    def random(
        self,
        count: int,
        dimension: int,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        return random_hypervectors(count, dimension, kind="bipolar", rng=rng)

    def random_one(
        self, dimension: int, *, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        return random_bipolar(dimension, rng=rng)

    def pack(self, bipolar: np.ndarray) -> np.ndarray:
        return np.asarray(bipolar, dtype=HV_DTYPE)

    def unpack(self, native: np.ndarray, dimension: int) -> np.ndarray:
        return np.asarray(native, dtype=HV_DTYPE)

    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise ValueError(f"cannot bind hypervectors of shapes {a.shape} and {b.shape}")
        # Native hypervectors are bipolar {-1, +1}, so the int8 product can
        # never overflow; multiplying in int8 halves the memory traffic of
        # the flat-batch edge-binding hot path.
        return np.multiply(a, b, dtype=HV_DTYPE)

    def accumulate(self, native_matrix: np.ndarray, dimension: int) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(native_matrix))
        if matrix.shape[0] == 0:
            return np.zeros(dimension, dtype=ACCUMULATOR_DTYPE)
        return matrix.astype(ACCUMULATOR_DTYPE).sum(axis=0)

    def _segment_accumulate_sorted(
        self,
        native_matrix: np.ndarray,
        sorted_ids: np.ndarray,
        output: np.ndarray,
        dimension: int,
    ) -> None:
        # Each present segment is a contiguous row range; summing the ranges
        # with `ndarray.sum` (SIMD-vectorized over the contiguous rows) is
        # an order of magnitude faster here than `np.add.reduceat`, whose
        # axis-0 reduction degenerates to a strided inner loop.
        unique_ids, starts = np.unique(sorted_ids, return_index=True)
        boundaries = np.append(starts, len(sorted_ids))
        for index, segment in enumerate(unique_ids):
            block = native_matrix[boundaries[index] : boundaries[index + 1]]
            output[segment] += block.sum(axis=0, dtype=ACCUMULATOR_DTYPE)

    def normalize(
        self,
        accumulator: np.ndarray,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        return normalize_hard(accumulator, tie_breaker=tie_breaker, rng=rng)

    def permute(self, native: np.ndarray, dimension: int, shifts: int = 1) -> np.ndarray:
        return permute(native, shifts)

    def similarity_matrix(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        references: Sequence[np.ndarray] | np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        return dense_similarity_matrix(queries, references, metric=metric)

    def similarity_to_accumulators(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        accumulators: np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        return dense_similarity_matrix(queries, accumulators, metric=metric)


class PackedBackend(HDCBackend):
    """Bit-packed binary backend: ``uint64`` bitplanes, XOR, popcount.

    Hypervectors are stored as ``(count, ceil(dimension / 64))`` ``uint64``
    arrays (~8x less memory than dense int8).  Binding is a word-wise XOR,
    bundling is a per-bit integer accumulation followed by the usual majority
    vote, and similarity is the popcount Hamming distance, remapped so the
    ``"cosine"`` and ``"dot"`` metrics return exactly the values the dense
    backend would compute on the bipolar equivalents.
    """

    name = "packed"
    dtype = PACKED_DTYPE
    is_component_space = False

    #: Queries processed per block in the popcount similarity kernel; also
    #: the row count of the preallocated XOR scratch buffer.
    SIMILARITY_BLOCK_ROWS = 64

    def storage_width(self, dimension: int) -> int:
        return packed_words(dimension)

    def random(
        self,
        count: int,
        dimension: int,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        # Draw through the dense generator so that, for the same seed, the
        # packed basis is exactly the packing of the dense basis.
        return pack_bipolar(random_hypervectors(count, dimension, rng=rng))

    def random_one(
        self, dimension: int, *, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        return pack_bipolar(random_bipolar(dimension, rng=rng))

    def pack(self, bipolar: np.ndarray) -> np.ndarray:
        return pack_bipolar(bipolar)

    def unpack(self, native: np.ndarray, dimension: int) -> np.ndarray:
        return unpack_to_bipolar(native, dimension)

    def bind(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=PACKED_DTYPE)
        b = np.asarray(b, dtype=PACKED_DTYPE)
        if a.shape != b.shape:
            raise ValueError(f"cannot bind hypervectors of shapes {a.shape} and {b.shape}")
        return np.bitwise_xor(a, b)

    def accumulate(self, native_matrix: np.ndarray, dimension: int) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(native_matrix, dtype=PACKED_DTYPE))
        count = matrix.shape[0]
        if count == 0:
            return np.zeros(dimension, dtype=ACCUMULATOR_DTYPE)
        # Carry-save bundling: reduce the packed rows to ceil(log2(n + 1))
        # bit-sliced count planes entirely in word space, then convert the
        # counts to the signed bipolar sum (#+1) - (#-1) = n - 2 * counts.
        # The boundary conversion touches O(log n) planes, not the O(n)
        # unpacked bit matrix the pre-bitslice kernel expanded.
        planes = bitslice_reduce(matrix)
        return count - 2 * bitslice_to_counts(planes, dimension)

    def _segment_accumulate_sorted(
        self,
        native_matrix: np.ndarray,
        sorted_ids: np.ndarray,
        output: np.ndarray,
        dimension: int,
    ) -> None:
        # All segments are reduced simultaneously by the paired-run
        # carry-save tree (adjacent same-segment counters merge level by
        # level with one vectorized full-adder pass each), then every
        # present segment converts its log-depth planes to the signed sum
        # (#+1) - (#-1) = rows_in_segment - 2 * counts in one batch.
        matrix = np.asarray(native_matrix, dtype=PACKED_DTYPE)
        unique_ids, planes, row_counts = bitslice_segment_reduce(matrix, sorted_ids)
        if unique_ids.size == 0:
            return
        output[unique_ids] += row_counts[:, None] - 2 * bitslice_to_counts(
            planes, dimension
        )

    def normalize(
        self,
        accumulator: np.ndarray,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        # Word-space majority vote over the component-space exchange format:
        # the negative components pack straight into sign bits; ties (exact
        # zeros) copy the tie-breaker's packed bits or draw from the same
        # random stream as the dense vote, so a packed bundle is exactly the
        # packing of the dense bundle — no int8 sign vector materialized.
        array = np.asarray(accumulator)
        single = array.ndim == 1
        matrix = np.atleast_2d(array)
        dimension = matrix.shape[-1]
        votes = pack_bits(matrix < 0, dimension)
        ties = matrix == 0
        if np.any(ties):
            if tie_breaker is not None:
                tie_breaker = np.asarray(tie_breaker)
                if tie_breaker.shape != array.shape[-tie_breaker.ndim :]:
                    raise ValueError(
                        f"tie_breaker shape {tie_breaker.shape} does not match "
                        f"accumulator shape {array.shape}"
                    )
                breaker_bits = pack_bits(
                    np.broadcast_to(tie_breaker < 0, matrix.shape), dimension
                )
                votes |= pack_bits(ties, dimension) & breaker_bits
            else:
                scatter_random_tie_bits(votes, ties, dimension, rng)
        return votes[0] if single else votes

    def bundle(
        self,
        native_matrix: np.ndarray,
        dimension: int,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Bundle packed hypervectors without ever leaving word space.

        Carry-save reduction straight into the word-space majority vote: the
        per-component counts live as bit-sliced planes and the vote compares
        them against ``n // 2`` with the bitwise comparator — no ``int64``
        component-space accumulator is materialized.  Bit-for-bit identical
        to ``normalize(accumulate(...))`` on either backend, including the
        tie-breaking stream.
        """
        matrix = np.atleast_2d(np.asarray(native_matrix, dtype=PACKED_DTYPE))
        planes = bitslice_reduce(matrix)
        return majority_vote_words(
            planes, matrix.shape[0], dimension, tie_breaker=tie_breaker, rng=rng
        )

    def validate_accumulator(
        self, accumulator: np.ndarray, dimension: int
    ) -> np.ndarray:
        array = np.asarray(accumulator)
        if array.dtype == PACKED_DTYPE and array.shape[-1:] == (
            packed_words(dimension),
        ):
            raise ValueError(
                f"got a uint64 array of {packed_words(dimension)} words — this "
                "looks like a *native packed hypervector*, not an accumulator; "
                "accumulators are signed int64 component-space sums "
                "(use backend.accumulate / backend.unpack first)"
            )
        return super().validate_accumulator(array, dimension)

    def permute(self, native: np.ndarray, dimension: int, shifts: int = 1) -> np.ndarray:
        # Word-space rotation: uint64 shifts with cross-word carry (and a
        # wrap of the displaced high components), exactly equivalent to the
        # dense np.roll on the bipolar unpacking.
        return rotate_components(native, dimension, shifts)

    def hamming_distances(
        self, queries: np.ndarray, references: np.ndarray
    ) -> np.ndarray:
        """Pairwise popcount Hamming distances between packed matrices."""
        queries = np.atleast_2d(np.asarray(queries, dtype=PACKED_DTYPE))
        references = np.atleast_2d(np.asarray(references, dtype=PACKED_DTYPE))
        if queries.shape[1] != references.shape[1]:
            raise ValueError(
                "dimensionality mismatch: "
                f"{queries.shape[1]} vs {references.shape[1]} words"
            )
        distances = np.empty(
            (queries.shape[0], references.shape[0]), dtype=ACCUMULATOR_DTYPE
        )
        # One XOR scratch buffer serves every block: writing the XOR through
        # ``out=`` avoids allocating (and faulting in) a fresh
        # (block, refs, words) temporary per block, which dominated the
        # allocator traffic of large query batches.
        scratch = np.empty(
            (
                min(self.SIMILARITY_BLOCK_ROWS, queries.shape[0]),
                references.shape[0],
                queries.shape[1],
            ),
            dtype=PACKED_DTYPE,
        )
        for start in range(0, queries.shape[0], self.SIMILARITY_BLOCK_ROWS):
            block = queries[start : start + self.SIMILARITY_BLOCK_ROWS]
            xor = scratch[: block.shape[0]]
            np.bitwise_xor(block[:, None, :], references[None, :, :], out=xor)
            distances[start : start + block.shape[0]] = popcount(xor).sum(
                axis=2, dtype=ACCUMULATOR_DTYPE
            )
        return distances

    def similarity_matrix(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        references: Sequence[np.ndarray] | np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        query_matrix = ensure_matrix(queries)
        reference_matrix = ensure_matrix(references)
        distances = self.hamming_distances(query_matrix, reference_matrix).astype(
            np.float64
        )
        # For bipolar vectors of dimension d:  dot = d - 2 * hamming_distance
        # and every vector has norm sqrt(d), so cosine = dot / d.  The three
        # metrics are therefore exact (not approximate) remappings of the
        # popcount distance and rank candidates identically to the dense
        # backend on the bipolar equivalents.
        if metric == "hamming":
            return 1.0 - distances / float(dimension)
        if metric == "cosine":
            return 1.0 - 2.0 * distances / float(dimension)
        if metric == "dot":
            return float(dimension) - 2.0 * distances
        raise ValueError(
            f"unknown similarity metric {metric!r}; "
            "expected one of ['cosine', 'dot', 'hamming']"
        )

    def similarity_to_accumulators(
        self,
        queries: Sequence[np.ndarray] | np.ndarray,
        accumulators: np.ndarray,
        dimension: int,
        *,
        metric: str = "cosine",
    ) -> np.ndarray:
        # The word-space majority vote packs the class vectors directly
        # (bit-identical to packing the dense normalization, including the
        # rng=0 tie stream consumed jointly across the accumulator rows).
        references = self.normalize(np.atleast_2d(accumulators), rng=0)
        return self.similarity_matrix(queries, references, dimension, metric=metric)


#: Singleton registry of the available backends.
BACKENDS: dict[str, HDCBackend] = {
    backend.name: backend for backend in (DenseBackend(), PackedBackend())
}

#: Names accepted by ``GraphHDConfig(backend=...)`` and the CLI ``--backend``.
BACKEND_NAMES = tuple(sorted(BACKENDS))


def get_backend(backend: str | HDCBackend | None) -> HDCBackend:
    """Resolve a backend name (or pass through an instance) to a backend.

    ``None`` resolves to the dense backend, preserving the behaviour of every
    pre-backend call site.
    """
    if backend is None:
        return BACKENDS["dense"]
    if isinstance(backend, HDCBackend):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError as error:
        raise ValueError(
            f"unknown HDC backend {backend!r}; expected one of {list(BACKEND_NAMES)}"
        ) from error
