"""Bit-sliced carry-save arithmetic over packed ``uint64`` hypervector words.

The packed backend stores 64 hypervector components per ``uint64`` word, which
makes *binding* (XOR) and *similarity* (popcount) word-parallel for free.  The
training side — bundling many hypervectors into per-class counts — is harder:
a per-component count does not fit in one bit.  The classic hardware answer,
implemented here, is **bit-slicing**: a running per-component count is stored
as ``K`` packed *bitplanes*, plane ``k`` holding bit ``k`` of every
component's count.  ``K`` grows only logarithmically with the number of
bundled vectors, and all arithmetic stays in word space:

* adding one packed hypervector to all ``d`` per-component counters is a
  ripple **carry-save add** — ``~2K`` word-ops total, i.e. ``d/64`` lanes per
  op instead of ``d`` scalar adds;
* adding a *batch* of ``n`` packed hypervectors is a pairwise carry-save
  **reduction tree** (:func:`bitslice_reduce`) costing ``O(n)`` word-ops with
  vectorized full-adders at every level, instead of the ``8-64x`` memory
  blowup of expanding words to per-component bit matrices;
* the majority vote compares the bit-sliced count against the threshold
  ``n // 2`` with a bitwise magnitude comparator
  (:func:`majority_vote_words`), producing the packed sign vector directly —
  bit-for-bit identical to packing
  :func:`repro.hdc.operations.normalize_hard` of the equivalent signed sum,
  including the random tie-breaker stream;
* cyclic component rotation (:func:`rotate_components`) is a double-shift
  with cross-word carry on the little-endian word layout — no unpack/roll/
  pack round trip.

Throughout this module a set bit means a ``-1`` component (the
:func:`repro.hdc.backend.pack_bipolar` convention), so the bit-sliced counter
of a bundle counts its ``-1`` contributions and the signed component-space
sum of ``n`` bundled vectors is ``n - 2 * count``.  The signed ``int64``
component-space accumulator remains the canonical *exchange* format of
training state (merging, saving, sharding); :func:`bitslice_to_counts` /
:func:`counts_to_bitslice` convert at that boundary, in ``O(K * d)`` instead
of ``O(n * d)``.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.hypervector import ACCUMULATOR_DTYPE
from repro.hdc.operations import random_tie_signs

#: Number of hypervector components stored per packed word.
WORD_BITS = 64

#: Storage dtype of packed hypervector words and bitplanes.
PACKED_DTYPE = np.uint64

_ONE = PACKED_DTYPE(1)
_FULL_WORD = PACKED_DTYPE(0xFFFFFFFFFFFFFFFF)

#: Bits of each byte value, LSB first — expands packed words to component
#: bits via a table lookup (one ``uint8`` per component, never the 8-byte
#: intermediate a shift-based expansion would materialize).
_BYTE_BITS = (
    (np.arange(256, dtype=np.uint8)[:, None] >> np.arange(8, dtype=np.uint8)) & 1
).astype(np.uint8)


def packed_words(dimension: int) -> int:
    """Number of ``uint64`` words needed to store ``dimension`` components."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return (dimension + WORD_BITS - 1) // WORD_BITS


def valid_bits_mask(dimension: int) -> np.ndarray:
    """Per-word mask of the bits that map to real components.

    The final word of a packed vector is only partially populated when the
    dimensionality is not a multiple of 64; its padding bits must never leak
    into majority votes or tie-breaking.
    """
    mask = np.full(packed_words(dimension), _FULL_WORD, dtype=PACKED_DTYPE)
    remainder = dimension % WORD_BITS
    if remainder:
        mask[-1] = (_ONE << PACKED_DTYPE(remainder)) - _ONE
    return mask


def pack_bits(bits: np.ndarray, dimension: int) -> np.ndarray:
    """Pack boolean/0-1 component rows into ``uint64`` words (LSB first).

    The inverse of :func:`expand_bits`; rows shorter than a whole number of
    words are zero-padded, matching ``pack_bipolar``'s layout.
    """
    array = np.atleast_2d(np.asarray(bits))
    single = np.asarray(bits).ndim == 1
    if array.shape[-1] != dimension:
        raise ValueError(
            f"expected rows of {dimension} component bits, got {array.shape[-1]}"
        )
    packed_bytes = np.packbits(array.astype(np.uint8), axis=-1, bitorder="little")
    padded = packed_words(dimension) * (WORD_BITS // 8)
    if packed_bytes.shape[-1] < padded:
        packed_bytes = np.concatenate(
            [
                packed_bytes,
                np.zeros(
                    array.shape[:-1] + (padded - packed_bytes.shape[-1],),
                    dtype=np.uint8,
                ),
            ],
            axis=-1,
        )
    words = np.ascontiguousarray(packed_bytes).view(PACKED_DTYPE)
    return words[0] if single else words


def expand_bits(words: np.ndarray, dimension: int) -> np.ndarray:
    """Expand packed words to one ``uint8`` bit per component (LSB first).

    Table-driven (byte -> 8 bits), so the transient cost is one byte per
    component — used only on ``O(K)`` bitplanes or single masks, never on the
    ``O(n)`` row matrices the carry-save kernels exist to avoid expanding.
    """
    array = np.asarray(words, dtype=PACKED_DTYPE)
    if array.shape[-1] != packed_words(dimension):
        raise ValueError(
            f"expected {packed_words(dimension)} words for dimension {dimension}, "
            f"got {array.shape[-1]}"
        )
    as_bytes = np.ascontiguousarray(array).view(np.uint8)
    bits = _BYTE_BITS[as_bytes].reshape(
        array.shape[:-1] + (array.shape[-1] * WORD_BITS,)
    )
    return bits[..., :dimension]


# --------------------------------------------------------------------- adders
def _merge_counters(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two batches of ``k``-plane bit-sliced counters plane-wise.

    ``a`` and ``b`` are ``(m, k, words)`` stacks of ``k``-bit counters; the
    result is the ``(m, k + 1, words)`` element-wise sums.  One vectorized
    full-adder per plane: ``sum = a ^ b ^ carry``,
    ``carry' = (a & b) | (carry & (a ^ b))``.
    """
    m, k, words = a.shape
    out = np.empty((m, k + 1, words), dtype=PACKED_DTYPE)
    carry = np.zeros((m, words), dtype=PACKED_DTYPE)
    for plane in range(k):
        a_plane = a[:, plane]
        b_plane = b[:, plane]
        half = a_plane ^ b_plane
        out[:, plane] = half ^ carry
        carry = (a_plane & b_plane) | (carry & half)
    out[:, k] = carry
    return out


def add_planes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two bit-sliced counters of possibly different widths.

    ``a`` is ``(k_a, words)`` and ``b`` is ``(k_b, words)``; the result has
    just enough planes to hold the sum (a final carry plane is appended only
    when it is non-zero).  This is the merge kernel of streaming carry-save
    accumulation: a running counter absorbs a batch counter with ``O(K)``
    word-ops.
    """
    a = np.atleast_2d(np.asarray(a, dtype=PACKED_DTYPE))
    b = np.atleast_2d(np.asarray(b, dtype=PACKED_DTYPE))
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(f"word-count mismatch: {a.shape[-1]} vs {b.shape[-1]}")
    if a.shape[0] < b.shape[0]:
        a, b = b, a
    words = a.shape[-1]
    out = np.empty((a.shape[0], words), dtype=PACKED_DTYPE)
    carry = np.zeros(words, dtype=PACKED_DTYPE)
    for plane in range(a.shape[0]):
        a_plane = a[plane]
        b_plane = b[plane] if plane < b.shape[0] else np.zeros(words, PACKED_DTYPE)
        half = a_plane ^ b_plane
        out[plane] = half ^ carry
        carry = (a_plane & b_plane) | (carry & half)
    if np.any(carry):
        out = np.concatenate([out, carry[None, :]], axis=0)
    return out


def bitslice_reduce(matrix: np.ndarray) -> np.ndarray:
    """Sum ``n`` packed rows into one bit-sliced counter, in word space.

    ``matrix`` is ``(n, words)`` packed hypervectors; the result is a
    ``(K, words)`` bit-sliced per-component count of set bits, with
    ``K = ceil(log2(n + 1))``.  Pairwise carry-save tree: at every level,
    adjacent counters are merged with one *vectorized* full-adder pass over
    all pairs at once, so the total work is ``O(n)`` word-ops spread over
    ``log2(n)`` NumPy dispatches — the transient memory stays ``O(n * words)``
    (the size of the input), never the unpacked ``O(n * d)`` bit matrix.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=PACKED_DTYPE))
    n, words = matrix.shape
    if n == 0:
        return np.zeros((1, words), dtype=PACKED_DTYPE)
    counters = matrix[:, None, :]
    while counters.shape[0] > 1:
        m, k, _ = counters.shape
        paired = m - (m % 2)
        merged = _merge_counters(counters[0:paired:2], counters[1:paired:2])
        if m % 2:
            leftover = np.concatenate(
                [counters[-1:], np.zeros((1, 1, words), dtype=PACKED_DTYPE)], axis=1
            )
            merged = np.concatenate([merged, leftover], axis=0)
        counters = merged
    return counters[0]


def bitslice_segment_reduce(
    matrix: np.ndarray, sorted_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment bit-sliced counts of packed rows grouped by sorted ids.

    ``matrix`` is ``(n, words)`` and ``sorted_ids`` a matching non-decreasing
    ``int64`` vector.  Returns ``(unique_ids, planes, counts)`` where
    ``planes`` is ``(num_unique, K, words)`` (``K`` sized for the largest
    segment; smaller segments carry zero top planes) and ``counts`` the
    per-segment row counts.

    All segments are reduced *simultaneously*: every level pairs adjacent
    counters that share a segment id (runs stay contiguous because the ids
    are sorted) and merges all pairs with one vectorized full-adder pass, so
    a batch of many small segments — the flat-batch graph-encoding shape —
    costs the same few NumPy dispatches per level as one big segment.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=PACKED_DTYPE))
    ids = np.asarray(sorted_ids, dtype=np.int64)
    n, words = matrix.shape
    if ids.shape != (n,):
        raise ValueError(
            f"sorted_ids of shape {ids.shape} does not match {n} rows"
        )
    unique_ids, counts = np.unique(ids, return_counts=True)
    if n == 0:
        return unique_ids, np.zeros((0, 1, words), dtype=PACKED_DTYPE), counts
    counters = matrix[:, None, :]
    while True:
        m, k, _ = counters.shape
        if m <= 1:
            break
        same_next = ids[:-1] == ids[1:]
        if not same_next.any():
            break
        run_start = np.concatenate([[True], ~same_next])
        starts = np.flatnonzero(run_start)
        run_index = np.cumsum(run_start) - 1
        position = np.arange(m) - starts[run_index]
        first = np.concatenate([same_next, [False]]) & (position % 2 == 0)
        second = np.concatenate([[False], first[:-1]])
        merged = _merge_counters(counters[first], counters[second])
        emit = ~second
        next_counters = np.empty((int(emit.sum()), k + 1, words), dtype=PACKED_DTYPE)
        emitted_first = first[emit]
        next_counters[emitted_first] = merged
        singles = counters[~first & ~second]
        next_counters[~emitted_first, :k] = singles
        next_counters[~emitted_first, k] = 0
        counters = next_counters
        ids = ids[emit]
    assert np.array_equal(ids, unique_ids)
    return unique_ids, counters, counts


# --------------------------------------------------------- boundary converters
def bitslice_to_counts(planes: np.ndarray, dimension: int) -> np.ndarray:
    """Expand a bit-sliced counter to per-component ``int64`` counts.

    ``planes`` is ``(..., K, words)``; the result is ``(..., dimension)``.
    This is the state-boundary converter: its cost is ``O(K * d)`` — the
    logarithmic number of planes, not the number of accumulated vectors.
    """
    planes = np.asarray(planes, dtype=PACKED_DTYPE)
    if planes.ndim < 2:
        raise ValueError(f"expected (..., K, words) planes, got shape {planes.shape}")
    lead = planes.shape[:-2]
    counts = np.zeros(lead + (dimension,), dtype=ACCUMULATOR_DTYPE)
    for plane in range(planes.shape[-2]):
        bits = expand_bits(planes[..., plane, :], dimension)
        counts += bits.astype(ACCUMULATOR_DTYPE) << plane
    return counts


def counts_to_bitslice(counts: np.ndarray, dimension: int) -> np.ndarray:
    """Pack per-component non-negative counts into bit-sliced planes.

    Inverse of :func:`bitslice_to_counts`; the number of planes is sized for
    the largest count (at least one plane).  Raises on negative counts —
    bit-sliced counters are unsigned tallies of ``-1`` bits.
    """
    counts = np.asarray(counts)
    if counts.shape[-1] != dimension:
        raise ValueError(
            f"expected rows of {dimension} counts, got {counts.shape[-1]}"
        )
    counts = counts.astype(ACCUMULATOR_DTYPE, copy=False)
    if counts.size and counts.min() < 0:
        raise ValueError("bit-sliced counters cannot represent negative counts")
    max_count = int(counts.max()) if counts.size else 0
    num_planes = max(1, max_count.bit_length())
    planes = np.empty(
        counts.shape[:-1] + (num_planes, packed_words(dimension)),
        dtype=PACKED_DTYPE,
    )
    for plane in range(num_planes):
        planes[..., plane, :] = pack_bits((counts >> plane) & 1, dimension)
    return planes


# ------------------------------------------------------------- majority vote
def compare_with_threshold(
    planes: np.ndarray, thresholds: np.ndarray | int
) -> tuple[np.ndarray, np.ndarray]:
    """Bitwise magnitude comparison of bit-sliced counts against thresholds.

    ``planes`` is ``(..., K, words)``; ``thresholds`` a non-negative integer
    (or an array broadcastable over the leading axes).  Returns packed masks
    ``(greater, equal)``: bit ``c`` of ``greater`` is set where
    ``count[c] > threshold`` and of ``equal`` where ``count[c] == threshold``.
    The comparator scans planes from the most significant down, maintaining
    an *undecided* mask — plain bitwise arithmetic, no per-component loop.
    """
    planes = np.asarray(planes, dtype=PACKED_DTYPE)
    lead = planes.shape[:-2]
    words = planes.shape[-1]
    thresholds = np.asarray(thresholds, dtype=np.int64)
    num_planes = max(
        planes.shape[-2],
        int(thresholds.max()).bit_length() if thresholds.size else 1,
    )
    greater = np.zeros(lead + (words,), dtype=PACKED_DTYPE)
    less = np.zeros(lead + (words,), dtype=PACKED_DTYPE)
    zero_plane = np.zeros(lead + (words,), dtype=PACKED_DTYPE)
    for plane in range(num_planes - 1, -1, -1):
        count_bit = planes[..., plane, :] if plane < planes.shape[-2] else zero_plane
        # bit * all-ones maps bit 1 -> all-ones, bit 0 -> all-zeros.
        threshold_bit = (
            ((thresholds >> plane) & 1).astype(PACKED_DTYPE) * _FULL_WORD
        )[..., None]
        undecided = ~(greater | less)
        greater |= undecided & count_bit & ~threshold_bit
        less |= undecided & ~count_bit & threshold_bit
    return greater, ~(greater | less)


def majority_vote_words(
    planes: np.ndarray,
    totals: np.ndarray | int,
    dimension: int,
    *,
    tie_breaker: np.ndarray | None = None,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Majority-vote bit-sliced ``-1`` counts directly into packed words.

    ``planes`` holds the per-component count of ``-1`` bits among ``totals``
    bundled vectors (``totals`` broadcasts over the leading axes of
    ``planes``).  A component votes ``-1`` (bit set) when more than half of
    the vectors were ``-1`` — i.e. ``count > totals // 2`` — decided with the
    word-space comparator; exact half-splits (only possible for even totals)
    are ties.

    Tie-breaking matches :func:`repro.hdc.operations.normalize_hard`
    bit-for-bit: with a bipolar ``tie_breaker`` vector, ties copy its sign;
    otherwise ties draw random signs from the *same* generator stream, in
    row-major component order, consuming exactly one draw per tie.  Padding
    bits of the final word are never ties and stay zero.
    """
    planes = np.asarray(planes, dtype=PACKED_DTYPE)
    lead = planes.shape[:-2]
    totals = np.asarray(totals, dtype=np.int64)
    if totals.size and totals.min() < 0:
        raise ValueError("totals must be non-negative")
    greater, equal = compare_with_threshold(planes, totals // 2)
    votes = greater
    # Ties require an exact half-split, which needs an even vector count;
    # padding bits compare equal for totals < 2 and must be masked out.
    even = ((1 - (totals & 1)).astype(PACKED_DTYPE) * _FULL_WORD)[..., None]
    ties = equal & even & valid_bits_mask(dimension)
    if not np.any(ties):
        return votes
    if tie_breaker is not None:
        tie_breaker = np.asarray(tie_breaker)
        if tie_breaker.shape[-1] != dimension:
            raise ValueError(
                f"tie_breaker of dimension {tie_breaker.shape[-1]} does not "
                f"match accumulator dimension {dimension}"
            )
        packed_breaker = pack_bits(tie_breaker < 0, dimension)
        return votes | (ties & packed_breaker)
    votes = votes.copy()
    scatter_random_tie_bits(votes, expand_bits(ties, dimension) != 0, dimension, rng)
    return votes


def scatter_random_tie_bits(
    votes: np.ndarray,
    tie_mask: np.ndarray,
    dimension: int,
    rng: int | np.random.Generator | None,
) -> None:
    """Set random ``-1`` bits of ``votes`` at the tie positions, in place.

    ``tie_mask`` is a boolean component-space array whose leading shape
    matches ``votes``; ties are enumerated in row-major order and consume one
    sign per tie from :func:`repro.hdc.operations.random_tie_signs` — the
    identical stream the dense majority vote draws, so packed and dense
    normalization agree bit-for-bit even through random tie-breaking.
    """
    words = votes.shape[-1]
    positions = np.flatnonzero(tie_mask)
    signs = random_tie_signs(rng, positions.size)
    negative = positions[signs < 0]
    if negative.size == 0:
        return
    rows, components = np.divmod(negative, dimension)
    # ``votes`` is always a freshly computed contiguous array here, so the
    # flattened view aliases it and the scatter lands in place.
    flat = votes.reshape(-1)
    np.bitwise_or.at(
        flat,
        rows * words + components // WORD_BITS,
        _ONE << (components % WORD_BITS).astype(PACKED_DTYPE),
    )


# ------------------------------------------------------------------ rotation
def _shift_towards_msb(matrix: np.ndarray, shift: int) -> np.ndarray:
    """Shift packed rows ``shift`` components towards higher indices."""
    words = matrix.shape[-1]
    word_shift, bit_shift = divmod(shift, WORD_BITS)
    out = np.zeros_like(matrix)
    if bit_shift == 0:
        out[..., word_shift:] = matrix[..., : words - word_shift]
    else:
        out[..., word_shift:] = matrix[..., : words - word_shift] << PACKED_DTYPE(
            bit_shift
        )
        out[..., word_shift + 1 :] |= matrix[..., : words - word_shift - 1] >> (
            PACKED_DTYPE(WORD_BITS - bit_shift)
        )
    return out


def _shift_towards_lsb(matrix: np.ndarray, shift: int) -> np.ndarray:
    """Shift packed rows ``shift`` components towards lower indices."""
    words = matrix.shape[-1]
    word_shift, bit_shift = divmod(shift, WORD_BITS)
    out = np.zeros_like(matrix)
    if bit_shift == 0:
        out[..., : words - word_shift] = matrix[..., word_shift:]
    else:
        out[..., : words - word_shift] = matrix[..., word_shift:] >> PACKED_DTYPE(
            bit_shift
        )
        out[..., : words - word_shift - 1] |= matrix[..., word_shift + 1 :] << (
            PACKED_DTYPE(WORD_BITS - bit_shift)
        )
    return out


def rotate_components(
    words: np.ndarray, dimension: int, shifts: int
) -> np.ndarray:
    """Cyclically rotate packed components: word shifts with cross-word carry.

    Equivalent to ``pack(np.roll(unpack(words), shifts, axis=-1))`` — the
    component at index ``i`` moves to ``(i + shifts) % dimension`` — but the
    rotation never leaves word space: it is the OR of a towards-MSB shift by
    ``shifts`` and a towards-LSB shift by ``dimension - shifts``, with the
    partial final word masked so padding bits stay zero.  Accepts a single
    ``(words,)`` vector or any ``(..., words)`` stack; negative and
    multi-revolution shifts reduce modulo the dimension.
    """
    array = np.asarray(words, dtype=PACKED_DTYPE)
    expected = packed_words(dimension)
    if array.shape[-1] != expected:
        raise ValueError(
            f"expected {expected} words for dimension {dimension}, "
            f"got {array.shape[-1]}"
        )
    shift = int(shifts) % dimension
    if shift == 0:
        return array.copy()
    rotated = _shift_towards_msb(array, shift) | _shift_towards_lsb(
        array, dimension - shift
    )
    return rotated & valid_bits_mask(dimension)


# ------------------------------------------------------------------ streaming
class BitSliceAccumulator:
    """A running word-space bundle: bit-sliced counts plus the vector total.

    The carry-save counterpart of an ``int64`` component-space accumulator:
    packed hypervectors stream in through :meth:`add` (one vectorized
    reduction tree per batch, one ``O(K)`` ripple merge into the running
    planes), accumulators merge with :meth:`merge`, and the result leaves
    word space only at the boundary — :meth:`to_accumulator` for the
    canonical signed exchange format, or :meth:`majority_vote` straight to a
    packed bundle without ever materializing per-component integers.
    """

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        self.words = packed_words(self.dimension)
        self.planes = np.zeros((1, self.words), dtype=PACKED_DTYPE)
        self.total = 0

    def __repr__(self) -> str:
        return (
            f"BitSliceAccumulator(dimension={self.dimension}, "
            f"total={self.total}, planes={self.planes.shape[0]})"
        )

    def add(self, packed_rows: np.ndarray) -> "BitSliceAccumulator":
        """Bundle a batch of packed hypervectors into the running counter."""
        matrix = np.atleast_2d(np.asarray(packed_rows, dtype=PACKED_DTYPE))
        if matrix.shape[-1] != self.words:
            raise ValueError(
                f"expected rows of {self.words} words, got {matrix.shape[-1]}"
            )
        if matrix.shape[0] == 0:
            return self
        self.planes = add_planes(self.planes, bitslice_reduce(matrix))
        self.total += matrix.shape[0]
        return self

    def merge(self, other: "BitSliceAccumulator") -> "BitSliceAccumulator":
        """Absorb another accumulator (carry-save addition of the counters)."""
        if not isinstance(other, BitSliceAccumulator):
            raise TypeError(
                f"cannot merge BitSliceAccumulator with {type(other).__name__}"
            )
        if other.dimension != self.dimension:
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        self.planes = add_planes(self.planes, other.planes)
        self.total += other.total
        return self

    def to_counts(self) -> np.ndarray:
        """Per-component ``int64`` counts of accumulated ``-1`` bits."""
        return bitslice_to_counts(self.planes, self.dimension)

    def to_accumulator(self) -> np.ndarray:
        """The canonical signed component-space sum: ``total - 2 * counts``."""
        return self.total - 2 * self.to_counts()

    @classmethod
    def from_accumulator(
        cls, accumulator: np.ndarray, total: int, dimension: int
    ) -> "BitSliceAccumulator":
        """Rebuild a counter from a signed exchange-format accumulator.

        ``total`` must be the number of vectors summed into ``accumulator``
        (each component's count of ``-1`` bits, ``(total - value) / 2``, must
        come out a whole number in ``[0, total]``).
        """
        accumulator = np.asarray(accumulator, dtype=ACCUMULATOR_DTYPE)
        if accumulator.shape != (dimension,):
            raise ValueError(
                f"expected a ({dimension},) accumulator, got {accumulator.shape}"
            )
        doubled = int(total) - accumulator
        if np.any(doubled & 1) or np.any(doubled < 0) or np.any(
            doubled > 2 * int(total)
        ):
            raise ValueError(
                f"accumulator is not a signed sum of {total} bipolar vectors"
            )
        counter = cls(dimension)
        counter.planes = counts_to_bitslice(doubled >> 1, dimension)
        counter.total = int(total)
        return counter

    def majority_vote(
        self,
        *,
        tie_breaker: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Packed majority vote of the running bundle, entirely in word space."""
        return majority_vote_words(
            self.planes,
            self.total,
            self.dimension,
            tie_breaker=tie_breaker,
            rng=rng,
        )
