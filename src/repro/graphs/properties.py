"""Graph and dataset statistics.

Table I of the paper reports, for each benchmark dataset, the number of
graphs, the number of classes, and the average vertex and edge counts.  These
statistics (plus density, used to choose the Erdős–Rényi edge probability of
the scaling experiment) are computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph


def graph_density(graph: Graph) -> float:
    """Fraction of vertex pairs that are connected, in ``[0, 1]``.

    The paper observes an average density of about 0.05 over the selected
    datasets, which motivates the ``p = 0.05`` of the scaling experiment.
    """
    n = graph.num_vertices
    if n < 2:
        return 0.0
    possible = n * (n - 1) / 2
    return graph.num_edges / possible


@dataclass
class GraphStatistics:
    """Aggregate statistics of a graph dataset (one row of Table I)."""

    name: str
    num_graphs: int
    num_classes: int
    avg_vertices: float
    avg_edges: float
    avg_density: float

    def as_row(self) -> tuple:
        """Row representation used by the Table I benchmark report."""
        return (
            self.name,
            self.num_graphs,
            self.num_classes,
            round(self.avg_vertices, 2),
            round(self.avg_edges, 2),
            round(self.avg_density, 4),
        )


def dataset_statistics(name: str, graphs: Sequence[Graph]) -> GraphStatistics:
    """Compute the Table I statistics for a dataset of labelled graphs."""
    if not graphs:
        raise ValueError("cannot compute statistics of an empty dataset")
    labels = {graph.graph_label for graph in graphs}
    if None in labels:
        labels.discard(None)
    vertex_counts = np.array([graph.num_vertices for graph in graphs], dtype=np.float64)
    edge_counts = np.array([graph.num_edges for graph in graphs], dtype=np.float64)
    densities = np.array([graph_density(graph) for graph in graphs], dtype=np.float64)
    return GraphStatistics(
        name=name,
        num_graphs=len(graphs),
        num_classes=len(labels),
        avg_vertices=float(vertex_counts.mean()),
        avg_edges=float(edge_counts.mean()),
        avg_density=float(densities.mean()),
    )


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Histogram of vertex degrees: degree value to number of vertices."""
    histogram: dict[int, int] = {}
    for degree in graph.degrees():
        degree = int(degree)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_clustering_coefficient(graph: Graph) -> float:
    """Average local clustering coefficient over all vertices.

    Vertices of degree below 2 contribute a coefficient of 0.  Useful for
    checking that the synthetic archetypes (cliquey vs tree-like) really
    differ in structure.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    total = 0.0
    for vertex in range(n):
        neighbors = graph.neighbors(vertex)
        degree = len(neighbors)
        if degree < 2:
            continue
        links = 0
        for i in range(degree):
            for j in range(i + 1, degree):
                if graph.has_edge(neighbors[i], neighbors[j]):
                    links += 1
        total += 2.0 * links / (degree * (degree - 1))
    return total / n
