"""Vertex centrality measures.

GraphHD identifies vertices across graphs through their **PageRank centrality
rank** (Section IV-C of the paper).  The paper fixes the number of PageRank
power iterations at 10 and processes graphs in batches of 256; both knobs are
exposed here.  Degree and eigenvector centralities are provided as alternative
identifiers for the encoding ablation study.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from repro.graphs.graph import Graph, concatenated_edge_arrays

#: Damping factor used by the original PageRank formulation.
DEFAULT_DAMPING = 0.85

#: Number of power iterations fixed by the paper ("the accuracy of GraphHD has
#: then plateaued").
DEFAULT_ITERATIONS = 10


def pagerank(
    graph: Graph,
    *,
    damping: float = DEFAULT_DAMPING,
    iterations: int = DEFAULT_ITERATIONS,
    tolerance: float = 0.0,
) -> np.ndarray:
    """PageRank centrality of every vertex via power iteration.

    Parameters
    ----------
    graph:
        The (undirected) input graph.
    damping:
        Probability of following an edge rather than teleporting; the
        classic value is 0.85.
    iterations:
        Maximum number of power iterations.  The paper fixes this to 10.
    tolerance:
        Optional early-stopping threshold on the L1 change between iterations;
        0 disables early stopping so exactly ``iterations`` steps are run.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_vertices,)`` summing to 1 (for non-empty graphs).
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)

    adjacency = graph.adjacency_matrix()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    # Dangling vertices (degree 0) distribute their mass uniformly.
    inverse_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1.0), 0.0)
    transition = adjacency.multiply(inverse_degrees[:, None]).tocsr()
    dangling = degrees == 0

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    for _ in range(iterations):
        dangling_mass = rank[dangling].sum() / n
        new_rank = teleport + damping * (transition.T @ rank + dangling_mass)
        if tolerance > 0 and np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    total = rank.sum()
    if total > 0:
        rank = rank / total
    return rank


def pagerank_matrix(
    graphs: Sequence[Graph],
    *,
    damping: float = DEFAULT_DAMPING,
    iterations: int = DEFAULT_ITERATIONS,
    batch_size: int = 256,
) -> list[np.ndarray]:
    """PageRank for a batch of graphs.

    The paper mentions a "PageRank batch size" of 256: graphs are processed in
    batches by stacking their adjacency matrices into one block-diagonal
    sparse matrix so a single power iteration advances all graphs in the batch
    at once.  The result is identical to calling :func:`pagerank` per graph
    because the blocks do not interact.

    Returns a list with one centrality array per graph, in input order.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    results: list[np.ndarray] = []
    for start in range(0, len(graphs), batch_size):
        batch = graphs[start : start + batch_size]
        results.extend(_pagerank_batch(batch, damping=damping, iterations=iterations))
    return results


def _block_diagonal_adjacency(
    graphs: Sequence[Graph], offsets: np.ndarray
) -> sparse.csr_matrix:
    """Block-diagonal adjacency of a batch, built straight from edge arrays.

    Equivalent to ``sparse.block_diag([g.adjacency_matrix() for g in graphs])``
    (same canonical CSR matrix, hence bit-identical power iterations) but
    assembled in one vectorized COO pass over the graphs' cached edge arrays
    instead of per-graph sparse-matrix stacking.
    """
    total_vertices = int(offsets[-1])
    edge_counts = np.fromiter(
        (graph.num_edges for graph in graphs), dtype=np.int64, count=len(graphs)
    )
    if edge_counts.sum() == 0:
        return sparse.csr_matrix((total_vertices, total_vertices), dtype=np.float64)
    sources, targets = concatenated_edge_arrays(graphs, offsets, edge_counts)
    off_diagonal = sources != targets
    row_indices = np.concatenate([sources, targets[off_diagonal]])
    col_indices = np.concatenate([targets, sources[off_diagonal]])
    data = np.ones(len(row_indices), dtype=np.float64)
    return sparse.coo_matrix(
        (data, (row_indices, col_indices)),
        shape=(total_vertices, total_vertices),
    ).tocsr()


def _pagerank_batch(
    graphs: Sequence[Graph], *, damping: float, iterations: int
) -> list[np.ndarray]:
    """Run PageRank simultaneously on a batch of graphs via a block-diagonal matrix."""
    non_empty = [graph for graph in graphs if graph.num_vertices > 0]
    if not non_empty:
        return [np.empty(0, dtype=np.float64) for _ in graphs]

    sizes = [graph.num_vertices for graph in graphs]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    adjacency = _block_diagonal_adjacency(graphs, offsets)
    total_vertices = adjacency.shape[0]

    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inverse_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1.0), 0.0)
    # Row-scale the adjacency in place (same values as a sparse ``multiply``
    # with a column vector, without the COO round trip), and keep the
    # transposed operator in CSR so every power iteration is a gather-style
    # matvec.  Per output element the accumulation order is unchanged, so
    # the iteration stays bit-identical to the naive formulation.
    transition = adjacency.copy()
    transition.data *= np.repeat(inverse_degrees, np.diff(adjacency.indptr))
    transition_t = transition.T.tocsr()
    dangling = degrees == 0

    # Per-vertex teleport and initial mass are uniform *within each graph*.
    graph_of_vertex = np.repeat(np.arange(len(graphs)), sizes)
    per_graph_n = np.array(sizes, dtype=np.float64)[graph_of_vertex]
    rank = 1.0 / per_graph_n
    teleport = (1.0 - damping) / per_graph_n

    for _ in range(iterations):
        dangling_contribution = np.zeros(len(graphs), dtype=np.float64)
        np.add.at(dangling_contribution, graph_of_vertex[dangling], rank[dangling])
        dangling_mass = dangling_contribution[graph_of_vertex] / per_graph_n
        rank = teleport + damping * (transition_t @ rank + dangling_mass)

    results = []
    for index, graph in enumerate(graphs):
        start, end = offsets[index], offsets[index + 1]
        block_rank = rank[start:end]
        total = block_rank.sum()
        if total > 0:
            block_rank = block_rank / total
        results.append(np.asarray(block_rank, dtype=np.float64))
    return results


def degree_centrality(graph: Graph) -> np.ndarray:
    """Degree centrality: degree normalized by ``n - 1`` (0 for trivial graphs)."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    degrees = graph.degrees().astype(np.float64)
    if n == 1:
        return np.zeros(1, dtype=np.float64)
    return degrees / (n - 1)


def eigenvector_centrality(
    graph: Graph, *, iterations: int = 100, tolerance: float = 1e-8
) -> np.ndarray:
    """Eigenvector centrality via power iteration on the adjacency matrix.

    Falls back to degree centrality for graphs with no edges (where the
    eigenvector is not defined in a useful way).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if graph.num_edges == 0:
        return np.zeros(n, dtype=np.float64)
    adjacency = graph.adjacency_matrix()
    vector = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    for _ in range(iterations):
        new_vector = adjacency @ vector
        norm = np.linalg.norm(new_vector)
        if norm == 0:
            return np.zeros(n, dtype=np.float64)
        new_vector = new_vector / norm
        if np.abs(new_vector - vector).max() < tolerance:
            vector = new_vector
            break
        vector = new_vector
    return np.abs(vector)


def centrality_ranks_batch(centralities: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Per-graph centrality ranks for a whole batch in one padded argsort.

    Equivalent to ``[centrality_ranks(c) for c in centralities]`` (same
    stable tie-breaking), but sorts all graphs at once: rows are padded with
    ``+inf`` sentinels that sort after every real (negated) centrality, so
    each row's leading entries order exactly as the per-graph sort.
    """
    count = len(centralities)
    if count == 0:
        return []
    sizes = np.fromiter((len(c) for c in centralities), dtype=np.int64, count=count)
    width = int(sizes.max())
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in centralities]
    negated = np.full((count, width), np.inf, dtype=np.float64)
    populated = np.arange(width) < sizes[:, None]
    negated[populated] = -np.concatenate(
        [np.asarray(c, dtype=np.float64) for c in centralities if len(c)]
    )
    order = np.argsort(negated, axis=1, kind="stable")
    ranks = np.empty((count, width), dtype=np.int64)
    np.put_along_axis(ranks, order, np.broadcast_to(np.arange(width), (count, width)), axis=1)
    return [ranks[index, : sizes[index]] for index in range(count)]


def centrality_ranks(centrality: np.ndarray) -> np.ndarray:
    """Rank vertices by centrality: 0 = most central.

    Ties are broken deterministically by vertex index (stable argsort of the
    negated centrality), so that two runs over the same graph always produce
    the same identifier assignment — a requirement for reproducible GraphHD
    encodings.
    """
    centrality = np.asarray(centrality, dtype=np.float64)
    order = np.argsort(-centrality, kind="stable")
    ranks = np.empty(len(centrality), dtype=np.int64)
    ranks[order] = np.arange(len(centrality))
    return ranks
