"""A lightweight undirected graph data structure.

The TUDataset benchmarks consist of many small, sparse graphs (tens to a few
hundred vertices).  A dedicated class keeps the hot paths (edge iteration,
adjacency access, sparse-matrix construction) simple and fast without pulling
in a heavyweight dependency for the inner loops.  Conversion helpers to and
from :mod:`networkx` are provided for interoperability and for reusing its
generators in tests.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np
from scipy import sparse


def concatenated_edge_arrays(
    graphs: Sequence["Graph"],
    vertex_offsets: np.ndarray,
    edge_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Every graph's cached edge arrays, concatenated with vertex offsets.

    ``vertex_offsets`` must hold the cumulative vertex counts (length
    ``len(graphs) + 1``) and ``edge_counts`` each graph's edge count; the
    returned flat ``(sources, targets)`` arrays index vertices of the
    batch-global (block-diagonal) vertex space.  Used by both the batched
    PageRank assembly and the flat-batch encoder.
    """
    edge_offsets = np.repeat(
        np.asarray(vertex_offsets[:-1], dtype=np.int64), edge_counts
    )
    if len(edge_offsets) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    sources = np.concatenate(
        [graph.edge_arrays()[0] for graph in graphs if graph.num_edges]
    )
    targets = np.concatenate(
        [graph.edge_arrays()[1] for graph in graphs if graph.num_edges]
    )
    return sources + edge_offsets, targets + edge_offsets


class Graph:
    """An undirected graph with optional vertex and edge labels.

    Vertices are integers ``0..n-1``.  Self-loops are allowed but not created
    by the dataset generators; parallel edges are collapsed.

    Parameters
    ----------
    num_vertices:
        Number of vertices in the graph.
    edges:
        Iterable of ``(u, v)`` pairs.  Each undirected edge should appear once
        (either orientation); duplicates and reversed duplicates are ignored.
    vertex_labels:
        Optional sequence of hashable vertex labels, one per vertex.
    edge_labels:
        Optional mapping from the canonical edge ``(min(u, v), max(u, v))`` to
        a hashable label.
    graph_label:
        Optional class label of the whole graph (used for classification).
    """

    __slots__ = (
        "num_vertices",
        "_edges",
        "_adjacency",
        "vertex_labels",
        "edge_labels",
        "graph_label",
        "_adjacency_matrix_cache",
        "_edge_arrays_cache",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] = (),
        *,
        vertex_labels: Sequence[Hashable] | None = None,
        edge_labels: Mapping[tuple[int, int], Hashable] | None = None,
        graph_label: Hashable | None = None,
    ) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self.num_vertices = int(num_vertices)
        self._adjacency: list[set[int]] = [set() for _ in range(self.num_vertices)]
        self._edges: set[tuple[int, int]] = set()
        for u, v in edges:
            self.add_edge(int(u), int(v))

        if vertex_labels is not None:
            vertex_labels = list(vertex_labels)
            if len(vertex_labels) != self.num_vertices:
                raise ValueError(
                    f"expected {self.num_vertices} vertex labels, got {len(vertex_labels)}"
                )
        self.vertex_labels: list[Hashable] | None = vertex_labels

        if edge_labels is not None:
            normalized = {}
            for (u, v), label in edge_labels.items():
                normalized[self._canonical_edge(int(u), int(v))] = label
            edge_labels = normalized
        self.edge_labels: dict[tuple[int, int], Hashable] | None = edge_labels

        self.graph_label = graph_label
        self._adjacency_matrix_cache: sparse.csr_matrix | None = None
        self._edge_arrays_cache: tuple[np.ndarray, np.ndarray] | None = None

    # --------------------------------------------------------------- mutation
    @staticmethod
    def _canonical_edge(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``; duplicates are ignored."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge = self._canonical_edge(u, v)
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._adjacency_matrix_cache = None
        self._edge_arrays_cache = None

    # ------------------------------------------------------------------ views
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def edges(self) -> list[tuple[int, int]]:
        """All edges as canonical ``(u, v)`` pairs with ``u <= v``, sorted."""
        return sorted(self._edges)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Edges as cached, read-only int64 ``(sources, targets)`` arrays.

        The arrays list the canonical edges in the same sorted order as
        :meth:`edges` and are rebuilt lazily after :meth:`add_edge`; encoding
        hot paths use them to avoid re-materializing Python tuple lists.
        """
        if self._edge_arrays_cache is None:
            edges = sorted(self._edges)
            count = len(edges)
            sources = np.fromiter((u for u, _ in edges), dtype=np.int64, count=count)
            targets = np.fromiter((v for _, v in edges), dtype=np.int64, count=count)
            sources.flags.writeable = False
            targets.flags.writeable = False
            self._edge_arrays_cache = (sources, targets)
        return self._edge_arrays_cache

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        return self._canonical_edge(u, v) in self._edges

    def neighbors(self, vertex: int) -> list[int]:
        """Sorted neighbours of ``vertex``."""
        self._check_vertex(vertex)
        return sorted(self._adjacency[vertex])

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex`` (self-loops count once)."""
        self._check_vertex(vertex)
        return len(self._adjacency[vertex])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as an integer array."""
        return np.array(
            [len(adjacent) for adjacent in self._adjacency], dtype=np.int64
        )

    def vertices(self) -> range:
        """Iterator over the vertex indices ``0..n-1``."""
        return range(self.num_vertices)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f", label={self.graph_label!r}" if self.graph_label is not None else ""
        return (
            f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges}{label})"
        )

    # -------------------------------------------------------------- matrices
    def adjacency_matrix(self) -> sparse.csr_matrix:
        """Symmetric sparse adjacency matrix in CSR format (cached)."""
        if self._adjacency_matrix_cache is None:
            if not self._edges:
                self._adjacency_matrix_cache = sparse.csr_matrix(
                    (self.num_vertices, self.num_vertices), dtype=np.float64
                )
            else:
                rows = []
                cols = []
                for u, v in self._edges:
                    rows.append(u)
                    cols.append(v)
                    if u != v:
                        rows.append(v)
                        cols.append(u)
                data = np.ones(len(rows), dtype=np.float64)
                self._adjacency_matrix_cache = sparse.csr_matrix(
                    (data, (rows, cols)),
                    shape=(self.num_vertices, self.num_vertices),
                )
        return self._adjacency_matrix_cache

    def vertex_label(self, vertex: int) -> Hashable:
        """Label of ``vertex``; raises if the graph has no vertex labels."""
        self._check_vertex(vertex)
        if self.vertex_labels is None:
            raise ValueError("graph has no vertex labels")
        return self.vertex_labels[vertex]

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex lists, largest-first order not guaranteed."""
        seen = [False] * self.num_vertices
        components: list[list[int]] = []
        for start in range(self.num_vertices):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                vertex = stack.pop()
                component.append(vertex)
                for neighbor in self._adjacency[vertex]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(sorted(component))
        return components

    # ------------------------------------------------------------ conversion
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`, preserving labels as attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self.num_vertices))
        nx_graph.add_edges_from(self._edges)
        if self.vertex_labels is not None:
            for vertex, label in enumerate(self.vertex_labels):
                nx_graph.nodes[vertex]["label"] = label
        if self.edge_labels is not None:
            for edge, label in self.edge_labels.items():
                if nx_graph.has_edge(*edge):
                    nx_graph.edges[edge]["label"] = label
        if self.graph_label is not None:
            nx_graph.graph["label"] = self.graph_label
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`.

        Node identifiers are relabelled to ``0..n-1`` in sorted order when the
        nodes are sortable, otherwise in insertion order.  A node attribute
        called ``label`` becomes the vertex label; an edge attribute ``label``
        becomes the edge label; a graph attribute ``label`` becomes the graph
        label.
        """
        nodes = list(nx_graph.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
        index_of = {node: index for index, node in enumerate(nodes)}
        edges = [(index_of[u], index_of[v]) for u, v in nx_graph.edges()]

        vertex_labels = None
        if all("label" in nx_graph.nodes[node] for node in nodes) and nodes:
            vertex_labels = [nx_graph.nodes[node]["label"] for node in nodes]

        edge_labels = None
        labelled_edges = {
            (index_of[u], index_of[v]): data["label"]
            for u, v, data in nx_graph.edges(data=True)
            if "label" in data
        }
        if labelled_edges and len(labelled_edges) == len(edges):
            edge_labels = labelled_edges

        return cls(
            len(nodes),
            edges,
            vertex_labels=vertex_labels,
            edge_labels=edge_labels,
            graph_label=nx_graph.graph.get("label"),
        )

    def copy(self) -> "Graph":
        """Deep copy of the graph (labels are shallow-copied)."""
        return Graph(
            self.num_vertices,
            self._edges,
            vertex_labels=list(self.vertex_labels) if self.vertex_labels else None,
            edge_labels=dict(self.edge_labels) if self.edge_labels else None,
            graph_label=self.graph_label,
        )

    def relabel(self, vertex_labels: Sequence[Hashable]) -> "Graph":
        """Return a copy of the graph with new vertex labels."""
        copy = self.copy()
        vertex_labels = list(vertex_labels)
        if len(vertex_labels) != self.num_vertices:
            raise ValueError(
                f"expected {self.num_vertices} vertex labels, got {len(vertex_labels)}"
            )
        copy.vertex_labels = vertex_labels
        return copy
