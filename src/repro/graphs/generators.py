"""Random graph generators.

The scaling experiment of the paper (Figure 4) uses Erdős–Rényi random graphs
with edge probability 0.05.  The synthetic stand-ins for the TUDataset
benchmarks additionally need generators that produce *class-dependent
structure*, so planted-partition, ring-of-cliques, Watts–Strogatz and
Barabási–Albert generators are included: mixing them with different
parameters per class yields datasets whose classes are separable from
topology alone, which is exactly the regime GraphHD operates in (it ignores
labels and attributes).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def _as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float,
    *,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """G(n, p) random graph: every vertex pair is an edge with probability ``p``.

    This matches the model used for the paper's scalability experiment
    (Section V-B) with ``p = 0.05``.
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    generator = _as_generator(rng)
    graph = Graph(num_vertices, graph_label=graph_label)
    if num_vertices < 2 or edge_probability == 0.0:
        return graph
    upper = np.triu_indices(num_vertices, k=1)
    mask = generator.random(len(upper[0])) < edge_probability
    for u, v in zip(upper[0][mask], upper[1][mask]):
        graph.add_edge(int(u), int(v))
    return graph


def planted_partition_graph(
    community_sizes: list[int],
    p_within: float,
    p_between: float,
    *,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """Planted-partition (stochastic block model) graph.

    Vertices are split into communities of the given sizes; edges appear with
    probability ``p_within`` inside a community and ``p_between`` across
    communities.  Varying the contrast between the two probabilities gives a
    family of graphs whose community structure is a topological class signal.
    """
    if any(size < 0 for size in community_sizes):
        raise ValueError("community sizes must be non-negative")
    for name, probability in (("p_within", p_within), ("p_between", p_between)):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {probability}")
    generator = _as_generator(rng)
    num_vertices = int(sum(community_sizes))
    community_of = np.repeat(np.arange(len(community_sizes)), community_sizes)
    graph = Graph(num_vertices, graph_label=graph_label)
    if num_vertices < 2:
        return graph
    upper = np.triu_indices(num_vertices, k=1)
    same_community = community_of[upper[0]] == community_of[upper[1]]
    probabilities = np.where(same_community, p_within, p_between)
    mask = generator.random(len(upper[0])) < probabilities
    for u, v in zip(upper[0][mask], upper[1][mask]):
        graph.add_edge(int(u), int(v))
    return graph


def ring_of_cliques_graph(
    num_cliques: int,
    clique_size: int,
    *,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """A ring of fully connected cliques joined by single bridge edges.

    Produces highly clustered graphs reminiscent of protein secondary
    structure contact maps; used as one of the class archetypes for the
    synthetic PROTEINS/ENZYMES-style datasets.
    """
    if num_cliques < 1:
        raise ValueError(f"num_cliques must be positive, got {num_cliques}")
    if clique_size < 1:
        raise ValueError(f"clique_size must be positive, got {clique_size}")
    num_vertices = num_cliques * clique_size
    graph = Graph(num_vertices, graph_label=graph_label)
    for clique in range(num_cliques):
        offset = clique * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(offset + i, offset + j)
        next_offset = ((clique + 1) % num_cliques) * clique_size
        if num_cliques > 1:
            graph.add_edge(offset, next_offset)
    return graph


def watts_strogatz_graph(
    num_vertices: int,
    nearest_neighbors: int,
    rewiring_probability: float,
    *,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """Watts–Strogatz small-world graph.

    Starts from a ring lattice where every vertex connects to its
    ``nearest_neighbors`` closest vertices and rewires each edge with the given
    probability.  Provides a second topological archetype (high clustering,
    short paths) for the synthetic datasets.
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
    if nearest_neighbors < 0 or nearest_neighbors >= max(num_vertices, 1):
        nearest_neighbors = max(min(nearest_neighbors, num_vertices - 1), 0)
    if not 0.0 <= rewiring_probability <= 1.0:
        raise ValueError(
            f"rewiring_probability must be in [0, 1], got {rewiring_probability}"
        )
    generator = _as_generator(rng)
    graph = Graph(num_vertices, graph_label=graph_label)
    if num_vertices < 2 or nearest_neighbors == 0:
        return graph
    half = max(nearest_neighbors // 2, 1)
    for vertex in range(num_vertices):
        for offset in range(1, half + 1):
            neighbor = (vertex + offset) % num_vertices
            if generator.random() < rewiring_probability:
                candidates = [
                    candidate
                    for candidate in range(num_vertices)
                    if candidate != vertex and not graph.has_edge(vertex, candidate)
                ]
                if candidates:
                    neighbor = int(generator.choice(candidates))
            if neighbor != vertex:
                graph.add_edge(vertex, neighbor)
    return graph


def barabasi_albert_graph(
    num_vertices: int,
    attachment_edges: int,
    *,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    New vertices attach to ``attachment_edges`` existing vertices with
    probability proportional to their degree, producing the heavy-tailed
    degree distributions typical of molecule scaffolds and social graphs —
    a third archetype for the synthetic datasets, and the one on which
    PageRank ranks are most informative.
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
    if attachment_edges < 1:
        raise ValueError(f"attachment_edges must be positive, got {attachment_edges}")
    generator = _as_generator(rng)
    graph = Graph(num_vertices, graph_label=graph_label)
    if num_vertices == 0:
        return graph
    seed_size = min(attachment_edges + 1, num_vertices)
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            graph.add_edge(i, j)
    repeated_targets: list[int] = []
    for vertex in range(seed_size):
        repeated_targets.extend([vertex] * max(graph.degree(vertex), 1))
    for vertex in range(seed_size, num_vertices):
        targets: set[int] = set()
        while len(targets) < min(attachment_edges, vertex):
            candidate = int(generator.choice(repeated_targets))
            targets.add(candidate)
        for target in targets:
            graph.add_edge(vertex, target)
            repeated_targets.append(target)
        repeated_targets.extend([vertex] * len(targets))
    return graph


def tree_graph(
    num_vertices: int,
    *,
    max_children: int = 3,
    rng: int | np.random.Generator | None = None,
    graph_label=None,
) -> Graph:
    """Random tree built by attaching each new vertex to a uniformly chosen parent.

    Trees are the sparsest connected archetype and mimic acyclic molecule
    fragments (MUTAG/PTC-style chemistry graphs are close to trees with a few
    rings).
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
    if max_children < 1:
        raise ValueError(f"max_children must be positive, got {max_children}")
    generator = _as_generator(rng)
    graph = Graph(num_vertices, graph_label=graph_label)
    child_count = np.zeros(num_vertices, dtype=np.int64)
    for vertex in range(1, num_vertices):
        candidates = [
            parent for parent in range(vertex) if child_count[parent] < max_children
        ]
        if not candidates:
            candidates = list(range(vertex))
        parent = int(generator.choice(candidates))
        graph.add_edge(parent, vertex)
        child_count[parent] += 1
    return graph
