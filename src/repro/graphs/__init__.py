"""Graph substrate: data structure, generators, centrality, WL refinement.

GraphHD and all the baselines operate on undirected graphs whose vertices may
carry categorical labels.  This subpackage provides:

* :mod:`repro.graphs.graph` — a lightweight :class:`Graph` class optimized for
  the small, sparse graphs of the TUDataset benchmarks.
* :mod:`repro.graphs.generators` — random graph generators (Erdős–Rényi,
  planted partition, motif-decorated graphs) used for the scaling experiment
  (Figure 4) and the synthetic benchmark datasets.
* :mod:`repro.graphs.centrality` — PageRank (the identifier GraphHD uses),
  degree and eigenvector centralities.
* :mod:`repro.graphs.wl_refinement` — Weisfeiler–Leman colour refinement used
  by the 1-WL and WL-OA kernel baselines.
* :mod:`repro.graphs.properties` — dataset/graph statistics (Table I).
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi_graph,
    planted_partition_graph,
    ring_of_cliques_graph,
    watts_strogatz_graph,
    barabasi_albert_graph,
)
from repro.graphs.centrality import (
    degree_centrality,
    eigenvector_centrality,
    pagerank,
    pagerank_matrix,
    centrality_ranks,
)
from repro.graphs.wl_refinement import wl_refinement, wl_subtree_features
from repro.graphs.properties import GraphStatistics, dataset_statistics, graph_density

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "planted_partition_graph",
    "ring_of_cliques_graph",
    "watts_strogatz_graph",
    "barabasi_albert_graph",
    "pagerank",
    "pagerank_matrix",
    "degree_centrality",
    "eigenvector_centrality",
    "centrality_ranks",
    "wl_refinement",
    "wl_subtree_features",
    "GraphStatistics",
    "dataset_statistics",
    "graph_density",
]
