"""Weisfeiler–Leman colour refinement.

The 1-WL and WL-OA kernel baselines (and, per Xu et al., the expressive power
ceiling of the GIN models) are built on iterative colour refinement: each
vertex starts with an initial colour (its label, or a constant when the graph
is unlabelled, as in the paper's label-free setting) and repeatedly receives a
new colour determined by its own colour and the multiset of its neighbours'
colours.  Colours are compressed to small integers with a shared dictionary so
that colours are comparable *across* graphs — a requirement for building
kernel feature maps.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.graphs.graph import Graph


class ColorDictionary:
    """Injective mapping from refinement signatures to compressed integer colours.

    One dictionary must be shared by every graph participating in a kernel
    computation so that identical signatures map to identical colours across
    graphs.
    """

    def __init__(self) -> None:
        self._colors: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._colors)

    def get(self, signature: Hashable) -> int:
        """Colour for ``signature``, allocating a fresh integer on first sight."""
        color = self._colors.get(signature)
        if color is None:
            color = len(self._colors)
            self._colors[signature] = color
        return color


def initial_colors(
    graph: Graph,
    dictionary: ColorDictionary,
    *,
    use_vertex_labels: bool = True,
) -> np.ndarray:
    """Initial colouring of a graph.

    Uses the vertex labels when available and allowed, otherwise every vertex
    starts with the same colour (the unlabelled setting used throughout the
    paper's experiments).
    """
    if use_vertex_labels and graph.vertex_labels is not None:
        return np.array(
            [dictionary.get(("init", label)) for label in graph.vertex_labels],
            dtype=np.int64,
        )
    uniform = dictionary.get(("init", None))
    return np.full(graph.num_vertices, uniform, dtype=np.int64)


def refine_once(
    graph: Graph,
    colors: np.ndarray,
    dictionary: ColorDictionary,
) -> np.ndarray:
    """One round of WL refinement: colour := hash(colour, sorted neighbour colours)."""
    new_colors = np.empty_like(colors)
    for vertex in range(graph.num_vertices):
        neighbor_colors = tuple(
            sorted(int(colors[neighbor]) for neighbor in graph.neighbors(vertex))
        )
        signature = (int(colors[vertex]), neighbor_colors)
        new_colors[vertex] = dictionary.get(signature)
    return new_colors


def wl_refinement(
    graphs: Sequence[Graph],
    iterations: int,
    *,
    use_vertex_labels: bool = True,
) -> list[list[np.ndarray]]:
    """Run ``iterations`` rounds of WL refinement over a collection of graphs.

    Returns, for each graph, the list of colourings ``[h_0, h_1, ..., h_T]``
    (length ``iterations + 1``) using a colour dictionary shared across all
    graphs and rounds so that colours are globally comparable.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    dictionary = ColorDictionary()
    colorings = [
        [initial_colors(graph, dictionary, use_vertex_labels=use_vertex_labels)]
        for graph in graphs
    ]
    for _ in range(iterations):
        for graph, history in zip(graphs, colorings):
            history.append(refine_once(graph, history[-1], dictionary))
    return colorings


def wl_subtree_features(
    graphs: Sequence[Graph],
    iterations: int,
    *,
    use_vertex_labels: bool = True,
) -> list[dict[int, int]]:
    """Subtree-pattern count features used by the 1-WL kernel.

    For each graph, counts how many vertices received each colour over *all*
    refinement rounds (including round 0).  The 1-WL kernel value between two
    graphs is the dot product of these sparse count vectors.
    """
    colorings = wl_refinement(
        graphs, iterations, use_vertex_labels=use_vertex_labels
    )
    features: list[dict[int, int]] = []
    for history in colorings:
        counts: dict[int, int] = {}
        for colors in history:
            for color in colors:
                color = int(color)
                counts[color] = counts.get(color, 0) + 1
        features.append(counts)
    return features


def wl_color_histories(
    graphs: Sequence[Graph],
    iterations: int,
    *,
    use_vertex_labels: bool = True,
) -> list[np.ndarray]:
    """Per-vertex colour histories used by the WL optimal assignment kernel.

    For each graph returns an array of shape ``(num_vertices, iterations + 1)``
    whose row ``v`` is the sequence of colours vertex ``v`` received across the
    refinement rounds.
    """
    colorings = wl_refinement(
        graphs, iterations, use_vertex_labels=use_vertex_labels
    )
    histories = []
    for history in colorings:
        if history[0].size == 0:
            histories.append(np.empty((0, iterations + 1), dtype=np.int64))
        else:
            histories.append(np.stack(history, axis=1))
    return histories
