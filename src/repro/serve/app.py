"""The ``repro serve`` application: HTTP front-end over the batched service.

Composition (the classic app / routers / middleware / workers split):

* :class:`InferenceService` — transport-free facade tying the
  :class:`~repro.serve.model_manager.ModelManager` (load once, atomic hot
  swap), the :class:`~repro.serve.batcher.MicroBatcher` (request
  coalescing) and :class:`~repro.serve.batcher.ServerStats` together.
* :mod:`repro.serve.routers` — pure ``(service, body) -> (status, json)``
  endpoint functions.
* :class:`_RequestHandler` + ``ThreadingHTTPServer`` — one stdlib worker
  thread per connection; workers parse/serialize only and block on the
  batcher, so all NumPy inference work funnels through the single batcher
  thread against the shared read-only model.

``create_server`` wires everything and returns the server without starting
it (tests bind port 0 and drive it from a thread); ``run_server`` is the
blocking CLI entry point.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.serve.batcher import MicroBatcher, ServerStats
from repro.serve.model_manager import ModelHandle, ModelManager
from repro.serve.routers import resolve
from repro.serve.schemas import (
    MAX_GRAPHS_PER_REQUEST,
    PredictRequest,
    ReloadRequest,
    prediction_payload,
)

__all__ = ["InferenceService", "create_server", "run_server"]

#: Largest accepted request body; a JSON graph batch within the per-request
#: graph cap fits comfortably, anything bigger is rejected with 413.
MAX_BODY_BYTES = 32 * 1024 * 1024


class InferenceService:
    """Transport-free serving facade (everything the routes need)."""

    def __init__(
        self,
        model_path: str,
        *,
        max_batch_size: int = 64,
        max_delay: float = 0.002,
        request_timeout: float = 30.0,
        max_graphs_per_request: int = MAX_GRAPHS_PER_REQUEST,
    ) -> None:
        self.manager = ModelManager(model_path)
        self.stats_recorder = ServerStats()
        self.batcher = MicroBatcher(
            self.manager.current,
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            stats=self.stats_recorder,
        )
        self.request_timeout = float(request_timeout)
        self.max_graphs_per_request = int(max_graphs_per_request)

    # ----------------------------------------------------------------- routes
    def predict(self, request: PredictRequest) -> dict:
        """Serve one parsed prediction request through the micro-batcher."""
        result = self.batcher.submit(
            request.graphs, top_k=request.top_k, timeout=self.request_timeout
        )
        return {
            "model_version": result.handle.version,
            "metric": result.handle.model.metric,
            "batch_size": result.batch_size,
            "predictions": [prediction_payload(topk) for topk in result.topk],
        }

    def health(self) -> dict:
        return {"status": "ok", "model": self.manager.current().describe()}

    def stats(self) -> dict:
        snapshot = self.stats_recorder.snapshot(
            queue_depth=self.batcher.queue_depth()
        )
        snapshot["model"] = self.manager.current().describe()
        snapshot["policy"] = {
            "max_batch_size": self.batcher.max_batch_size,
            "max_delay_seconds": self.batcher.max_delay,
            "request_timeout_seconds": self.request_timeout,
            "max_graphs_per_request": self.max_graphs_per_request,
        }
        return snapshot

    def reload(self, request: ReloadRequest) -> ModelHandle:
        return self.manager.reload(
            path=request.path, expected_version=request.expected_version
        )

    def close(self) -> None:
        self.batcher.close()


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP adapter; all logic lives in the routers."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        status, target = resolve(method, path)
        if not callable(target):
            self._respond(status, target)
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._respond(
                413,
                {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"},
            )
            return
        body = self.rfile.read(length) if length else b""
        status, payload = target(self.server.service, body)
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class _InferenceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`InferenceService`."""

    daemon_threads = True
    # Connection backlog under bursty load generators.
    request_queue_size = 128

    def __init__(self, address, service: InferenceService, verbose: bool = False):
        super().__init__(address, _RequestHandler)
        self.service = service
        self.verbose = verbose

    def server_close(self) -> None:
        super().server_close()
        self.service.close()


def create_server(
    model_path: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch_size: int = 64,
    max_delay: float = 0.002,
    request_timeout: float = 30.0,
    max_graphs_per_request: int = MAX_GRAPHS_PER_REQUEST,
    verbose: bool = False,
) -> _InferenceHTTPServer:
    """Build the HTTP server (not yet serving) around a saved model.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``), which is how the tests and the load
    generator run hermetically.
    """
    service = InferenceService(
        model_path,
        max_batch_size=max_batch_size,
        max_delay=max_delay,
        request_timeout=request_timeout,
        max_graphs_per_request=max_graphs_per_request,
    )
    return _InferenceHTTPServer((host, port), service, verbose=verbose)


def run_server(server: _InferenceHTTPServer) -> None:
    """Serve until interrupted, then shut down cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def start_in_thread(server: _InferenceHTTPServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, load generator)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return thread
