"""Batched async inference service for trained GraphHD models.

``repro serve`` loads a saved :class:`~repro.core.model.GraphHDClassifier`
once, answers graph-classification requests over HTTP, coalesces concurrent
requests into micro-batches through the flat-batch ``encode_many`` +
``decision_scores`` hot path, and supports atomic version-checked model hot
swap.  See the README "Serving" section for the wire schema and runbook.
"""

from repro.serve.app import InferenceService, create_server, run_server, start_in_thread
from repro.serve.batcher import (
    BatchResult,
    MicroBatcher,
    ServerStats,
    ServiceClosedError,
)
from repro.serve.client import ServingClient, ServingError, graph_payload
from repro.serve.model_manager import ModelHandle, ModelManager, StaleVersionError
from repro.serve.schemas import (
    PredictRequest,
    ReloadRequest,
    SchemaError,
    graph_from_payload,
    parse_predict_request,
    parse_reload_request,
)

__all__ = [
    "BatchResult",
    "InferenceService",
    "MicroBatcher",
    "ModelHandle",
    "ModelManager",
    "PredictRequest",
    "ReloadRequest",
    "SchemaError",
    "ServerStats",
    "ServiceClosedError",
    "ServingClient",
    "ServingError",
    "StaleVersionError",
    "create_server",
    "graph_from_payload",
    "graph_payload",
    "parse_predict_request",
    "parse_reload_request",
    "run_server",
    "start_in_thread",
]
