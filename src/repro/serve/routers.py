"""Route table of the inference service.

Each route is a pure function ``(service, body) -> (status, payload)`` over
the :class:`~repro.serve.app.InferenceService`; the HTTP layer only parses
the request line and serializes the JSON.  Keeping the routes transport-free
makes every endpoint unit-testable without sockets.

========  ==========  ====================================================
method    path        purpose
========  ==========  ====================================================
POST      /predict    micro-batched graph classification (top-k labels)
GET       /healthz    liveness + live model identity
GET       /stats      batch sizes, queue depth, latency percentiles
POST      /reload     version-checked atomic model hot swap
========  ==========  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hdc.training_state import MergeError
from repro.serve.batcher import ServiceClosedError
from repro.serve.model_manager import StaleVersionError
from repro.serve.schemas import SchemaError, parse_predict_request, parse_reload_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import InferenceService

__all__ = ["ROUTES", "resolve"]

Handler = Callable[["InferenceService", bytes], tuple[int, dict]]


def handle_predict(service: "InferenceService", body: bytes) -> tuple[int, dict]:
    try:
        request = parse_predict_request(
            body,
            max_graphs=service.max_graphs_per_request,
            num_classes=service.manager.current().num_classes,
        )
    except SchemaError as error:
        return 400, {"error": str(error)}
    try:
        response = service.predict(request)
    except ServiceClosedError as error:
        return 503, {"error": str(error)}
    except TimeoutError as error:
        return 504, {"error": str(error)}
    return 200, response


def handle_healthz(service: "InferenceService", body: bytes) -> tuple[int, dict]:
    return 200, service.health()


def handle_stats(service: "InferenceService", body: bytes) -> tuple[int, dict]:
    return 200, service.stats()


def handle_reload(service: "InferenceService", body: bytes) -> tuple[int, dict]:
    try:
        request = parse_reload_request(body)
    except SchemaError as error:
        return 400, {"error": str(error)}
    try:
        handle = service.reload(request)
    except StaleVersionError as error:
        return 409, {"error": str(error)}
    except (FileNotFoundError, ValueError, MergeError) as error:
        return 400, {"error": f"model reload failed: {error}"}
    return 200, {"reloaded": True, "model": handle.describe()}


ROUTES: dict[tuple[str, str], Handler] = {
    ("POST", "/predict"): handle_predict,
    ("GET", "/healthz"): handle_healthz,
    ("GET", "/stats"): handle_stats,
    ("POST", "/reload"): handle_reload,
}


def resolve(method: str, path: str) -> tuple[int, Handler | dict]:
    """Route a request line to its handler.

    Returns ``(200, handler)`` on a match, ``(405, payload)`` when the path
    exists under a different method (naming the allowed ones), and
    ``(404, payload)`` otherwise.
    """
    handler = ROUTES.get((method, path))
    if handler is not None:
        return 200, handler
    allowed = sorted(m for (m, p) in ROUTES if p == path)
    if allowed:
        return 405, {
            "error": f"method {method} not allowed for {path}",
            "allowed": allowed,
        }
    return 404, {
        "error": f"unknown path {path}",
        "paths": sorted({p for (_, p) in ROUTES}),
    }
