"""Model lifecycle of the inference service: load once, swap atomically.

The service loads a saved :class:`~repro.core.model.GraphHDClassifier` once
at startup and serves every request from that object.  A *handle* wraps the
model together with a monotone version number; hot swap builds a complete
replacement handle off to the side (loading and warming the new model while
traffic keeps flowing) and then publishes it with a single reference
assignment.  Readers grab the current handle once per micro-batch, so an
in-flight batch always finishes on the model it started with — no request
ever observes a half-swapped model.

The class-vector reference matrix is warmed (and thereby frozen read-only,
see :meth:`AssociativeMemory._reference_matrix_native`) before a handle is
published, so concurrent HTTP worker threads share one immutable matrix and
the first request after startup or swap pays no normalization cost.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.core.model import GraphHDClassifier

__all__ = ["ModelHandle", "ModelManager", "StaleVersionError"]


class StaleVersionError(RuntimeError):
    """A version-checked reload lost the compare-and-swap race (HTTP 409)."""


@dataclass(frozen=True)
class ModelHandle:
    """An immutable (model, version) pair served to request batches.

    The handle, not the manager, travels with a micro-batch: everything a
    batch needs (encoder, class vectors, metric) hangs off one object whose
    identity never changes after publication.
    """

    model: GraphHDClassifier
    version: int
    path: str
    loaded_at: float = field(default_factory=time.time)

    @property
    def num_classes(self) -> int:
        return len(self.model.classes)

    def describe(self) -> dict:
        """JSON-ready summary used by /healthz and /stats."""
        from repro.serve.schemas import json_safe_label

        return {
            "version": self.version,
            "path": self.path,
            "loaded_at": self.loaded_at,
            "backend": self.model.config.backend,
            "metric": self.model.metric,
            "dimension": self.model.config.dimension,
            "classes": [json_safe_label(label) for label in self.model.classes],
        }


def _load_and_warm(path: str) -> GraphHDClassifier:
    """Load a saved model and pre-compute its serving-time invariants."""
    model = GraphHDClassifier.load(path)
    if not model.classes:
        raise ValueError(
            f"model archive {path} holds no trained classes; "
            "serve a fitted model"
        )
    # Warming materializes the memoized read-only reference matrix so the
    # first served batch doesn't pay class-vector normalization, and so the
    # shared matrix is frozen before any worker thread can see it.
    model.classifier.memory._reference_matrix_native()
    return model


class ModelManager:
    """Owns the live :class:`ModelHandle` and performs atomic hot swaps."""

    def __init__(self, path: str) -> None:
        self._swap_lock = threading.Lock()
        self._handle = ModelHandle(
            model=_load_and_warm(path), version=1, path=os.fspath(path)
        )

    def current(self) -> ModelHandle:
        """The live handle.

        A bare attribute read — atomic under the GIL — so the request path
        never takes a lock; batches pin the handle they start with.
        """
        return self._handle

    def reload(
        self, path: str | None = None, expected_version: int | None = None
    ) -> ModelHandle:
        """Load a model and publish it as the new live handle.

        ``path`` defaults to the currently served archive (re-reading an
        updated file in place).  When ``expected_version`` is given the swap
        is compare-and-swap: it only publishes if the live version still
        matches, otherwise :class:`StaleVersionError` — so two concurrent
        operators cannot silently overwrite each other's swap.  The new
        model is fully loaded and warmed *before* the pointer moves, and the
        old handle stays valid for batches already holding it.
        """
        with self._swap_lock:
            live = self._handle
            if expected_version is not None and live.version != expected_version:
                raise StaleVersionError(
                    f"live model is version {live.version}, reload expected "
                    f"{expected_version}; re-read /healthz and retry"
                )
            target = os.fspath(path) if path is not None else live.path
            model = _load_and_warm(target)
            handle = ModelHandle(model=model, version=live.version + 1, path=target)
            self._handle = handle
            return handle
