"""Request/response schemas of the inference service.

The wire format is plain JSON.  A prediction request carries a batch of
graphs and an optional ``top_k``::

    {
      "graphs": [
        {"num_vertices": 4, "edges": [[0, 1], [1, 2], [2, 3]]},
        ...
      ],
      "top_k": 3
    }

and the response echoes one prediction per graph, each with the winning
label and the ``top_k`` ranked ``(label, score)`` pairs::

    {
      "model_version": 1,
      "metric": "cosine",
      "batch_size": 8,
      "predictions": [
        {"label": 1, "top_k": [{"label": 1, "score": 0.61},
                               {"label": 0, "score": 0.40}]},
        ...
      ]
    }

``batch_size`` reports how many graphs the serving micro-batch that answered
this request actually coalesced (across concurrent requests), so clients and
load generators can observe batching without scraping ``/stats``.

Every parse error raises :class:`SchemaError` with a message naming the
offending field; the HTTP layer maps it to a 400 response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "SchemaError",
    "PredictRequest",
    "ReloadRequest",
    "graph_from_payload",
    "json_safe_label",
    "parse_predict_request",
    "parse_reload_request",
    "prediction_payload",
]

#: Hard cap on graphs per request, so one malformed client cannot queue an
#: unbounded amount of encoding work.
MAX_GRAPHS_PER_REQUEST = 1024

#: Default number of ranked (label, score) pairs returned per graph.
DEFAULT_TOP_K = 1


class SchemaError(ValueError):
    """A request payload does not match the serving schema (HTTP 400)."""


@dataclass
class PredictRequest:
    """A parsed, validated prediction request."""

    graphs: list[Graph]
    top_k: int = DEFAULT_TOP_K


@dataclass
class ReloadRequest:
    """A parsed, validated model-reload request.

    ``expected_version`` makes the hot swap compare-and-swap: the reload is
    refused when the live model version moved past it (another operator beat
    this request to the swap).  ``None`` reloads unconditionally.
    """

    path: str | None = None
    expected_version: int | None = None


def _parse_json_object(body: bytes | str, what: str) -> dict:
    try:
        payload = json.loads(body or b"{}")
    except json.JSONDecodeError as error:
        raise SchemaError(f"{what} is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def graph_from_payload(payload, index: int = 0) -> Graph:
    """Build a :class:`Graph` from one JSON graph object.

    Requires ``num_vertices`` (non-negative int) and accepts ``edges`` (a
    list of ``[u, v]`` vertex-index pairs; duplicates collapse, order is
    irrelevant) plus an optional ``vertex_labels`` list.  Out-of-range
    endpoints raise :class:`SchemaError` naming the graph and the edge.
    """
    where = f"graphs[{index}]"
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{where} must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - {"num_vertices", "edges", "vertex_labels"}
    if unknown:
        raise SchemaError(
            f"{where} has unknown fields {sorted(unknown)}; expected "
            "num_vertices, edges, vertex_labels"
        )
    num_vertices = payload.get("num_vertices")
    if not isinstance(num_vertices, int) or isinstance(num_vertices, bool):
        raise SchemaError(f"{where}.num_vertices must be an integer")
    if num_vertices < 0:
        raise SchemaError(
            f"{where}.num_vertices must be non-negative, got {num_vertices}"
        )
    edges = payload.get("edges", [])
    if not isinstance(edges, list):
        raise SchemaError(f"{where}.edges must be a list of [u, v] pairs")
    pairs: list[tuple[int, int]] = []
    for position, edge in enumerate(edges):
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(isinstance(end, int) and not isinstance(end, bool) for end in edge)
        ):
            raise SchemaError(
                f"{where}.edges[{position}] must be a [u, v] pair of "
                f"integers, got {edge!r}"
            )
        u, v = int(edge[0]), int(edge[1])
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise SchemaError(
                f"{where}.edges[{position}] = [{u}, {v}] is out of range for "
                f"{num_vertices} vertices"
            )
        pairs.append((u, v))
    vertex_labels = payload.get("vertex_labels")
    if vertex_labels is not None:
        if not isinstance(vertex_labels, list):
            raise SchemaError(f"{where}.vertex_labels must be a list")
        if len(vertex_labels) != num_vertices:
            raise SchemaError(
                f"{where}.vertex_labels has {len(vertex_labels)} entries for "
                f"{num_vertices} vertices"
            )
    return Graph(num_vertices, pairs, vertex_labels=vertex_labels)


def parse_predict_request(
    body: bytes | str,
    *,
    max_graphs: int = MAX_GRAPHS_PER_REQUEST,
    num_classes: int | None = None,
) -> PredictRequest:
    """Parse and validate a ``POST /predict`` body."""
    payload = _parse_json_object(body, "predict request body")
    unknown = set(payload) - {"graphs", "top_k"}
    if unknown:
        raise SchemaError(
            f"predict request has unknown fields {sorted(unknown)}; "
            "expected graphs, top_k"
        )
    graphs_payload = payload.get("graphs")
    if not isinstance(graphs_payload, list) or not graphs_payload:
        raise SchemaError("predict request must carry a non-empty 'graphs' list")
    if len(graphs_payload) > max_graphs:
        raise SchemaError(
            f"predict request carries {len(graphs_payload)} graphs; the "
            f"server accepts at most {max_graphs} per request"
        )
    top_k = payload.get("top_k", DEFAULT_TOP_K)
    if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
        raise SchemaError(f"top_k must be a positive integer, got {top_k!r}")
    if num_classes is not None:
        top_k = min(top_k, num_classes)
    graphs = [
        graph_from_payload(graph, index)
        for index, graph in enumerate(graphs_payload)
    ]
    return PredictRequest(graphs=graphs, top_k=top_k)


def parse_reload_request(body: bytes | str) -> ReloadRequest:
    """Parse and validate a ``POST /reload`` body."""
    payload = _parse_json_object(body, "reload request body")
    unknown = set(payload) - {"path", "expected_version"}
    if unknown:
        raise SchemaError(
            f"reload request has unknown fields {sorted(unknown)}; "
            "expected path, expected_version"
        )
    path = payload.get("path")
    if path is not None and not isinstance(path, str):
        raise SchemaError(f"reload path must be a string, got {path!r}")
    expected = payload.get("expected_version")
    if expected is not None and (
        not isinstance(expected, int) or isinstance(expected, bool)
    ):
        raise SchemaError(
            f"expected_version must be an integer, got {expected!r}"
        )
    return ReloadRequest(path=path, expected_version=expected)


def json_safe_label(label):
    """A class label coerced into a JSON-serializable value.

    Numpy scalars become native Python scalars, tuples become lists; other
    non-JSON types fall back to ``str`` so any hashable label survives the
    trip (the textual form is stable for the benchmark label universe).
    """
    if isinstance(label, np.generic):
        label = label.item()
    if isinstance(label, (list, tuple)):
        return [json_safe_label(item) for item in label]
    if label is None or isinstance(label, (bool, int, float, str)):
        return label
    return str(label)


def prediction_payload(
    topk: list[tuple[object, float]]
) -> dict:
    """One response entry from a ranked (label, score) list (winner first)."""
    return {
        "label": json_safe_label(topk[0][0]),
        "top_k": [
            {"label": json_safe_label(label), "score": float(score)}
            for label, score in topk
        ],
    }
