"""Micro-batching engine of the inference service.

Concurrent HTTP requests land in one queue; a single batcher thread drains
it into *micro-batches* under a ``max_batch_size`` / ``max_delay`` policy:
the first waiting request opens a batch and the batcher keeps admitting
whole requests until the batch is full or the delay budget expires.  Each
batch then runs the flat-batch hot path once — ``encode_many`` over every
graph in the batch, one ``decision_scores`` similarity pass against the
shared read-only class-vector matrix — and distributes the per-request
slices back to the waiting request threads.

Inference work therefore serializes through one thread (which is where the
NumPy kernels want to be anyway) while wall-clock cost is amortized across
every request the batch coalesced; under concurrent load the observed batch
sizes in :class:`ServerStats` exceed 1, and under idle load a lone request
pays at most ``max_delay`` of queueing latency.

The batcher snapshots the :class:`~repro.serve.model_manager.ModelHandle`
once per batch, so a hot swap never splits a batch across model versions.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Callable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.hdc.classifier import topk_from_scores
from repro.serve.model_manager import ModelHandle

__all__ = ["BatchResult", "MicroBatcher", "ServerStats", "ServiceClosedError"]

#: Ring-buffer length for latency percentiles; old samples age out so /stats
#: reflects recent traffic, not the whole process lifetime.
LATENCY_WINDOW = 4096


class ServiceClosedError(RuntimeError):
    """The batcher is shutting down and no longer accepts requests."""


class ServerStats:
    """Thread-safe serving counters and latency percentiles for ``/stats``."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._started_at = time.time()
        self.requests_total = 0
        self.graphs_total = 0
        self.batches_total = 0
        self.errors_total = 0
        self.encode_seconds_total = 0.0
        self.similarity_seconds_total = 0.0
        self._batch_sizes: Counter[int] = Counter()
        self._max_batch_size = 0
        self._max_queue_depth = 0
        self._request_latencies: deque[float] = deque(maxlen=window)
        self._batch_latencies: deque[float] = deque(maxlen=window)

    # ------------------------------------------------------------- recording
    def record_enqueue(self, queue_depth: int) -> None:
        with self._lock:
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_batch(
        self,
        *,
        num_requests: int,
        num_graphs: int,
        encode_seconds: float,
        similarity_seconds: float,
        batch_seconds: float,
    ) -> None:
        with self._lock:
            self.batches_total += 1
            self.requests_total += num_requests
            self.graphs_total += num_graphs
            self.encode_seconds_total += encode_seconds
            self.similarity_seconds_total += similarity_seconds
            self._batch_sizes[num_graphs] += 1
            self._max_batch_size = max(self._max_batch_size, num_graphs)
            self._batch_latencies.append(batch_seconds)

    def record_request_latency(self, seconds: float) -> None:
        with self._lock:
            self._request_latencies.append(seconds)

    def record_error(self, count: int = 1) -> None:
        with self._lock:
            self.errors_total += count

    # ------------------------------------------------------------- reporting
    @staticmethod
    def _percentiles(samples: Sequence[float]) -> dict:
        if not samples:
            return {"count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None}
        array = np.asarray(samples, dtype=np.float64) * 1000.0
        return {
            "count": int(array.size),
            "p50_ms": float(np.percentile(array, 50)),
            "p99_ms": float(np.percentile(array, 99)),
            "mean_ms": float(array.mean()),
        }

    def snapshot(self, queue_depth: int = 0) -> dict:
        """A JSON-ready view of the counters (the ``/stats`` body)."""
        with self._lock:
            batches = self.batches_total
            return {
                "uptime_seconds": time.time() - self._started_at,
                "requests_total": self.requests_total,
                "graphs_total": self.graphs_total,
                "batches_total": batches,
                "errors_total": self.errors_total,
                "queue_depth": queue_depth,
                "max_queue_depth": self._max_queue_depth,
                "batch_sizes": {
                    "mean": (self.graphs_total / batches) if batches else None,
                    "max": self._max_batch_size or None,
                    "histogram": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                },
                "request_latency": self._percentiles(self._request_latencies),
                "batch_latency": self._percentiles(self._batch_latencies),
                "encode_seconds_total": self.encode_seconds_total,
                "similarity_seconds_total": self.similarity_seconds_total,
            }


class BatchResult:
    """What :meth:`MicroBatcher.submit` hands back to a request thread."""

    __slots__ = ("handle", "topk", "batch_size")

    def __init__(
        self, handle: ModelHandle, topk: list[list[tuple]], batch_size: int
    ) -> None:
        self.handle = handle
        self.topk = topk
        self.batch_size = batch_size


class _Pending:
    """One enqueued request waiting for its micro-batch to execute."""

    __slots__ = (
        "graphs",
        "top_k",
        "event",
        "enqueued_at",
        "result",
        "error",
    )

    def __init__(self, graphs: list[Graph], top_k: int) -> None:
        self.graphs = graphs
        self.top_k = top_k
        self.event = threading.Event()
        self.enqueued_at = time.perf_counter()
        self.result: BatchResult | None = None
        self.error: Exception | None = None


class MicroBatcher:
    """Coalesces concurrent prediction requests into flat-batch executions.

    Parameters
    ----------
    model_provider:
        Zero-argument callable returning the live
        :class:`~repro.serve.model_manager.ModelHandle`; called exactly once
        per batch, so every request in a batch is answered by one model
        version.
    max_batch_size:
        Graph-count budget of one micro-batch.  Whole requests are admitted
        until the next one would overflow the budget; a single request
        larger than the budget still runs as one (oversized) batch.
    max_delay:
        Seconds the batch opener waits for co-travellers before executing.
        The batching latency tax an idle-server request can pay is bounded
        by this.
    """

    def __init__(
        self,
        model_provider: Callable[[], ModelHandle],
        *,
        max_batch_size: int = 64,
        max_delay: float = 0.002,
        stats: ServerStats | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self._model_provider = model_provider
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.stats = stats if stats is not None else ServerStats()
        self._queue: deque[_Pending] = deque()
        self._not_empty = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ---------------------------------------------------------------- client
    def queue_depth(self) -> int:
        with self._not_empty:
            return len(self._queue)

    def submit(
        self, graphs: Sequence[Graph], top_k: int = 1, timeout: float = 30.0
    ) -> BatchResult:
        """Enqueue one request and block until its batch executed.

        Returns the :class:`BatchResult` carrying the model handle that
        served the batch, the per-graph ranked ``(label, score)`` lists, and
        the size of the coalesced batch.  Raises the batch's failure as-is,
        ``TimeoutError`` if the batch did not finish in ``timeout`` seconds,
        and :class:`ServiceClosedError` after :meth:`close`.
        """
        pending = _Pending(list(graphs), int(top_k))
        if not pending.graphs:
            raise ValueError("cannot submit an empty graph batch")
        with self._not_empty:
            if self._closed:
                raise ServiceClosedError("the inference service is shutting down")
            self._queue.append(pending)
            self.stats.record_enqueue(len(self._queue))
            self._not_empty.notify()
        if not pending.event.wait(timeout):
            # Leave the pending entry for the batcher (it may still complete);
            # the client just stops waiting.
            self.stats.record_error()
            raise TimeoutError(
                f"prediction batch did not complete within {timeout} seconds"
            )
        if pending.error is not None:
            raise pending.error
        self.stats.record_request_latency(
            time.perf_counter() - pending.enqueued_at
        )
        assert pending.result is not None
        return pending.result

    def close(self, timeout: float = 5.0) -> None:
        """Stop the batcher thread; queued requests fail with closure."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        self._thread.join(timeout)

    # ---------------------------------------------------------------- worker
    def _collect_batch(self) -> list[_Pending] | None:
        """Block for the first request, then coalesce until full or expired."""
        with self._not_empty:
            while not self._queue and not self._closed:
                self._not_empty.wait()
            if not self._queue:
                return None  # closed and drained
            first = self._queue.popleft()
            batch = [first]
            total = len(first.graphs)
            deadline = time.perf_counter() + self.max_delay
            while total < self.max_batch_size:
                if not self._queue:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or self._closed:
                        break
                    self._not_empty.wait(remaining)
                    continue
                candidate = self._queue[0]
                if total + len(candidate.graphs) > self.max_batch_size:
                    break
                self._queue.popleft()
                batch.append(candidate)
                total += len(candidate.graphs)
        return batch

    def _execute(self, batch: list[_Pending]) -> None:
        batch_start = time.perf_counter()
        all_graphs = [graph for pending in batch for graph in pending.graphs]
        try:
            handle = self._model_provider()
            model = handle.model
            encode_start = time.perf_counter()
            encodings = model.encoder.encode_many(all_graphs)
            encode_end = time.perf_counter()
            scores, labels = model.classifier.decision_scores(encodings)
            similarity_seconds = time.perf_counter() - encode_end
        except Exception as error:  # noqa: BLE001 - failures propagate per request
            self.stats.record_error(len(batch))
            for pending in batch:
                pending.error = error
                pending.event.set()
            return
        offset = 0
        for pending in batch:
            rows = scores[offset : offset + len(pending.graphs)]
            pending.result = BatchResult(
                handle=handle,
                topk=topk_from_scores(rows, labels, pending.top_k),
                batch_size=len(all_graphs),
            )
            offset += len(pending.graphs)
            pending.event.set()
        self.stats.record_batch(
            num_requests=len(batch),
            num_graphs=len(all_graphs),
            encode_seconds=encode_end - encode_start,
            similarity_seconds=similarity_seconds,
            batch_seconds=time.perf_counter() - batch_start,
        )

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute(batch)
