"""Minimal stdlib HTTP client for the inference service.

Used by the test suite, the load-generator benchmark and the CI smoke — all
environments where only the standard library is guaranteed — and small
enough to double as reference code for real clients.  One
:class:`ServingClient` wraps one persistent ``http.client`` connection, so a
load-generator thread reuses its socket across requests (keep-alive).
"""

from __future__ import annotations

import http.client
import json
from typing import Sequence

from repro.graphs.graph import Graph

__all__ = ["ServingClient", "ServingError", "graph_payload"]


class ServingError(RuntimeError):
    """A non-2xx response from the inference service."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


def graph_payload(graph: Graph) -> dict:
    """The JSON wire form of a :class:`Graph` (the /predict schema)."""
    payload: dict = {
        "num_vertices": graph.num_vertices,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }
    if graph.vertex_labels is not None:
        payload["vertex_labels"] = list(graph.vertex_labels)
    return payload


class ServingClient:
    """A persistent-connection JSON client for one server address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- transport
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            data = response.read()
        except (http.client.HTTPException, OSError):
            # Drop the broken keep-alive socket; the caller may retry.
            self.close()
            raise
        parsed = json.loads(data) if data else {}
        if not 200 <= response.status < 300:
            raise ServingError(response.status, parsed)
        return parsed

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- endpoints
    def predict(
        self, graphs: Sequence[Graph | dict], top_k: int | None = None
    ) -> dict:
        """POST /predict for a batch of graphs (or pre-built payload dicts)."""
        payload: dict = {
            "graphs": [
                graph_payload(graph) if isinstance(graph, Graph) else graph
                for graph in graphs
            ]
        }
        if top_k is not None:
            payload["top_k"] = int(top_k)
        return self._request("POST", "/predict", payload)

    def predict_labels(
        self, graphs: Sequence[Graph | dict]
    ) -> list:
        """The winning label per graph (the offline ``predict`` shape)."""
        response = self.predict(graphs)
        return [entry["label"] for entry in response["predictions"]]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def reload(
        self, path: str | None = None, expected_version: int | None = None
    ) -> dict:
        payload: dict = {}
        if path is not None:
            payload["path"] = path
        if expected_version is not None:
            payload["expected_version"] = expected_version
        return self._request("POST", "/reload", payload)
