"""Multi-method, multi-dataset comparison (the three panels of Figure 3).

The comparison runner evaluates each requested method on each requested
dataset with the repeated K-fold protocol and collects accuracy, per-fold
training time and per-graph inference time — exactly the three quantities
plotted in Figure 3 of the paper.  Speed-up summaries (the headline
"14.6x faster training, 2.0x faster inference" claim) are derived from the
same results.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import numpy as np

from repro.datasets.dataset import GraphDataset
from repro.eval.cross_validation import CrossValidationResult, cross_validate
from repro.eval.encoding_store import EncodingStore
from repro.eval.methods import METHOD_NAMES, make_method
from repro.eval.parallel import TaskPolicy, resolve_n_jobs, run_tasks


def _slug(name: str) -> str:
    """Filesystem-safe token for per-cell checkpoint subdirectories."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "cell"


@dataclass
class ComparisonResult:
    """Results of the full comparison, indexed by (dataset, method)."""

    results: dict[tuple[str, str], CrossValidationResult] = field(default_factory=dict)

    def datasets(self) -> list[str]:
        """Dataset names present in the results, in insertion order."""
        seen: list[str] = []
        for dataset, _ in self.results:
            if dataset not in seen:
                seen.append(dataset)
        return seen

    def methods(self) -> list[str]:
        """Method names present in the results, in insertion order."""
        seen: list[str] = []
        for _, method in self.results:
            if method not in seen:
                seen.append(method)
        return seen

    def get(self, dataset: str, method: str) -> CrossValidationResult:
        """Result of one (dataset, method) pair."""
        return self.results[(dataset, method)]

    # ------------------------------------------------------- figure 3 panels
    def accuracy_table(self) -> dict[str, dict[str, float]]:
        """Figure 3 (left): dataset -> method -> mean accuracy."""
        return self._panel("accuracy_mean")

    def training_time_table(self) -> dict[str, dict[str, float]]:
        """Figure 3 (middle): dataset -> method -> training seconds per fold."""
        return self._panel("train_seconds")

    def inference_time_table(self) -> dict[str, dict[str, float]]:
        """Figure 3 (right): dataset -> method -> inference seconds per graph."""
        return self._panel("inference_seconds_per_graph")

    def _panel(self, key: str) -> dict[str, dict[str, float]]:
        panel: dict[str, dict[str, float]] = {}
        for (dataset, method), result in self.results.items():
            panel.setdefault(dataset, {})[method] = result.summary()[key]
        return panel

    # ------------------------------------------------------------- speed-ups
    def speedup_over(self, reference_methods: Sequence[str], *, metric: str = "train") -> dict[str, float]:
        """GraphHD speed-up versus the given methods, averaged over datasets.

        ``metric`` is ``"train"`` (training time per fold) or ``"inference"``
        (inference time per graph).  The returned dict maps each reference
        method to the geometric-mean ratio ``reference_time / graphhd_time``.
        """
        if metric == "train":
            table = self.training_time_table()
        elif metric == "inference":
            table = self.inference_time_table()
        else:
            raise ValueError(f"metric must be 'train' or 'inference', got {metric!r}")
        speedups: dict[str, float] = {}
        for reference in reference_methods:
            ratios = []
            for dataset, row in table.items():
                if "GraphHD" not in row or reference not in row:
                    continue
                graphhd_time = row["GraphHD"]
                if graphhd_time <= 0:
                    continue
                ratios.append(row[reference] / graphhd_time)
            if ratios:
                speedups[reference] = float(np.exp(np.mean(np.log(ratios))))
        return speedups


def compare_methods(
    datasets: Sequence[GraphDataset],
    *,
    methods: Sequence[str] = METHOD_NAMES,
    fast: bool = False,
    n_splits: int = 10,
    repetitions: int = 3,
    max_folds_per_repetition: int | None = None,
    seed: int | None = 0,
    dimension: int = 10_000,
    backend: str = "dense",
    encoding_cache: bool = True,
    n_jobs: int | None = None,
    encoding_store: EncodingStore | None = None,
    mmap_mode: str | None = None,
    task_policy: TaskPolicy | None = None,
) -> ComparisonResult:
    """Run the Figure 3 comparison over the given datasets and methods.

    ``backend`` selects the GraphHD compute backend (``"dense"`` or
    ``"packed"``); the kernel and GNN baselines are unaffected.
    ``encoding_cache`` lets cache-capable methods (GraphHD) encode each
    dataset once instead of once per fold; disable it to reproduce the
    paper's timing protocol, where training time includes encoding.

    ``n_jobs`` fans the (dataset, method) grid out over worker processes
    (each cell runs its folds serially inside its worker); a single-cell grid
    forwards the workers to the folds instead.  Accuracies and fold
    assignments are bit-identical to the serial run for every worker count;
    the measured per-fold timings are wall-clock and reflect workers running
    concurrently.  ``encoding_store`` is forwarded
    to every cell so cache-capable methods share one persistently cached
    encoding per (config, dataset) across cells, processes and runs;
    ``mmap_mode="r"`` additionally serves store hits as read-only
    memory-mapped views shared through the page cache.

    ``task_policy`` applies fault tolerance at whichever level is parallel:
    a many-cell grid supervises the cells (each cell's checkpoint journal
    lives under ``cells/<dataset>-<method>`` inside the policy's checkpoint
    directory), a single-cell grid forwards the policy to its folds.
    """
    comparison = ComparisonResult()
    pairs = [(dataset, method_name) for dataset in datasets for method_name in methods]
    jobs = resolve_n_jobs(n_jobs)
    # One level of parallelism only (workers cannot nest pools): many cells
    # -> parallelize the grid; a single cell -> give its folds the workers.
    grid_jobs, fold_jobs = (jobs, 1) if len(pairs) > 1 else (1, jobs)

    def run_cell(dataset: GraphDataset, method_name: str) -> CrossValidationResult:
        # Each cell journals (and retries) its own folds; when the grid
        # itself is the parallel level, the grid journal below supervises
        # whole cells instead and the folds run with the default policy.
        cell_policy = None
        if task_policy is not None and grid_jobs == 1:
            cell_policy = task_policy.scoped(
                "cells", _slug(f"{dataset.name}-{method_name}")
            )
        return cross_validate(
            lambda: make_method(
                method_name, fast=fast, seed=seed, dimension=dimension, backend=backend
            ),
            dataset,
            method_name=method_name,
            n_splits=n_splits,
            repetitions=repetitions,
            max_folds_per_repetition=max_folds_per_repetition,
            seed=seed,
            encoding_cache=encoding_cache,
            n_jobs=fold_jobs,
            encoding_store=encoding_store,
            mmap_mode=mmap_mode,
            task_policy=cell_policy,
        )

    grid_policy = task_policy.scoped("grid") if task_policy is not None else None
    if grid_policy is not None and grid_jobs == 1:
        # The folds carry the policy; don't double-journal whole cells.
        grid_policy = None
    results = run_tasks(
        [partial(run_cell, dataset, method_name) for dataset, method_name in pairs],
        n_jobs=grid_jobs,
        policy=grid_policy,
        checkpoint_tag=(
            "compare_methods:"
            + ",".join(f"{d.name}/{m}" for d, m in pairs)
            + f":{n_splits}x{repetitions}:max={max_folds_per_repetition}"
            f":seed={seed}:dim={dimension}:backend={backend}:fast={fast}"
        ),
    )
    for (dataset, method_name), result in zip(pairs, results):
        comparison.results[(dataset.name, method_name)] = result
    return comparison
