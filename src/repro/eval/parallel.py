"""Supervised, deterministic process-pool execution for the evaluation harness.

The evaluation protocol is embarrassingly parallel at four levels — folds x
repetitions inside :func:`repro.eval.cross_validation.cross_validate`, the
(dataset, method) grid in :func:`repro.eval.comparison.compare_methods`, the
sweep points of the scaling and robustness experiments, and the training
shards of :func:`repro.eval.sharded.fit_sharded`.  This module provides the
one execution primitive they all share: :func:`run_tasks` fans a list of
zero-argument callables out over a pool of supervised worker processes and
returns their results **in task order**.

Determinism is structural, not incidental:

* Every task must be a *pure function* of state captured before the pool is
  created — the callers precompute fold splits, per-task seeds and cached
  encodings up front, so a task's result cannot depend on which worker runs
  it, in which order tasks are scheduled, or — new with the supervised
  runtime — on *how many times* it had to be attempted.
* Results are collected by task index, so the output order equals the serial
  iteration order regardless of completion order.

Together these make ``n_jobs > 1`` produce **bit-identical** results to the
serial path (``n_jobs=1`` short-circuits to an in-process loop), and they
extend the same guarantee to every recovery path: a retried, re-executed, or
journal-resumed run returns exactly what a clean serial run would have.  The
``tests/eval/test_parallel_equivalence.py`` and
``tests/eval/test_fault_tolerance.py`` suites lock both down.  The one
exception, by nature: wall-clock *timing* fields inside results are measured
where the task runs, so under ``n_jobs > 1`` they reflect workers contending
for cores — use ``n_jobs=1`` when the timings themselves are the experiment
(the paper's Figure 3/4 protocols).

Supervision
-----------

A bare ``Pool.map`` dies wholesale on the first worker crash, OOM kill, or
transient exception, discarding every completed result.  Here each worker is
a directly-managed forked process with its own inbox/outbox queue pair, and a
supervisor loop in the parent waits on the outbox pipes *and* the process
sentinels, so it distinguishes the three failure modes a long evaluation
actually meets (all governed by a :class:`TaskPolicy`):

* **Transient exceptions** — the attempt is retried (in the pool) up to
  ``retries`` more times with exponential backoff.
* **Task timeout** — an attempt exceeding ``timeout`` seconds has its worker
  killed, the pool slot is rebuilt, and the task is retried like any other
  failed attempt.  Timeouts require a worker process to kill, so they are
  enforced only under process parallelism (serial attempts run inline).
* **Worker death** — a worker that vanishes mid-task (``SIGKILL``/OOM) is
  detected via its sentinel; the pool slot is rebuilt and the orphaned task
  is re-executed *in-process* in the parent, where code is known to run even
  if every forked worker is doomed.

A task that exhausts ``retries + 1`` attempts is **quarantined**, not allowed
to poison the run: the remaining tasks still execute, and the caller gets a
:class:`TaskQuarantineError` carrying structured :class:`TaskFailure` reports
(task index, per-attempt kind and traceback) — or, via
:func:`supervise_tasks`, a :class:`TaskRunReport` with the partial results.
With ``TaskPolicy.checkpoint_dir`` set, every completed result also spills to
a crash-safe :class:`~repro.eval.checkpoint.TaskJournal` (atomic temp-file +
``os.replace``, same discipline as the encoding store) so an interrupted run
resumes by replaying the journal and executing only the remainder.

One documented hole remains: a worker killed at the precise instant it is
writing a result into its outbox pipe can leave a torn message that blocks
that queue.  Each worker owns a private outbox, so at worst the supervisor
mistakes the torn result for a hang (recovered by ``timeout``) — the fault
injectors in :mod:`repro.eval.faults` kill inside the task body, as the OOM
killer almost always does (the process is at peak memory while computing,
not while writing a few result bytes).

Workers are started with the ``fork`` start method and read their tasks from
a module-level registry inherited at fork time.  This means closures (method
factories, fold index arrays) and large cached encoding matrices are shared
with the workers copy-on-write instead of being pickled per task; only the
small per-task result objects travel back over the pipe.  The registry is
keyed by a per-run token, so concurrent ``run_tasks`` calls from different
threads (or a retry pool rebuilt mid-run) never clobber each other's handoff.
On platforms without ``fork`` (or inside a daemonic worker, where nesting
pools is not allowed) execution degrades to the serial loop — same results,
no parallelism — after a ``RuntimeWarning`` routed through the standard
``warnings`` machinery (deduplicated by the warnings registry, so tests and
callers re-arm it with ``warnings.simplefilter("always")`` or
``catch_warnings()`` rather than poking a module global).

Copy-on-write sharing is strongest when the parent loads its encodings from
the persistent store with ``mmap_mode="r"``
(:meth:`repro.eval.encoding_store.EncodingStore.load`): the fold tasks then
inherit a read-only memory *mapping* rather than resident pages, so every
worker reads the one page-cached copy of the encoding matrix straight from
disk cache — no per-worker materialization at all, and the matrix never
counts against any worker's private RSS.  Tasks must treat such encodings
as immutable (they are mapped read-only); a task that needs a writable
matrix takes its own copy with ``np.array(encodings)``.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence, TypeVar

from repro.eval.checkpoint import TaskJournal

T = TypeVar("T")

#: Environment variable consulted when ``n_jobs`` is not given explicitly.
ENV_N_JOBS = "REPRO_N_JOBS"

#: Per-run task lists read by forked workers, keyed by run token.  A dict —
#: not a single slot — so nested or concurrent runs never clobber each
#: other's handoff: each run claims a fresh token, publishes its tasks under
#: it *before* forking, and removes the entry once its pool is gone.
_TASK_GROUPS: dict[int, Sequence[Callable[[], object]]] = {}
_TOKEN_COUNTER = itertools.count()
_TOKEN_LOCK = threading.Lock()

#: Supervisor poll cadence (seconds) when no deadline or backoff is nearer.
_SUPERVISOR_TICK = 0.2

#: Seconds a worker gets to exit voluntarily at shutdown before SIGKILL.
_SHUTDOWN_GRACE = 1.0


def usable_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Effective worker count for the evaluation harness.

    ``None`` falls back to the ``REPRO_N_JOBS`` environment variable, and to
    ``1`` (serial) when that is unset or empty.  Zero or negative values —
    from either source — mean "all usable cores" (respecting CPU affinity
    and cgroup limits, not the host's raw core count).
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_N_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_N_JOBS} must be an integer, got {raw!r}"
            ) from None
    if n_jobs <= 0:
        return usable_cores()
    return int(n_jobs)


def parallelism_available() -> bool:
    """Whether a worker pool can actually be started here.

    False inside a daemonic pool worker (pools cannot nest) and on platforms
    without the ``fork`` start method, which the task-inheritance scheme
    relies on; callers then run their tasks serially with identical results.
    """
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Policy and failure reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskPolicy:
    """Fault-tolerance policy for one :func:`run_tasks` run.

    Attributes
    ----------
    timeout:
        Seconds one *attempt* may run inside a worker before the worker is
        killed and the attempt counts as failed.  ``None`` (default) means
        unlimited.  Enforced only under process parallelism — a serial
        attempt runs in the supervisor's own process, which has nothing it
        can safely kill.
    retries:
        Additional attempts after the first; a task failing all
        ``retries + 1`` attempts is quarantined into a :class:`TaskFailure`.
    backoff:
        Base of the exponential retry delay: the wait before retry *k* is
        ``backoff * 2**(k - 1)`` seconds.
    checkpoint_dir:
        Directory for the crash-safe result journal
        (:class:`~repro.eval.checkpoint.TaskJournal`); ``None`` disables
        checkpointing.  An existing journal for the same run shape is
        replayed — only unfinished tasks execute.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05
    checkpoint_dir: str | os.PathLike | None = None

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")

    @property
    def attempts_allowed(self) -> int:
        return int(self.retries) + 1

    def retry_delay(self, failed_attempts: int) -> float:
        """Backoff before the next attempt, given attempts failed so far."""
        return float(self.backoff) * (2.0 ** max(0, failed_attempts - 1))

    def scoped(self, *parts: str) -> "TaskPolicy":
        """A copy whose checkpoint journal lives in a subdirectory.

        Lets a harness that fans out *nested* runs (the comparison grid runs
        one ``cross_validate`` per cell) give every level its own journal.
        A no-op when checkpointing is disabled.
        """
        if self.checkpoint_dir is None or not parts:
            return self
        return replace(
            self,
            checkpoint_dir=os.path.join(os.fspath(self.checkpoint_dir), *parts),
        )


@dataclass(frozen=True)
class TaskAttempt:
    """One failed attempt at a task.

    ``kind`` is ``"exception"`` (the task raised), ``"timeout"`` (the attempt
    exceeded :attr:`TaskPolicy.timeout` and its worker was killed), or
    ``"worker-death"`` (the worker process vanished mid-task — SIGKILL/OOM).
    ``detail`` carries the worker-side traceback, or a description of how the
    worker died.
    """

    number: int
    kind: str
    detail: str


@dataclass
class TaskFailure:
    """A task that exhausted its retry budget, with its full attempt history."""

    index: int
    attempts: list[TaskAttempt] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"task {self.index} quarantined after "
            f"{len(self.attempts)} attempt(s):"
        ]
        for attempt in self.attempts:
            lines.append(f"  attempt {attempt.number} [{attempt.kind}]:")
            lines.extend(
                "    " + line for line in attempt.detail.rstrip().splitlines()
            )
        return "\n".join(lines)


class TaskQuarantineError(RuntimeError):
    """Raised by :func:`run_tasks` when tasks exhausted their retry budget.

    Carries the structured reports in :attr:`failures`; the message embeds
    every attempt's traceback, so matching on the original exception text
    keeps working.  Subclasses ``RuntimeError`` for exactly that kind of
    backward compatibility.
    """

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = list(failures)
        header = (
            f"{len(self.failures)} task(s) quarantined after exhausting "
            "their retry budget"
        )
        super().__init__(
            "\n".join([header] + [failure.summary() for failure in self.failures])
        )


@dataclass
class TaskRunReport:
    """Outcome of :func:`supervise_tasks`.

    ``results`` is in task order with ``None`` at quarantined indices;
    ``replayed`` counts results restored from the checkpoint journal instead
    of executed; ``n_jobs`` is the worker count the run effectively used.
    """

    results: list
    failures: list[TaskFailure] = field(default_factory=list)
    replayed: int = 0
    n_jobs: int = 1

    @property
    def failed_indices(self) -> list[int]:
        return [failure.index for failure in self.failures]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(token: int, inbox, outbox) -> None:
    """Worker loop: run task indices from the inbox until told to stop."""
    tasks = _TASK_GROUPS[token]
    while True:
        index = inbox.get()
        if index is None:
            return
        try:
            result = tasks[index]()
        except Exception:
            outbox.put((index, False, traceback.format_exc()))
        else:
            try:
                outbox.put((index, True, result))
            except Exception:
                # e.g. an unpicklable result: SimpleQueue serializes before
                # writing, so nothing partial reached the pipe.
                outbox.put((index, False, traceback.format_exc()))


class _WorkerHandle:
    """One supervised worker: a forked process plus its inbox/outbox pair."""

    def __init__(self, context, token: int):
        self.inbox = context.SimpleQueue()
        self.outbox = context.SimpleQueue()
        self.process = context.Process(
            target=_worker_main,
            args=(token, self.inbox, self.outbox),
            daemon=True,  # a nested run_tasks inside a task degrades serially
        )
        self.process.start()
        self.task_index: int | None = None
        self.deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.task_index is not None

    def dispatch(self, index: int, timeout: float | None) -> None:
        self.task_index = index
        self.deadline = None if timeout is None else time.monotonic() + timeout
        self.inbox.put(index)

    def finish(self) -> None:
        self.task_index = None
        self.deadline = None

    def timed_out(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self._close_queues()

    def shutdown(self) -> None:
        if self.process.is_alive():
            try:
                self.inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead pipe
                pass
        self.process.join(timeout=_SHUTDOWN_GRACE)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        self._close_queues()

    def _close_queues(self) -> None:
        for queue in (self.inbox, self.outbox):
            try:
                queue.close()
            except (OSError, AttributeError):  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


def run_tasks(
    tasks: Iterable[Callable[[], T]],
    n_jobs: int | None = None,
    *,
    policy: TaskPolicy | None = None,
    checkpoint_tag: str | None = None,
) -> list[T]:
    """Run zero-argument callables, returning their results in task order.

    Tasks must be pure functions of pre-pool state (see the module
    docstring); under that contract the returned list is bit-identical for
    every worker count *and* every recovery path (retry, worker rebuild,
    journal resume).  ``policy`` configures timeout/retries/checkpointing —
    the default policy fails fast with no retries, like the task itself
    raising.  Tasks that exhaust their retry budget raise a
    :class:`TaskQuarantineError` (a ``RuntimeError`` whose message embeds the
    original tracebacks) after the rest of the run has completed; use
    :func:`supervise_tasks` to get the partial results instead.
    """
    report = supervise_tasks(
        tasks, n_jobs, policy=policy, checkpoint_tag=checkpoint_tag
    )
    if report.failures:
        raise TaskQuarantineError(report.failures)
    return report.results


def supervise_tasks(
    tasks: Iterable[Callable[[], T]],
    n_jobs: int | None = None,
    *,
    policy: TaskPolicy | None = None,
    checkpoint_tag: str | None = None,
) -> TaskRunReport:
    """Like :func:`run_tasks`, but report failures instead of raising.

    Completed results are kept (and journaled, when checkpointing) even when
    other tasks are quarantined, so a fixed-up rerun against the same journal
    only executes what is missing.  ``checkpoint_tag`` fingerprints the run
    shape inside the journal; resuming with a different tag is rejected.
    """
    tasks = list(tasks)
    if policy is None:
        policy = TaskPolicy()
    jobs = min(resolve_n_jobs(n_jobs), len(tasks))

    journal = None
    results: dict[int, object] = {}
    if policy.checkpoint_dir is not None:
        journal = TaskJournal(
            policy.checkpoint_dir, num_tasks=len(tasks), tag=checkpoint_tag
        )
        results = journal.completed()
    replayed = len(results)
    pending = [index for index in range(len(tasks)) if index not in results]

    if jobs > 1 and pending and not parallelism_available():
        if not multiprocessing.current_process().daemon:
            # An explicit parallel request cannot be honored on this platform
            # (no fork start method); say so instead of silently timing a
            # "parallel" run on one core.  Deduplication is the warnings
            # registry's job — reset it with warnings.simplefilter("always")
            # or catch_warnings() to re-arm.
            warnings.warn(
                f"n_jobs={jobs} requested but process-pool parallelism is "
                "unavailable on this platform (no 'fork' start method); "
                "running serially with identical results",
                RuntimeWarning,
                stacklevel=3,
            )
        jobs = 1

    if jobs <= 1 or not pending:
        failures = _run_serial(tasks, pending, policy, results, journal)
    else:
        failures = _run_supervised(tasks, pending, jobs, policy, results, journal)

    return TaskRunReport(
        results=[results.get(index) for index in range(len(tasks))],
        failures=failures,
        replayed=replayed,
        n_jobs=max(jobs, 1),
    )


def _record(results, journal, index, value) -> None:
    results[index] = value
    if journal is not None:
        journal.record(index, value)


def _run_serial(tasks, pending, policy, results, journal) -> list[TaskFailure]:
    """In-process execution with the same retry/quarantine semantics.

    Per-task timeouts are not enforced here: there is no worker process to
    kill, and interrupting the supervisor's own thread mid-task cannot be
    done safely (documented on :class:`TaskPolicy`).
    """
    failures: list[TaskFailure] = []
    for index in pending:
        attempts: list[TaskAttempt] = []
        while True:
            try:
                value = tasks[index]()
            except Exception:
                attempts.append(
                    TaskAttempt(
                        number=len(attempts) + 1,
                        kind="exception",
                        detail=traceback.format_exc(),
                    )
                )
                if len(attempts) >= policy.attempts_allowed:
                    failures.append(TaskFailure(index=index, attempts=attempts))
                    break
                delay = policy.retry_delay(len(attempts))
                if delay:
                    time.sleep(delay)
            else:
                _record(results, journal, index, value)
                break
    return failures


def _run_supervised(
    tasks, pending, jobs, policy, results, journal
) -> list[TaskFailure]:
    """The supervised pool: dispatch, watch, retry, rebuild, quarantine."""
    context = multiprocessing.get_context("fork")
    with _TOKEN_LOCK:
        token = next(_TOKEN_COUNTER)
    # Publish before forking: every worker resolves its tasks from this entry.
    _TASK_GROUPS[token] = tasks

    attempts: dict[int, list[TaskAttempt]] = {index: [] for index in pending}
    failures: dict[int, TaskFailure] = {}
    ready: deque[int] = deque(pending)
    backoff_heap: list[tuple[float, int]] = []  # (ready_time, task index)
    workers: list[_WorkerHandle] = []
    unfinished = len(pending)

    def record_attempt(index: int, kind: str, detail: str) -> bool:
        """Log one failed attempt; True while the task has retries left."""
        log = attempts[index]
        log.append(TaskAttempt(number=len(log) + 1, kind=kind, detail=detail))
        if len(log) >= policy.attempts_allowed:
            failures[index] = TaskFailure(index=index, attempts=log)
            return False
        return True

    def schedule_retry(index: int) -> None:
        delay = policy.retry_delay(len(attempts[index]))
        heapq.heappush(backoff_heap, (time.monotonic() + delay, index))

    try:
        workers.extend(_WorkerHandle(context, token) for _ in range(jobs))
        while unfinished:
            now = time.monotonic()
            while backoff_heap and backoff_heap[0][0] <= now:
                ready.append(heapq.heappop(backoff_heap)[1])

            for slot, worker in enumerate(workers):
                if not ready:
                    break
                if worker.busy:
                    continue
                if not worker.process.is_alive():
                    # An idle worker died (collateral of a host-wide signal):
                    # rebuild the slot before handing it work.
                    worker.kill()
                    worker = workers[slot] = _WorkerHandle(context, token)
                worker.dispatch(ready.popleft(), policy.timeout)

            busy = [worker for worker in workers if worker.busy]
            if not busy:
                if ready:
                    continue
                if backoff_heap:
                    time.sleep(
                        max(
                            0.0,
                            min(
                                _SUPERVISOR_TICK,
                                backoff_heap[0][0] - time.monotonic(),
                            ),
                        )
                    )
                    continue
                break  # defensive: every unfinished task must be terminal

            _wait_for_event(busy, backoff_heap)

            for slot, worker in enumerate(workers):
                index = worker.task_index
                if index is None:
                    continue
                if not worker.outbox.empty():
                    got, ok, payload = worker.outbox.get()
                    worker.finish()
                    if ok:
                        _record(results, journal, got, payload)
                        unfinished -= 1
                    elif record_attempt(got, "exception", payload):
                        schedule_retry(got)
                    else:
                        unfinished -= 1
                elif not worker.process.is_alive():
                    exitcode = worker.process.exitcode
                    worker.kill()
                    workers[slot] = _WorkerHandle(context, token)
                    detail = (
                        "worker process died while running the task "
                        f"(exitcode {exitcode}, e.g. SIGKILL/OOM); "
                        "pool slot rebuilt"
                    )
                    if record_attempt(index, "worker-death", detail):
                        # Re-execute the orphan in-process: a vanished worker
                        # may mean any forked worker is doomed, so the
                        # recovery attempt runs where code is known to run.
                        try:
                            value = tasks[index]()
                        except Exception:
                            if record_attempt(
                                index, "exception", traceback.format_exc()
                            ):
                                schedule_retry(index)
                            else:
                                unfinished -= 1
                        else:
                            _record(results, journal, index, value)
                            unfinished -= 1
                    else:
                        unfinished -= 1
                elif worker.timed_out(time.monotonic()):
                    worker.kill()
                    workers[slot] = _WorkerHandle(context, token)
                    detail = (
                        f"attempt exceeded the {policy.timeout:g}s task "
                        "timeout; worker killed and pool slot rebuilt"
                    )
                    if record_attempt(index, "timeout", detail):
                        schedule_retry(index)
                    else:
                        unfinished -= 1
    finally:
        for worker in workers:
            worker.shutdown()
        _TASK_GROUPS.pop(token, None)

    return [failures[index] for index in sorted(failures)]


def _wait_for_event(busy, backoff_heap) -> None:
    """Block until a result arrives, a worker dies, or a deadline nears."""
    now = time.monotonic()
    timeout = _SUPERVISOR_TICK
    deadlines = [worker.deadline for worker in busy if worker.deadline is not None]
    if deadlines:
        timeout = min(timeout, max(0.0, min(deadlines) - now))
    if backoff_heap:
        timeout = min(timeout, max(0.0, backoff_heap[0][0] - now))
    waitables = []
    for worker in busy:
        reader = getattr(worker.outbox, "_reader", None)
        if reader is not None:
            waitables.append(reader)
        waitables.append(worker.process.sentinel)
    if not waitables:  # pragma: no cover - SimpleQueue always has a reader
        time.sleep(timeout)
        return
    try:
        multiprocessing.connection.wait(waitables, timeout=timeout)
    except OSError:  # pragma: no cover - raced a dying worker's fds
        time.sleep(min(timeout, _SUPERVISOR_TICK))
