"""Deterministic process-pool execution for the evaluation harness.

The evaluation protocol is embarrassingly parallel at four levels — folds x
repetitions inside :func:`repro.eval.cross_validation.cross_validate`, the
(dataset, method) grid in :func:`repro.eval.comparison.compare_methods`, the
sweep points of the scaling and robustness experiments, and the training
shards of :func:`repro.eval.sharded.fit_sharded`.  This module
provides the one execution primitive they all share: :func:`run_tasks` fans a
list of zero-argument callables out over a pool of worker processes and
returns their results **in task order**.

Determinism is structural, not incidental:

* Every task must be a *pure function* of state captured before the pool is
  created — the callers precompute fold splits, per-task seeds and cached
  encodings up front, so a task's result cannot depend on which worker runs
  it or in which order tasks are scheduled.
* Results are collected by task index (``Pool.map`` over ``range(len(tasks))``),
  so the output order equals the serial iteration order.

Together these make ``n_jobs > 1`` produce **bit-identical** results to the
serial path (``n_jobs=1`` short-circuits to a plain loop), which the
``tests/eval/test_parallel_equivalence.py`` suite locks down.  The one
exception, by nature: wall-clock *timing* fields inside results are measured
where the task runs, so under ``n_jobs > 1`` they reflect workers contending
for cores — use ``n_jobs=1`` when the timings themselves are the experiment
(the paper's Figure 3/4 protocols).

Workers are started with the ``fork`` start method and read their tasks from
a module-level list inherited at fork time.  This means closures (method
factories, fold index arrays) and large cached encoding matrices are shared
with the workers copy-on-write instead of being pickled per task; only the
small per-fold result objects travel back over the pipe.  On platforms
without ``fork`` (or inside a daemonic worker, where nesting pools is not
allowed) execution silently degrades to the serial loop — same results,
no parallelism.

Copy-on-write sharing is strongest when the parent loads its encodings from
the persistent store with ``mmap_mode="r"``
(:meth:`repro.eval.encoding_store.EncodingStore.load`): the fold tasks then
inherit a read-only memory *mapping* rather than resident pages, so every
worker reads the one page-cached copy of the encoding matrix straight from
disk cache — no per-worker materialization at all, and the matrix never
counts against any worker's private RSS.  Tasks must treat such encodings
as immutable (they are mapped read-only); a task that needs a writable
matrix takes its own copy with ``np.array(encodings)``.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

#: Environment variable consulted when ``n_jobs`` is not given explicitly.
ENV_N_JOBS = "REPRO_N_JOBS"

#: Task list read by forked workers; set only for the lifetime of one pool.
_TASKS: Sequence[Callable[[], object]] | None = None

#: Whether the serial-degradation warning has been emitted already.
_WARNED_SERIAL_FALLBACK = False


def usable_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Effective worker count for the evaluation harness.

    ``None`` falls back to the ``REPRO_N_JOBS`` environment variable, and to
    ``1`` (serial) when that is unset or empty.  Zero or negative values —
    from either source — mean "all usable cores" (respecting CPU affinity
    and cgroup limits, not the host's raw core count).
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_N_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_N_JOBS} must be an integer, got {raw!r}"
            ) from None
    if n_jobs <= 0:
        return usable_cores()
    return int(n_jobs)


def parallelism_available() -> bool:
    """Whether a worker pool can actually be started here.

    False inside a daemonic pool worker (pools cannot nest) and on platforms
    without the ``fork`` start method, which the task-inheritance scheme
    relies on; callers then run their tasks serially with identical results.
    """
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def _run_task(index: int):
    return _TASKS[index]()


def run_tasks(
    tasks: Iterable[Callable[[], T]], n_jobs: int | None = None
) -> list[T]:
    """Run zero-argument callables, returning their results in task order.

    Tasks must be pure functions of pre-pool state (see the module docstring);
    under that contract the returned list is bit-identical for every worker
    count.  An exception raised by any task propagates to the caller.
    """
    tasks = list(tasks)
    jobs = min(resolve_n_jobs(n_jobs), len(tasks))
    if jobs <= 1 or not parallelism_available():
        global _WARNED_SERIAL_FALLBACK
        if (
            jobs > 1
            and not multiprocessing.current_process().daemon
            and not _WARNED_SERIAL_FALLBACK
        ):
            # An explicit parallel request cannot be honored on this platform
            # (no fork start method); say so once instead of silently timing
            # a "parallel" run on one core.
            _WARNED_SERIAL_FALLBACK = True
            warnings.warn(
                f"n_jobs={jobs} requested but process-pool parallelism is "
                "unavailable on this platform (no 'fork' start method); "
                "running serially with identical results",
                RuntimeWarning,
                stacklevel=2,
            )
        return [task() for task in tasks]

    global _TASKS
    previous = _TASKS
    _TASKS = tasks
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=jobs) as pool:
            return pool.map(_run_task, range(len(tasks)))
    finally:
        _TASKS = previous
