"""Crash-safe on-disk journal of completed task results.

The checkpoint half of the supervised runtime (:mod:`repro.eval.parallel`):
when a :class:`~repro.eval.parallel.TaskPolicy` carries a ``checkpoint_dir``,
every completed task result is pickled into a :class:`TaskJournal` with the
same atomic temp-file + ``os.replace`` discipline as the encoding store, so a
run interrupted by a crash, a poison-task quarantine, or Ctrl-C resumes by
replaying the journal and executing only the remainder.

Journal layout::

    journal.json        run metadata (version, num_tasks, tag)
    task-00000003.pkl   pickled result of task index 3

``journal.json`` guards against resuming the wrong run: opening an existing
journal with a different ``num_tasks`` or ``tag`` raises
:class:`JournalMismatchError` instead of silently serving results from an
incompatible task list.  The harnesses derive their tags from everything that
shapes the task list (dataset, method, fold plan, base seed), so a journal can
only ever be replayed into the run that wrote it.

Because tasks are pure functions of pre-run state (the contract of
:func:`repro.eval.parallel.run_tasks`), a replayed result is bit-identical to
re-executing its task — resumed runs therefore produce exactly the output of
an uninterrupted one.  A torn or corrupt result file (e.g. the process died
mid-``os.replace`` *sequence* on a non-atomic filesystem, or the file was
truncated afterwards) is detected at replay time, removed, and its task simply
runs again.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile

__all__ = ["JOURNAL_VERSION", "JournalMismatchError", "TaskJournal"]

#: Bumped when the journal layout changes incompatibly.
JOURNAL_VERSION = 1

#: Name of the run-metadata file inside the journal directory.
META_NAME = "journal.json"

#: Prefix of in-flight temp files (same convention as the encoding store).
TEMP_PREFIX = ".tmp-"

_RESULT_PATTERN = re.compile(r"^task-(\d+)\.pkl$")


class JournalMismatchError(ValueError):
    """An existing journal was written by a run with a different shape."""


class TaskJournal:
    """Append-only journal of completed task results for one run.

    Parameters
    ----------
    path:
        Directory holding the journal (created if missing).
    num_tasks:
        Length of the run's task list; an existing journal with a different
        value is rejected.
    tag:
        Optional run-shape fingerprint (the harnesses encode dataset, method,
        fold plan and base seed); an existing journal with a different tag is
        rejected.
    """

    def __init__(
        self, path: str | os.PathLike, *, num_tasks: int, tag: str | None = None
    ):
        if num_tasks < 0:
            raise ValueError(f"num_tasks must be non-negative, got {num_tasks}")
        self.path = os.fspath(path)
        self.num_tasks = int(num_tasks)
        self.tag = tag
        os.makedirs(self.path, exist_ok=True)
        self._load_or_create_meta()

    # -- metadata -----------------------------------------------------------

    def _load_or_create_meta(self) -> None:
        meta_path = os.path.join(self.path, META_NAME)
        if os.path.exists(meta_path):
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            for key, ours in (("num_tasks", self.num_tasks), ("tag", self.tag)):
                theirs = meta.get(key)
                if theirs != ours:
                    raise JournalMismatchError(
                        f"checkpoint journal at {self.path!r} belongs to a "
                        f"different run: its {key} is {theirs!r} but this "
                        f"run's is {ours!r}; point the checkpoint at a fresh "
                        "directory (or clear() the journal) to start over"
                    )
            return
        payload = {
            "journal_version": JOURNAL_VERSION,
            "num_tasks": self.num_tasks,
            "tag": self.tag,
        }
        data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._write_atomic(meta_path, data + b"\n")

    # -- results ------------------------------------------------------------

    def result_path(self, index: int) -> str:
        return os.path.join(self.path, f"task-{index:08d}.pkl")

    def record(self, index: int, result: object) -> None:
        """Durably journal one completed task result (atomic publish)."""
        if not 0 <= index < self.num_tasks:
            raise ValueError(
                f"task index {index} out of range for a {self.num_tasks}-task run"
            )
        data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_atomic(self.result_path(index), data)

    def completed(self) -> dict[int, object]:
        """Replay every journaled result as ``{task_index: result}``.

        A torn or unpicklable result file is removed so its task re-runs;
        resuming therefore never trusts a partially-written checkpoint.
        """
        replayed: dict[int, object] = {}
        for name in sorted(os.listdir(self.path)):
            match = _RESULT_PATTERN.match(name)
            if match is None:
                continue
            index = int(match.group(1))
            if index >= self.num_tasks:  # pragma: no cover - meta check bars this
                continue
            path = os.path.join(self.path, name)
            try:
                with open(path, "rb") as handle:
                    replayed[index] = pickle.load(handle)
            except Exception:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - raced removal
                    pass
        return replayed

    def completed_indices(self) -> list[int]:
        """Journaled task indices, without unpickling the results."""
        indices = []
        for name in os.listdir(self.path):
            match = _RESULT_PATTERN.match(name)
            if match is not None and int(match.group(1)) < self.num_tasks:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def clear(self) -> int:
        """Delete every journaled result, temp file, and the metadata.

        Returns the number of result files removed.
        """
        removed = 0
        for name in os.listdir(self.path):
            is_result = _RESULT_PATTERN.match(name) is not None
            if not (
                is_result or name == META_NAME or name.startswith(TEMP_PREFIX)
            ):
                continue
            try:
                os.remove(os.path.join(self.path, name))
                removed += int(is_result)
            except OSError:  # pragma: no cover - raced removal
                pass
        return removed

    # -- plumbing -----------------------------------------------------------

    def _write_atomic(self, final_path: str, data: bytes) -> None:
        descriptor, temp_path = tempfile.mkstemp(dir=self.path, prefix=TEMP_PREFIX)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, final_path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
