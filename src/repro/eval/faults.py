"""Deterministic fault injection for the supervised evaluation runtime.

A small toolkit the fault-tolerance tests and the CI crash-recovery smoke
drive against :mod:`repro.eval.parallel` and the encoding store.  It covers
the failure modes the supervised pool claims to survive:

* :func:`fail_first_calls` — transient exceptions (flaky I/O, spurious
  numerical guards) that succeed on retry;
* :func:`kill_first_calls` — outright worker death (``SIGKILL``, the OOM
  killer, infra preemption) that skips every ``finally`` block;
* :func:`hang_first_calls` — tasks that sleep past any sane per-task timeout;
* :func:`exit_on_replace` / :func:`truncate_file` — a writer killed in the
  middle of a crash-safe save, and torn-write corruption of published files.

Injectors must count calls *across process boundaries* — the supervised pool
retries a task in a different worker, or serially in the parent — so the
shared "how many times has this run" state lives on disk: :class:`FaultState`
claims one ``O_CREAT | O_EXCL`` file per call, which is atomic on POSIX no
matter which process asks.  That keeps the injected schedule deterministic
("exactly the first N calls fail, wherever they run") and therefore keeps the
recovered results comparable bit-for-bit against a clean run.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from typing import Callable, TypeVar

__all__ = [
    "FaultState",
    "TransientFault",
    "exit_on_replace",
    "fail_first_calls",
    "hang_first_calls",
    "kill_first_calls",
    "truncate_file",
]

T = TypeVar("T")

_CLAIM_PREFIX = "call-"


class TransientFault(RuntimeError):
    """The exception the transient-failure injectors raise."""


class FaultState:
    """A cross-process call counter backed by exclusive claim files.

    Every :meth:`next_call` creates ``call-NNNNNN`` with
    ``O_CREAT | O_EXCL`` — an atomic claim, so concurrent workers can never
    observe the same call number and the "first N calls" schedule is exact
    even when attempts run in different processes.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)

    def _claim_path(self, number: int) -> str:
        return os.path.join(self.path, f"{_CLAIM_PREFIX}{number:06d}")

    def next_call(self) -> int:
        """Claim and return the next 1-based global call number."""
        number = self.calls() + 1
        while True:
            try:
                os.close(
                    os.open(
                        self._claim_path(number),
                        os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    )
                )
                return number
            except FileExistsError:
                number += 1

    def calls(self) -> int:
        """How many calls have been claimed so far (by any process)."""
        try:
            names = os.listdir(self.path)
        except FileNotFoundError:
            return 0
        return sum(1 for name in names if name.startswith(_CLAIM_PREFIX))

    def reset(self) -> None:
        """Forget every claimed call (the next call is number 1 again)."""
        for name in os.listdir(self.path):
            if name.startswith(_CLAIM_PREFIX):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:  # pragma: no cover - raced removal
                    pass


def fail_first_calls(
    task: Callable[[], T],
    state: FaultState,
    n: int,
    *,
    exception_type: type[Exception] = TransientFault,
) -> Callable[[], T]:
    """Wrap ``task`` so its first ``n`` calls (across all processes sharing
    ``state``) raise ``exception_type``; later calls run the task normally."""

    def flaky() -> T:
        call = state.next_call()
        if call <= n:
            raise exception_type(
                f"injected transient fault (doomed call {call} of {n})"
            )
        return task()

    return flaky


def kill_first_calls(
    task: Callable[[], T],
    state: FaultState,
    n: int,
    *,
    sig: int = signal.SIGKILL,
) -> Callable[[], T]:
    """First ``n`` calls kill their host process outright.

    A stand-in for the OOM killer or infra preemption: ``SIGKILL`` skips every
    ``except``/``finally`` in the worker, exactly like the real thing.  The
    supervised pool must notice the dead worker, rebuild the slot, and re-run
    the orphaned task.
    """

    def doomed() -> T:
        if state.next_call() <= n:
            os.kill(os.getpid(), sig)
            time.sleep(60)  # pragma: no cover - only for non-KILL signals
        return task()

    return doomed


def hang_first_calls(
    task: Callable[[], T],
    state: FaultState,
    n: int,
    *,
    seconds: float = 3600.0,
) -> Callable[[], T]:
    """First ``n`` calls sleep past any sane per-task timeout, then finish."""

    def hanging() -> T:
        if state.next_call() <= n:
            time.sleep(seconds)
        return task()

    return hanging


@contextmanager
def exit_on_replace(suffix: str, *, sig: int = signal.SIGKILL):
    """Kill the process the moment it tries to *publish* a matching file.

    Inside the context, ``os.replace(src, dst)`` with ``dst`` ending in
    ``suffix`` raises ``sig`` at the calling process instead of publishing —
    the precise "writer died mid-save" injector for the store's crash-safety
    tests: everything published before the doomed rename stays, the temp file
    of the doomed write is left stranded, and nothing half-written ever
    appears under a final name.
    """
    real_replace = os.replace

    def dying_replace(src, dst, **kwargs):
        if os.fspath(dst).endswith(suffix):
            os.kill(os.getpid(), sig)
            time.sleep(60)  # pragma: no cover - only for non-KILL signals
        return real_replace(src, dst, **kwargs)

    os.replace = dying_replace
    try:
        yield
    finally:
        os.replace = real_replace


def truncate_file(path: str | os.PathLike, *, keep_fraction: float = 0.5) -> int:
    """Truncate a published file in place (torn-write corruption injector).

    Returns the number of bytes kept.  Readers must treat the mutilated file
    as a miss/corrupt entry, not crash on it.
    """
    if not 0 <= keep_fraction < 1:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    os.truncate(path, keep)
    return keep
