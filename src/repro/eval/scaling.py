"""Scaling experiment (Figure 4).

The paper studies how training time grows with graph size: synthetic
Erdős–Rényi datasets with 100 graphs, 2 classes and edge probability 0.05 are
generated for increasing vertex counts, and GraphHD is compared against
GIN-eps and WL-OA.  The same sweep is implemented here; each point records
the training wall-time of one fold for every method (plus accuracy, which the
paper does not plot but which is useful for sanity checks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

from repro.datasets.splits import train_test_split
from repro.datasets.synthetic import make_scaling_dataset
from repro.eval.cross_validation import supports_encoding_cache
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.metrics import accuracy_score
from repro.eval.methods import make_method
from repro.eval.parallel import TaskPolicy, run_tasks


@dataclass
class ScalingPoint:
    """Training time (and accuracy) of every method at one graph size.

    For methods running with the encoding cache, ``encode_seconds`` holds
    the one-off dataset encoding cost and ``train_seconds`` the pure
    class-vector accumulation; for the baselines ``encode_seconds`` is 0 and
    ``train_seconds`` is the full fit wall-time.  ``encoding_store_hit``
    records, per method, whether the encodings came out of a persistent
    store instead of being computed.
    """

    num_vertices: int
    train_seconds: dict[str, float] = field(default_factory=dict)
    accuracy: dict[str, float] = field(default_factory=dict)
    encode_seconds: dict[str, float] = field(default_factory=dict)
    encoding_store_hit: dict[str, bool] = field(default_factory=dict)


def scaling_experiment(
    graph_sizes: Sequence[int],
    *,
    methods: Sequence[str] = ("GraphHD", "GIN-e", "WL-OA"),
    num_graphs: int = 100,
    edge_probability: float = 0.05,
    fast: bool = False,
    seed: int | None = 0,
    dimension: int = 10_000,
    backend: str = "dense",
    encoding_cache: bool = True,
    n_jobs: int | None = None,
    encoding_store: EncodingStore | None = None,
    mmap_mode: str | None = None,
    task_policy: TaskPolicy | None = None,
) -> list[ScalingPoint]:
    """Run the Figure 4 sweep and return one :class:`ScalingPoint` per size.

    Parameters
    ----------
    graph_sizes:
        Vertex counts to sweep (the paper goes up to 980 vertices).
    methods:
        Methods to time; the paper compares GraphHD, GIN-eps and WL-OA.
    num_graphs:
        Dataset size at every point (paper: 100).
    edge_probability:
        Erdős–Rényi edge probability (paper: 0.05).
    fast:
        Use the reduced method configurations (fewer GNN epochs, smaller
        kernel grids) — the relative scaling profile is preserved.
    backend:
        GraphHD compute backend (``"dense"`` or ``"packed"``); ignored by the
        baselines.
    encoding_cache:
        For cache-capable methods, encode the whole dataset in one
        flat-batch pass (recorded in ``ScalingPoint.encode_seconds``) and
        train/test from the cached encodings; disable to reproduce the
        paper's protocol, where training time includes encoding.
    n_jobs:
        Worker processes the sweep points fan out over (None: the
        ``REPRO_N_JOBS`` environment variable, default 1).  Every point is
        generated and evaluated from its own seeds, so accuracies are
        bit-identical to the serial sweep for every worker count.
    encoding_store:
        Optional persistent encoding store shared by all points; repeated
        sweeps (e.g. across backends at the same sizes, or re-runs) load the
        cached encodings instead of re-encoding.
    mmap_mode:
        ``"r"`` serves store entries as read-only memory-mapped views (the
        fit/predict paths only read the encodings, so results are
        unchanged); ignored without a store.
    task_policy:
        Fault-tolerance policy for the sweep-point tasks
        (:class:`~repro.eval.parallel.TaskPolicy`): per-point timeout,
        bounded retries, and an optional checkpoint journal so an
        interrupted sweep resumes executing only its missing sizes.
    """

    def run_point(num_vertices: int) -> ScalingPoint:
        dataset = make_scaling_dataset(
            num_vertices,
            num_graphs=num_graphs,
            edge_probability=edge_probability,
            seed=seed,
        )
        labels = dataset.labels
        train_indices, test_indices = train_test_split(
            labels, test_fraction=0.1, seed=seed
        )
        train_graphs = [dataset.graphs[index] for index in train_indices]
        train_labels = [labels[index] for index in train_indices]
        test_graphs = [dataset.graphs[index] for index in test_indices]
        test_labels = [labels[index] for index in test_indices]

        point = ScalingPoint(num_vertices=num_vertices)
        for method_name in methods:
            model = make_method(
                method_name, fast=fast, seed=seed, dimension=dimension, backend=backend
            )
            point.encode_seconds[method_name] = 0.0
            if encoding_cache and supports_encoding_cache(model):
                encode_start = time.perf_counter()
                train_encodings, train_hit = dataset_encodings(
                    model, train_graphs, encoding_store, mmap_mode=mmap_mode
                )
                test_encodings, test_hit = dataset_encodings(
                    model, test_graphs, encoding_store, mmap_mode=mmap_mode
                )
                point.encode_seconds[method_name] = (
                    time.perf_counter() - encode_start
                )
                point.encoding_store_hit[method_name] = train_hit and test_hit
                start = time.perf_counter()
                model.fit_encoded(train_encodings, train_labels)
                point.train_seconds[method_name] = time.perf_counter() - start
                predictions = model.predict_encoded(test_encodings)
            else:
                start = time.perf_counter()
                model.fit(train_graphs, train_labels)
                point.train_seconds[method_name] = time.perf_counter() - start
                predictions = model.predict(test_graphs)
            point.accuracy[method_name] = accuracy_score(test_labels, predictions)
        return point

    return run_tasks(
        [partial(run_point, num_vertices) for num_vertices in graph_sizes],
        n_jobs=n_jobs,
        policy=task_policy,
        checkpoint_tag=(
            f"scaling:sizes={','.join(str(size) for size in graph_sizes)}"
            f":methods={','.join(methods)}:graphs={num_graphs}"
            f":p={edge_probability}:seed={seed}:dim={dimension}"
            f":backend={backend}:fast={fast}"
        ),
    )
