"""Evaluation harness: metrics, cross-validation, method comparison, scaling.

This subpackage implements the paper's experimental protocol:

* :mod:`repro.eval.metrics` — accuracy, confusion matrix, per-class metrics;
* :mod:`repro.eval.cross_validation` — 10-fold cross-validation with per-fold
  training and inference wall-time measurement, repeated 3 times (Section V-A);
* :mod:`repro.eval.methods` — a uniform factory for the five compared methods
  (GraphHD, 1-WL, WL-OA, GIN-eps, GIN-eps-JK);
* :mod:`repro.eval.comparison` — the multi-dataset, multi-method comparison
  that produces the three panels of Figure 3;
* :mod:`repro.eval.scaling` — the Erdős–Rényi graph-size sweep of Figure 4;
* :mod:`repro.eval.robustness` — accuracy under corrupted model memory (the
  paper's holographic-robustness claim, quantified);
* :mod:`repro.eval.parallel` — the supervised, deterministic process-pool
  executor every harness fans out over (``n_jobs`` / ``REPRO_N_JOBS``):
  bit-identical results for every worker count *and* every recovery path —
  per-task timeouts, bounded retries with backoff, pool rebuild after worker
  death, and poison-task quarantine with structured failure reports, all
  configured by a :class:`~repro.eval.parallel.TaskPolicy`;
* :mod:`repro.eval.checkpoint` — the crash-safe on-disk journal of completed
  task results behind ``TaskPolicy.checkpoint_dir``; interrupted runs resume
  by replaying the journal and executing only the remainder;
* :mod:`repro.eval.faults` — deterministic fault injection (transient
  exceptions, worker SIGKILL, hangs, torn writes) used by the
  fault-tolerance tests and the CI crash-recovery smoke;
* :mod:`repro.eval.encoding_store` — the persistent on-disk encoding cache
  shared across folds, processes and runs, with mmap-able read-only entries
  and a manifest-driven prune/clear/migrate lifecycle (``repro store``);
* :mod:`repro.eval.sharded` — map-reduce training: per-shard
  :class:`~repro.hdc.training_state.TrainingState` accumulation over the
  process pool, merged bit-identically to single-shot ``fit``
  (``repro train``);
* :mod:`repro.eval.reporting` — plain-text rendering of tables and series.
"""

from repro.eval.metrics import accuracy_score, confusion_matrix, per_class_accuracy
from repro.eval.checkpoint import JournalMismatchError, TaskJournal
from repro.eval.cross_validation import CrossValidationResult, FoldResult, cross_validate
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.parallel import (
    TaskFailure,
    TaskPolicy,
    TaskQuarantineError,
    TaskRunReport,
    resolve_n_jobs,
    run_tasks,
    supervise_tasks,
)
from repro.eval.sharded import (
    ShardedFitResult,
    ShardFitError,
    fit_shard,
    fit_sharded,
    shard_indices,
)
from repro.eval.methods import METHOD_NAMES, make_method
from repro.eval.comparison import ComparisonResult, compare_methods
from repro.eval.scaling import ScalingPoint, scaling_experiment
from repro.eval.robustness import (
    RobustnessCurve,
    RobustnessPoint,
    gnn_robustness_curve,
    graphhd_robustness_curve,
)
from repro.eval.reporting import render_figure3, render_series, render_table

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "per_class_accuracy",
    "FoldResult",
    "CrossValidationResult",
    "cross_validate",
    "EncodingStore",
    "dataset_encodings",
    "resolve_n_jobs",
    "run_tasks",
    "supervise_tasks",
    "TaskFailure",
    "TaskPolicy",
    "TaskQuarantineError",
    "TaskRunReport",
    "TaskJournal",
    "JournalMismatchError",
    "ShardFitError",
    "ShardedFitResult",
    "fit_shard",
    "fit_sharded",
    "shard_indices",
    "METHOD_NAMES",
    "make_method",
    "ComparisonResult",
    "compare_methods",
    "ScalingPoint",
    "scaling_experiment",
    "RobustnessCurve",
    "RobustnessPoint",
    "graphhd_robustness_curve",
    "gnn_robustness_curve",
    "render_table",
    "render_series",
    "render_figure3",
]
