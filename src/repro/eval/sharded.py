"""Sharded map-reduce training over the deterministic process pool.

GraphHD training is a monoid: class vectors are integer sums of graph
encodings, so any partition of the training set can be accumulated
independently and merged.  This module is the driver for that observation —
the *map* step trains one :class:`~repro.hdc.training_state.TrainingState`
per shard (in parallel over :func:`repro.eval.parallel.run_tasks`), and the
*reduce* step folds the shard states together with
:func:`~repro.hdc.training_state.merge_states` and installs the result into
a model via ``fit_from_state``.

The headline guarantee, locked down by
``tests/property/test_sharded_equivalence.py``: for any shard count, the
sharded model's class vectors are **bit-identical** to single-shot ``fit``
on the whole training set.  Two preconditions make that true, and both are
checked up front:

* the encodings must be *split-invariant* (a graph encodes identically alone
  or inside any batch) — every deterministic centrality qualifies; the
  ``"random"`` centrality ablation does not and is rejected;
* the configuration must be *seeded*, because every shard trains a fresh
  model from ``model_factory()`` and only a seeded basis makes those models
  encode into the same vector space.

Both conditions are exactly "the model publishes an
``encoding_store_token``", so the same token that keys the persistent
encoding store also gates sharding.

Merging in shard order reproduces the global first-seen class ordering of a
single-shot fit, so even similarity *ties* resolve identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.parallel import (
    TaskPolicy,
    TaskQuarantineError,
    resolve_n_jobs,
    supervise_tasks,
)
from repro.graphs.graph import Graph
from repro.hdc.training_state import TrainingState, merge_states

__all__ = [
    "ShardFitError",
    "ShardedFitResult",
    "fit_shard",
    "fit_sharded",
    "shard_indices",
]


class ShardFitError(RuntimeError):
    """A shard's training task failed; names the partition to inspect.

    Raised inside the shard task (so it crosses the worker boundary inside
    the supervised runtime's failure report) wrapping the original error as
    its ``__cause__``.
    """

    def __init__(
        self, shard_index: int, num_shards: int, shard_size: int, message: str
    ):
        super().__init__(
            f"training shard {shard_index} of {num_shards} "
            f"({shard_size} graphs) failed: {message}"
        )
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.shard_size = shard_size


def shard_indices(num_samples: int, n_shards: int) -> list[np.ndarray]:
    """Contiguous, balanced index blocks for splitting a training set.

    The first ``num_samples % n_shards`` shards get one extra sample.
    Contiguity matters: merging contiguous shards *in shard order* walks the
    samples in their original order, which reproduces the exact first-seen
    class ordering (and therefore tie-breaking) of a single-shot fit.
    Shards beyond ``num_samples`` come back empty and are skipped by
    :func:`fit_sharded`.
    """
    if num_samples < 0:
        raise ValueError(f"num_samples must be non-negative, got {num_samples}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return np.array_split(np.arange(num_samples), n_shards)


def _check_shardable(model: object) -> None:
    """Reject models whose sharded training would not be reproducible."""
    if not callable(getattr(model, "fit_state", None)) or not callable(
        getattr(model, "fit_from_state", None)
    ):
        raise ValueError(
            f"{type(model).__name__} does not implement the training-state "
            "protocol (fit_state/fit_from_state) required for sharded training"
        )
    if getattr(model, "encoding_store_token", None) is None:
        raise ValueError(
            "sharded training requires split-invariant, seeded encodings: "
            "every shard trains a fresh model from model_factory(), so the "
            "configuration must be seeded (a per-process random basis would "
            "put shards in different vector spaces) and must not use the "
            '"random" centrality ablation (its encodings depend on how the '
            "graphs are batched).  The model publishes no encoding_store_token, "
            "which is exactly this condition."
        )


def fit_shard(
    model_factory: Callable[[], object],
    graphs: Sequence[Graph],
    labels: Sequence[Hashable],
) -> TrainingState:
    """Train one shard: encode + accumulate its graphs into a fresh state.

    The map step, also usable standalone (the ``repro train shard`` CLI runs
    exactly this in each training process and saves the returned state).
    """
    model = model_factory()
    _check_shardable(model)
    return model.fit_state(list(graphs), list(labels))


@dataclass
class ShardedFitResult:
    """Outcome of a :func:`fit_sharded` run.

    Attributes
    ----------
    model:
        A model from ``model_factory`` with the merged state installed;
        predicts bit-identically to single-shot ``fit`` on the full set.
    state:
        The merged training state (all shards reduced, context-stamped).
    shard_states:
        The per-shard states in shard order, before merging.
    shard_sizes:
        Number of training samples in each (non-empty) shard.
    n_jobs:
        Effective worker count the shard tasks ran under.
    from_store:
        Whether the encodings came from the persistent store (None when no
        store was passed and every shard encoded its own graphs).
    shards_replayed:
        Shard states replayed from the checkpoint journal instead of
        trained (0 without a ``task_policy`` checkpoint).
    """

    model: object
    state: TrainingState
    shard_states: list[TrainingState] = field(default_factory=list)
    shard_sizes: list[int] = field(default_factory=list)
    n_jobs: int = 1
    from_store: bool | None = None
    shards_replayed: int = 0


def fit_sharded(
    model_factory: Callable[[], object],
    graphs: Sequence[Graph],
    labels: Sequence[Hashable],
    *,
    n_shards: int,
    n_jobs: int | None = None,
    encoding_store: EncodingStore | None = None,
    mmap_mode: str | None = None,
    fingerprint: str | None = None,
    task_policy: TaskPolicy | None = None,
) -> ShardedFitResult:
    """Map-reduce fit: shard the training set, train in parallel, merge.

    Splits ``graphs`` into ``n_shards`` contiguous balanced shards, trains
    an independent :class:`TrainingState` per shard over
    :func:`~repro.eval.parallel.run_tasks` (bit-identical for every worker
    count), folds the states in shard order, and installs the merge into a
    fresh model.  The result's class vectors equal single-shot
    ``model_factory().fit(graphs, labels)`` exactly — see the module
    docstring for the two preconditions, which raise ``ValueError`` when
    violated.

    With an ``encoding_store``, the dataset is encoded once up front through
    the persistent cache (hitting any encodings left by earlier runs;
    ``mmap_mode="r"`` shares one page-cached matrix across the fork-pool
    workers) and the shard tasks only accumulate.  Without a store, each
    shard task encodes its own graphs — that is where the parallel speedup
    lives for cold encodings.

    ``task_policy`` supervises the shard tasks: per-shard timeout, bounded
    retries, and — with a ``checkpoint_dir`` — a crash-safe journal of
    completed shard states, so an interrupted (or quarantined) run resumes
    by replaying the journaled states and training only the missing shards
    before merging (``ShardedFitResult.shards_replayed`` counts the replays).
    A shard that still fails surfaces as a :class:`ShardFitError` naming the
    shard index and size inside the structured failure report.
    """
    graphs = list(graphs)
    labels = list(labels)
    if len(graphs) != len(labels):
        raise ValueError("graphs and labels must have the same length")
    if not graphs:
        raise ValueError("cannot fit on an empty training set")

    model = model_factory()
    _check_shardable(model)
    shards = [block for block in shard_indices(len(graphs), n_shards) if block.size]

    from_store: bool | None = None
    if encoding_store is not None:
        encodings, from_store = dataset_encodings(
            model,
            graphs,
            encoding_store,
            fingerprint=fingerprint,
            mmap_mode=mmap_mode,
        )

        def make_fit(block):
            return lambda: model_factory().fit_state_encoded(
                encodings[block], [labels[i] for i in block]
            )

    else:

        def make_fit(block):
            return lambda: model_factory().fit_state(
                [graphs[i] for i in block], [labels[i] for i in block]
            )

    tasks = [
        _shard_task(make_fit(block), shard_number, len(shards), int(block.size))
        for shard_number, block in enumerate(shards)
    ]

    report = supervise_tasks(
        tasks,
        n_jobs,
        policy=task_policy,
        checkpoint_tag=(
            f"fit_sharded:shards={len(shards)}:samples={len(graphs)}"
        ),
    )
    if report.failures:
        raise TaskQuarantineError(report.failures)
    states = report.results
    merged = merge_states(states)
    model.fit_from_state(merged)
    return ShardedFitResult(
        model=model,
        state=merged,
        shard_states=states,
        shard_sizes=[int(block.size) for block in shards],
        n_jobs=resolve_n_jobs(n_jobs),
        from_store=from_store,
        shards_replayed=report.replayed,
    )


def _shard_task(fit, shard_index: int, num_shards: int, shard_size: int):
    """Wrap one shard's fit so failures carry the partition's identity."""

    def task():
        try:
            return fit()
        except Exception as exc:
            raise ShardFitError(
                shard_index,
                num_shards,
                shard_size,
                f"{type(exc).__name__}: {exc}",
            ) from exc

    return task
