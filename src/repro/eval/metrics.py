"""Classification metrics."""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np


def accuracy_score(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """Fraction of predictions that match the true label."""
    true_labels = list(true_labels)
    predicted_labels = list(predicted_labels)
    if len(true_labels) != len(predicted_labels):
        raise ValueError(
            f"length mismatch: {len(true_labels)} true vs {len(predicted_labels)} predicted"
        )
    if not true_labels:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    correct = sum(
        1 for actual, predicted in zip(true_labels, predicted_labels) if actual == predicted
    )
    return correct / len(true_labels)


def confusion_matrix(
    true_labels: Sequence[Hashable],
    predicted_labels: Sequence[Hashable],
    *,
    classes: Sequence[Hashable] | None = None,
) -> tuple[np.ndarray, list[Hashable]]:
    """Confusion matrix with rows = true class, columns = predicted class.

    Returns the matrix and the class order.  Classes are taken from the union
    of true and predicted labels when not given explicitly.
    """
    true_labels = list(true_labels)
    predicted_labels = list(predicted_labels)
    if len(true_labels) != len(predicted_labels):
        raise ValueError("true and predicted label sequences differ in length")
    if classes is None:
        distinct = set(true_labels) | set(predicted_labels)
        try:
            classes = sorted(distinct)
        except TypeError:
            classes = list(distinct)
    classes = list(classes)
    index_of = {label: index for index, label in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for actual, predicted in zip(true_labels, predicted_labels):
        matrix[index_of[actual], index_of[predicted]] += 1
    return matrix, classes


def per_class_accuracy(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> dict[Hashable, float]:
    """Recall of each class (diagonal of the row-normalized confusion matrix)."""
    matrix, classes = confusion_matrix(true_labels, predicted_labels)
    results: dict[Hashable, float] = {}
    for index, label in enumerate(classes):
        row_total = matrix[index].sum()
        results[label] = float(matrix[index, index] / row_total) if row_total else 0.0
    return results


def macro_f1_score(
    true_labels: Sequence[Hashable], predicted_labels: Sequence[Hashable]
) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix, classes = confusion_matrix(true_labels, predicted_labels)
    f1_scores = []
    for index in range(len(classes)):
        true_positive = matrix[index, index]
        false_positive = matrix[:, index].sum() - true_positive
        false_negative = matrix[index].sum() - true_positive
        denominator = 2 * true_positive + false_positive + false_negative
        f1_scores.append(2 * true_positive / denominator if denominator else 0.0)
    return float(np.mean(f1_scores))
