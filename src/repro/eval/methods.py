"""Factory for the five methods compared in the paper.

All methods expose the same minimal interface expected by the
cross-validation harness: ``fit(graphs, labels)``, ``predict(graphs)``.
The factory builds each of the paper's five methods with the published
hyper-parameters and accepts a ``fast`` flag that shrinks the expensive knobs
(GNN epochs, kernel grids) for CI-sized runs without changing the relative
cost structure.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.kernels.base import KernelClassifier
from repro.kernels.wl_optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.wl_subtree import WLSubtreeKernel
from repro.nn.training import GNNTrainer, TrainingConfig


class GraphClassifierProtocol(Protocol):
    """Structural interface shared by every compared method."""

    def fit(self, graphs, labels):  # pragma: no cover - typing helper
        ...

    def predict(self, graphs):  # pragma: no cover - typing helper
        ...


#: Display names of the five methods of Figure 3, in the paper's order.
METHOD_NAMES = ("GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK")


def make_method(
    name: str,
    *,
    fast: bool = False,
    seed: int | None = 0,
    dimension: int = 10_000,
    backend: str = "dense",
) -> GraphClassifierProtocol:
    """Instantiate one of the five compared methods by display name.

    Parameters
    ----------
    name:
        One of :data:`METHOD_NAMES` (case-insensitive; ``"GIN-eps"`` style
        aliases are accepted).
    fast:
        Use a reduced configuration (fewer GNN epochs, smaller kernel grids,
        fewer internal model-selection folds) for quick runs.  The paper's
        full protocol is used when False.
    seed:
        Seed forwarded to the method.
    dimension:
        GraphHD hypervector dimensionality (the paper uses 10,000).
    backend:
        GraphHD compute backend (``"dense"`` or ``"packed"``); ignored by the
        kernel and GNN baselines.
    """
    key = name.strip().lower().replace("eps", "e").replace("ϵ", "e")
    if key == "graphhd":
        config = GraphHDConfig(dimension=dimension, seed=seed, backend=backend)
        return GraphHDClassifier(config)
    if key in ("1-wl", "wl", "wl-subtree"):
        kernel = WLSubtreeKernel()
        if fast:
            kernel.grid = {"iterations": (1, 3)}
        return KernelClassifier(
            kernel,
            c_grid=(0.01, 1.0, 100.0) if fast else tuple(10.0**e for e in range(-3, 4)),
            selection_folds=2 if fast else 3,
            seed=seed,
        )
    if key in ("wl-oa", "wloa", "wl-optimal-assignment"):
        kernel = WLOptimalAssignmentKernel()
        if fast:
            kernel.grid = {"iterations": (1, 3)}
        return KernelClassifier(
            kernel,
            c_grid=(0.01, 1.0, 100.0) if fast else tuple(10.0**e for e in range(-3, 4)),
            selection_folds=2 if fast else 3,
            seed=seed,
        )
    if key in ("gin-e", "gin"):
        config = TrainingConfig(seed=seed, epochs=10 if fast else 50)
        return GNNTrainer("gin", config)
    if key in ("gin-e-jk", "gin-jk"):
        config = TrainingConfig(seed=seed, epochs=10 if fast else 50)
        return GNNTrainer("gin-jk", config)
    raise ValueError(f"unknown method {name!r}; expected one of {METHOD_NAMES}")
