"""Persistent on-disk store of dataset encodings, with lifecycle management.

Repeated experiment sweeps — ablations, dimension sweeps, method grids —
re-encode the same datasets with the same encoder configurations over and
over, across processes and across runs.  The :class:`EncodingStore` spills
each ``(encoder config, backend, dataset)`` encoding matrix to a store
directory so any later run (or any worker process) can load it back instead
of re-encoding.

Entry format
------------
An entry is an **uncompressed** ``<key>.npy`` payload plus a ``<key>.json``
sidecar carrying the store version, dtype/shape and creation time.  The
uncompressed payload is the point: ``EncodingStore.load(key, mmap_mode="r")``
memory-maps it read-only, so a fork-pool of worker processes shares one
page-cached copy of the encoding matrix instead of each worker materializing
its own (see :mod:`repro.eval.parallel`).  Legacy single-file ``.npz``
entries written by older store versions still load transparently, and are
rewritten into the mmap-able format on demand (a ``load(mmap_mode="r")``
migrates in place) or in bulk with :meth:`EncodingStore.migrate`.

Lifecycle
---------
The store grows monotonically as sweeps touch new configurations, so it
keeps a ``manifest.json`` recording each entry's size in bytes, creation
time and last-access time.  :meth:`EncodingStore.prune` evicts entries by
recency — ``prune(max_bytes=...)`` enforces a total-size bound in LRU order,
``prune(max_age=...)`` drops entries unused for longer than a horizon — and
:meth:`EncodingStore.clear` wipes the store.  The manifest is advisory: it
is rebuilt from a directory scan whenever it is missing or stale, so
concurrent writers that lose a manifest race only lose access-time
precision, never entries.  The ``repro store`` CLI subcommand exposes all of
this (``list``, ``stats``, ``prune``, ``clear``, ``migrate``).

Cache keys and safety
---------------------
An entry's key is the SHA-256 of a canonical JSON document combining

* the **store format version** (bump :data:`STORE_VERSION` to invalidate
  every existing entry at once),
* the model's **encoding-store token** — a stable description of the
  encoding function (encoder class, full config including dimension, seed,
  centrality and backend), exposed as the model's ``encoding_store_token``
  property, and
* the **dataset fingerprint** — a content hash of the graphs
  (:func:`repro.datasets.dataset.graphs_fingerprint`).

Changing any of these (different dimension, different backend, different
graphs, new store version) changes the key, so stale entries are never
returned — they are simply unreachable and can be dropped with
:meth:`EncodingStore.prune` or :meth:`EncodingStore.clear`.

A model vetoes persistent caching by exposing no token (``None``): GraphHD
does so for the ``"random"`` vertex-identifier ablation, whose encodings
consume a random stream per encoded batch, and for unseeded configurations
(``seed=None``), whose basis differs per process.  :func:`dataset_encodings`
then falls back to encoding in memory, exactly like the store-less path.

Concurrency
-----------
Writes are atomic: the sidecar is published first and the payload last, each
serialized to a temporary file in the store directory and published with
:func:`os.replace`, so two processes racing on the same store path both
succeed and readers only ever observe complete entries.  Corrupted or
truncated entries (e.g. from a killed process using an older, non-atomic
writer) are detected on load, deleted, and treated as a miss.  Pruning an
entry while another process holds it memory-mapped is safe on POSIX: the
unlinked file stays readable through the existing mapping.

Arrays returned by the store are **read-only** — both the memory-mapped and
the in-memory flavour — and :func:`dataset_encodings` normalizes its miss
path to match, so callers see identical array flags whether the encodings
were computed, loaded, or mapped.  A caller that needs to mutate encodings
must take an explicit copy (``np.array(encodings)``), which is the
copy-on-write fallback for the mmap path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.datasets.dataset import graphs_fingerprint
from repro.graphs.graph import Graph

#: On-disk format version; part of every cache key, so bumping it invalidates
#: every existing entry (versioned invalidation).  The payload *file* format
#: (legacy ``.npz`` vs. mmap-able ``.npy`` + sidecar) is self-describing and
#: does not participate in the key.
STORE_VERSION = 1

#: File name of the per-store manifest tracking entry sizes and access times.
MANIFEST_NAME = "manifest.json"

#: Prefix of in-flight temporary files; never counted as entries.
TEMP_PREFIX = ".tmp-"

#: Default grace period (seconds) before a stray temp file may be swept.
#: A concurrent writer's in-flight temp file looks exactly like crash
#: wreckage; only age tells them apart.  Writes take well under a minute,
#: so anything older is safe to reclaim.
TEMP_SWEEP_GRACE_SECONDS = 60.0


@dataclass
class EntryInfo:
    """Manifest record of one store entry."""

    key: str
    size_bytes: int
    created_at: float
    last_access_at: float
    format: str  # "npy" (mmap-able) or "npz" (legacy)


@dataclass
class ClearReport:
    """What :meth:`EncodingStore.clear` actually removed.

    Complete entries and swept temporary files are counted separately:
    earlier versions lumped ``.tmp-*`` leftovers into one number, inflating
    the "entries removed" report relative to what ``entries()`` counts.
    """

    entries_removed: int = 0
    temp_files_removed: int = 0


@dataclass
class PruneReport:
    """Outcome of one :meth:`EncodingStore.prune` pass."""

    entries_removed: int = 0
    bytes_freed: int = 0
    entries_remaining: int = 0
    bytes_remaining: int = 0
    removed_keys: list[str] = field(default_factory=list)


class EncodingStore:
    """A directory of persistently cached dataset-encoding matrices.

    Parameters
    ----------
    path:
        Store directory; created on first write if missing.
    version:
        Store format version mixed into every key; defaults to
        :data:`STORE_VERSION`.  Exposed for the invalidation tests.
    clock:
        Time source for the manifest's creation/access stamps; defaults to
        :func:`time.time`.  Injectable so the eviction-order tests are
        deterministic.
    """

    def __init__(
        self,
        path,
        *,
        version: int = STORE_VERSION,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = os.fspath(path)
        self.version = int(version)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._clock = clock

    # ----------------------------------------------------------------- keys
    def key(self, token: dict, fingerprint: str) -> str:
        """Cache key of one (encoding function, dataset) combination."""
        material = json.dumps(
            {
                "store_version": self.version,
                "model": token,
                "dataset": fingerprint,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _payload_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.npy")

    def _sidecar_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.npz")

    def _entry_format(self, key: str) -> str | None:
        """``"npy"``/``"npz"`` when a complete entry exists for ``key``."""
        if os.path.exists(self._payload_path(key)):
            return "npy"
        if os.path.exists(self._legacy_path(key)):
            return "npz"
        return None

    def _entry_files(self, key: str) -> list[str]:
        """Paths (existing ones only) that make up the entry for ``key``."""
        candidates = (
            self._payload_path(key),
            self._sidecar_path(key),
            self._legacy_path(key),
        )
        return [path for path in candidates if os.path.exists(path)]

    def _remove_entry(self, key: str) -> int:
        """Delete all files of one entry; returns the bytes freed."""
        freed = 0
        for file_path in self._entry_files(key):
            try:
                freed += os.path.getsize(file_path)
                os.remove(file_path)
            except OSError:
                pass
        return freed

    # ------------------------------------------------------------- manifest
    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def _write_json_atomic(self, target: str, document: dict) -> None:
        os.makedirs(self.path, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=TEMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise

    def _read_manifest(self) -> dict[str, dict]:
        """The raw manifest entry map, or an empty map when unreadable."""
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                document = json.load(handle)
            entries = document.get("entries", {})
            if isinstance(entries, dict):
                return entries
        except (OSError, ValueError):
            pass
        return {}

    def _write_manifest(self, entries: dict[str, dict]) -> None:
        self._write_json_atomic(
            self._manifest_path(), {"manifest_version": 1, "entries": entries}
        )

    def _entry_size(self, key: str) -> int:
        size = 0
        for path in self._entry_files(key):
            try:
                size += os.path.getsize(path)
            except OSError:
                # A concurrent prune/clear may unlink between listing and
                # stat; a vanished file simply contributes no bytes.
                pass
        return size

    def manifest(self) -> dict[str, EntryInfo]:
        """Size and recency of every complete entry, reconciled with disk.

        The stored manifest is advisory — concurrent processes may race on
        it — so it is reconciled against a directory scan on every read:
        entries missing from the manifest are adopted (stamped with the file
        mtime), entries whose files are gone are dropped, and sizes are
        refreshed from disk.
        """
        recorded = self._read_manifest()
        reconciled: dict[str, EntryInfo] = {}
        for key in self.entries():
            entry_format = self._entry_format(key)
            size = self._entry_size(key)
            record = recorded.get(key)
            if record is not None:
                created = float(record.get("created_at", 0.0))
                accessed = float(record.get("last_access_at", created))
            else:
                try:
                    payload = (
                        self._payload_path(key)
                        if entry_format == "npy"
                        else self._legacy_path(key)
                    )
                    created = accessed = os.path.getmtime(payload)
                except OSError:
                    created = accessed = float(self._clock())
            reconciled[key] = EntryInfo(
                key=key,
                size_bytes=size,
                created_at=created,
                last_access_at=accessed,
                format=entry_format or "npy",
            )
        return reconciled

    def _store_manifest(self, manifest: dict[str, EntryInfo]) -> None:
        self._write_manifest(
            {
                key: {
                    "size_bytes": info.size_bytes,
                    "created_at": info.created_at,
                    "last_access_at": info.last_access_at,
                    "format": info.format,
                }
                for key, info in manifest.items()
            }
        )

    def _record_entry(self, key: str, *, created: bool) -> None:
        """Stamp one entry in the manifest (new entry, or access touch).

        Best-effort and O(1): only the touched record is read-modified-
        written (no full directory scan on the load/save hot path), and
        write failures — e.g. a pre-populated store served from a read-only
        mount — are swallowed: the manifest is advisory, losing a touch only
        costs access-time precision, and :meth:`manifest` reconciles against
        a directory scan whenever the lifecycle commands need the truth.
        """
        try:
            entry_format = self._entry_format(key)
            if entry_format is None:
                return
            now = float(self._clock())
            records = self._read_manifest()
            record = records.get(key)
            if record is None:
                record = {"size_bytes": self._entry_size(key), "created_at": now}
            elif created:
                record["size_bytes"] = self._entry_size(key)
                record["created_at"] = now
            record["last_access_at"] = now
            record["format"] = entry_format
            records[key] = record
            self._write_manifest(records)
        except OSError:
            pass

    def total_bytes(self) -> int:
        """Total size of every complete entry (payloads plus sidecars)."""
        return sum(info.size_bytes for info in self.manifest().values())

    # ---------------------------------------------------------------- access
    def _read_payload(self, key: str, mmap_mode: str | None) -> np.ndarray:
        """Read (or map) one entry's payload; raises on any corruption."""
        entry_format = self._entry_format(key)
        if entry_format == "npy":
            with open(self._sidecar_path(key), "r", encoding="utf-8") as handle:
                sidecar = json.load(handle)
            if int(sidecar["store_version"]) != self.version:
                raise ValueError("store version mismatch")
            if mmap_mode is not None:
                encodings = np.load(
                    self._payload_path(key), mmap_mode="r", allow_pickle=False
                )
            else:
                encodings = np.load(self._payload_path(key), allow_pickle=False)
                encodings.flags.writeable = False
            if list(encodings.shape) != list(sidecar["shape"]):
                raise ValueError("payload shape does not match sidecar")
            return encodings
        if entry_format == "npz":
            with np.load(self._legacy_path(key), allow_pickle=False) as data:
                if int(data["store_version"]) != self.version:
                    raise ValueError("store version mismatch")
                encodings = np.array(data["encodings"], copy=True)
            if mmap_mode is not None:
                # Legacy entries cannot be mapped; migrate in place, then map.
                self._write_entry(key, encodings)
                try:
                    os.remove(self._legacy_path(key))
                except OSError:
                    pass
                return np.load(
                    self._payload_path(key), mmap_mode="r", allow_pickle=False
                )
            encodings.flags.writeable = False
            return encodings
        raise FileNotFoundError(key)

    def load(self, key: str, *, mmap_mode: str | None = None) -> np.ndarray | None:
        """The encodings stored under ``key``, or None on a miss.

        With ``mmap_mode="r"`` the returned array is a **read-only
        memory-mapped view** of the uncompressed payload — worker processes
        forked after the load all share the one page-cached copy.  Without
        it, an in-memory array is returned, also read-only, so both flavours
        expose identical flags.  Loading a legacy ``.npz`` entry with
        ``mmap_mode`` set migrates it to the mmap-able format in place.

        An unreadable entry (corrupted file, wrong embedded version) is
        removed and reported as a miss so the caller re-encodes and the next
        :meth:`save` replaces it with a good one.
        """
        if self._entry_format(key) is None:
            self.misses += 1
            return None
        try:
            encodings = self._read_payload(key, mmap_mode)
        except Exception:
            self._remove_entry(key)
            self.misses += 1
            return None
        self.hits += 1
        self._record_entry(key, created=False)
        return encodings

    def _write_entry(self, key: str, encodings: np.ndarray) -> None:
        """Publish one v2 entry: sidecar first, uncompressed payload last.

        Readers treat the payload's existence as the entry's existence, so
        publishing the sidecar first means a crash between the two renames
        leaves only an invisible orphan sidecar, never a half-entry.
        """
        encodings = np.ascontiguousarray(encodings)
        os.makedirs(self.path, exist_ok=True)
        self._write_json_atomic(
            self._sidecar_path(key),
            {
                "store_version": self.version,
                "dtype": encodings.dtype.str,
                "shape": list(encodings.shape),
                "created_at": float(self._clock()),
            },
        )
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=TEMP_PREFIX, suffix=".npy"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.save(handle, encodings, allow_pickle=False)
            os.replace(temp_path, self._payload_path(key))
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise

    def save(self, key: str, encodings: np.ndarray) -> None:
        """Atomically persist ``encodings`` under ``key``.

        Entries are written in the uncompressed, mmap-able format.  Each
        file is published with an atomic rename, so concurrent writers
        cannot leave a partially written entry behind (the last writer wins,
        and both write identical bytes for the same key anyway).
        """
        self._write_entry(key, np.asarray(encodings))
        # A fresh save supersedes any legacy payload lingering at this key.
        try:
            os.remove(self._legacy_path(key))
        except OSError:
            pass
        self.puts += 1
        self._record_entry(key, created=True)

    # ------------------------------------------------------------ maintenance
    def entries(self) -> list[str]:
        """Keys of every complete entry currently in the store directory."""
        if not os.path.isdir(self.path):
            return []
        keys = set()
        for name in os.listdir(self.path):
            if name.startswith(TEMP_PREFIX) or name == MANIFEST_NAME:
                continue
            if name.endswith(".npy") or name.endswith(".npz"):
                keys.add(name.rsplit(".", 1)[0])
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.entries())

    def temp_files(self) -> list[str]:
        """Stray files in the store directory that are not part of any entry.

        Covers in-flight ``.tmp-*`` leftovers from killed writers and
        orphaned ``<key>.json`` sidecars whose payload never got published
        (the crash window of the sidecar-first write ordering).  Neither
        counts as an entry, and both are swept by :meth:`sweep_temp_files`.
        """
        if not os.path.isdir(self.path):
            return []
        strays = []
        for name in os.listdir(self.path):
            if name.startswith(TEMP_PREFIX):
                strays.append(name)
            elif name.endswith(".json") and name != MANIFEST_NAME:
                if self._entry_format(name[: -len(".json")]) is None:
                    strays.append(name)
        return sorted(strays)

    def sweep_temp_files(self, *, min_age: float | None = None) -> int:
        """Delete stray temp files and orphaned sidecars older than ``min_age``.

        ``min_age`` defaults to :data:`TEMP_SWEEP_GRACE_SECONDS`: a stray
        younger than the grace period may be a *concurrent writer's in-flight
        temp file* and is left alone — sweeping it out from under the writer
        would make its ``os.replace`` publish vanish or fail.  Ages come
        from the files' mtimes against wall-clock time (the injectable store
        clock orders manifest events, not filesystem timestamps).  Pass
        ``min_age=0`` to force-sweep everything, e.g. when the store is
        known quiescent.  Returns the number of files removed.
        """
        grace = TEMP_SWEEP_GRACE_SECONDS if min_age is None else float(min_age)
        horizon = time.time() - grace
        removed = 0
        for name in self.temp_files():
            path = os.path.join(self.path, name)
            try:
                if grace > 0 and os.path.getmtime(path) > horizon:
                    continue
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self, *, sweep_min_age: float | None = None) -> ClearReport:
        """Delete every entry, aged stray temporary file and orphaned sidecar.

        Returns a :class:`ClearReport` counting complete entries and swept
        stray files separately, so the number of "entries removed" matches
        what :meth:`entries` would have reported.  Strays younger than the
        sweep grace period survive (see :meth:`sweep_temp_files`) — they may
        belong to a writer racing this ``clear``; pass ``sweep_min_age=0``
        to remove them too.
        """
        report = ClearReport()
        if not os.path.isdir(self.path):
            return report
        for key in self.entries():
            if self._remove_entry(key):
                report.entries_removed += 1
        report.temp_files_removed = self.sweep_temp_files(min_age=sweep_min_age)
        try:
            os.remove(self._manifest_path())
        except OSError:
            pass
        return report

    def prune(
        self,
        *,
        max_bytes: int | None = None,
        max_age: float | None = None,
        policy: str = "lru",
    ) -> PruneReport:
        """Evict entries until the store satisfies the given bounds.

        Parameters
        ----------
        max_bytes:
            Upper bound on the store's total entry size; least-recently-used
            entries are evicted until the remainder fits.
        max_age:
            Entries whose last access is older than this many seconds (per
            the store clock) are evicted regardless of size.
        policy:
            Eviction order; only ``"lru"`` (ascending last-access time) is
            implemented.

        Both bounds may be combined; with neither, nothing is removed.
        Stray temporary files past the sweep grace period are swept
        (see :meth:`sweep_temp_files`); younger strays may belong to a
        concurrent writer and survive.
        """
        if policy != "lru":
            raise ValueError(f"unknown eviction policy {policy!r}; expected 'lru'")
        report = PruneReport()
        self.sweep_temp_files()
        manifest = self.manifest()
        now = float(self._clock())
        survivors = dict(manifest)

        def evict(info: EntryInfo) -> None:
            freed = self._remove_entry(info.key)
            survivors.pop(info.key, None)
            report.entries_removed += 1
            report.bytes_freed += freed
            report.removed_keys.append(info.key)

        if max_age is not None:
            for info in list(survivors.values()):
                if now - info.last_access_at > float(max_age):
                    evict(info)
        if max_bytes is not None:
            in_lru_order = sorted(
                survivors.values(), key=lambda info: (info.last_access_at, info.key)
            )
            total = sum(info.size_bytes for info in in_lru_order)
            for info in in_lru_order:
                if total <= int(max_bytes):
                    break
                total -= info.size_bytes
                evict(info)
        self._store_manifest(survivors)
        report.entries_remaining = len(survivors)
        report.bytes_remaining = sum(info.size_bytes for info in survivors.values())
        return report

    def migrate(self) -> int:
        """Rewrite every legacy ``.npz`` entry into the mmap-able format.

        Returns the number of entries migrated.  Unreadable legacy entries
        are dropped (the next encode re-creates them).  Entry keys, and
        therefore cache hits, are unaffected — only the payload format
        changes.
        """
        migrated = 0
        for key in self.entries():
            if self._entry_format(key) != "npz":
                continue
            try:
                with np.load(self._legacy_path(key), allow_pickle=False) as data:
                    if int(data["store_version"]) != self.version:
                        raise ValueError("store version mismatch")
                    encodings = np.array(data["encodings"], copy=True)
            except Exception:
                self._remove_entry(key)
                continue
            self._write_entry(key, encodings)
            try:
                os.remove(self._legacy_path(key))
            except OSError:
                pass
            migrated += 1
        if migrated:
            self._store_manifest(self.manifest())
        return migrated

    @property
    def stats(self) -> dict:
        """Hit/miss/write counters of this store handle, plus store totals."""
        manifest = self.manifest()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "entries": len(manifest),
            "total_bytes": sum(info.size_bytes for info in manifest.values()),
            "legacy_entries": sum(
                1 for info in manifest.values() if info.format == "npz"
            ),
            "temp_files": len(self.temp_files()),
        }


def dataset_encodings(
    model,
    graphs: Sequence[Graph],
    store: EncodingStore | None = None,
    *,
    fingerprint: str | None = None,
    mmap_mode: str | None = None,
) -> tuple[np.ndarray, bool]:
    """Encode ``graphs`` with ``model``, through the persistent store when possible.

    Returns ``(encodings, from_store)``.  The store is consulted only when it
    is given *and* the model publishes an ``encoding_store_token`` (models
    whose encodings are not reproducible across processes — the random
    centrality ablation, unseeded configs — publish None and always encode in
    memory).  On a miss the freshly computed encodings are persisted before
    returning, so the next process or run hits.

    ``fingerprint`` lets callers holding a :class:`GraphDataset` pass its
    memoized ``dataset.fingerprint()`` instead of re-hashing the graphs here.

    ``mmap_mode="r"`` asks for a read-only memory-mapped view on store hits,
    so fork-pool workers share one page-cached matrix; the miss path then
    re-opens the just-written entry the same way, and both paths return
    arrays with identical dtype and writeability (read-only whenever the
    store participated — a caller that must mutate takes a copy with
    ``np.array(encodings)``).  Store-less and vetoed paths return the live
    writable array from ``model.encode``.
    """
    graphs = list(graphs)
    token = getattr(model, "encoding_store_token", None)
    if store is None or token is None:
        return model.encode(graphs), False
    if fingerprint is None:
        fingerprint = graphs_fingerprint(graphs)
    key = store.key(token, fingerprint)
    cached = store.load(key, mmap_mode=mmap_mode)
    if cached is not None:
        return cached, True
    encodings = np.asarray(model.encode(graphs))
    store.save(key, encodings)
    if mmap_mode is not None:
        try:
            # The roundtrip is exact (integer payloads, lossless format), so
            # serving the mapped view keeps hit and miss paths identical.
            return store._read_payload(key, mmap_mode), False
        except Exception:
            pass
    if encodings.flags.writeable and encodings.flags.owndata:
        encodings.flags.writeable = False
    else:
        encodings = np.array(encodings)
        encodings.flags.writeable = False
    return encodings, False
