"""Persistent on-disk store of dataset encodings.

Repeated experiment sweeps — ablations, dimension sweeps, method grids —
re-encode the same datasets with the same encoder configurations over and
over, across processes and across runs.  The :class:`EncodingStore` spills
each ``(encoder config, backend, dataset)`` encoding matrix to a directory of
``.npz`` entries so any later run (or any worker process) can load it back
instead of re-encoding.

Cache keys and safety
---------------------
An entry's key is the SHA-256 of a canonical JSON document combining

* the **store format version** (bump :data:`STORE_VERSION` to invalidate
  every existing entry at once),
* the model's **encoding-store token** — a stable description of the
  encoding function (encoder class, full config including dimension, seed,
  centrality and backend), exposed as the model's ``encoding_store_token``
  property, and
* the **dataset fingerprint** — a content hash of the graphs
  (:func:`repro.datasets.dataset.graphs_fingerprint`).

Changing any of these (different dimension, different backend, different
graphs, new store version) changes the key, so stale entries are never
returned — they are simply unreachable and can be dropped with
:meth:`EncodingStore.clear`.

A model vetoes persistent caching by exposing no token (``None``): GraphHD
does so for the ``"random"`` vertex-identifier ablation, whose encodings
consume a random stream per encoded batch, and for unseeded configurations
(``seed=None``), whose basis differs per process.  :func:`dataset_encodings`
then falls back to encoding in memory, exactly like the store-less path.

Concurrency
-----------
Writes are atomic: entries are serialized to a temporary file in the store
directory and published with :func:`os.replace`, so two processes racing on
the same store path both succeed and readers only ever observe complete
entries.  Corrupted or truncated entries (e.g. from a killed process using an
older, non-atomic writer) are detected on load, deleted, and treated as a
miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Sequence

import numpy as np

from repro.datasets.dataset import graphs_fingerprint
from repro.graphs.graph import Graph

#: On-disk format version; part of every cache key, so bumping it invalidates
#: every existing entry (versioned invalidation).
STORE_VERSION = 1


class EncodingStore:
    """A directory of persistently cached dataset-encoding matrices.

    Parameters
    ----------
    path:
        Store directory; created on first write if missing.
    version:
        Store format version mixed into every key; defaults to
        :data:`STORE_VERSION`.  Exposed for the invalidation tests.
    """

    def __init__(self, path, *, version: int = STORE_VERSION) -> None:
        self.path = os.fspath(path)
        self.version = int(version)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ----------------------------------------------------------------- keys
    def key(self, token: dict, fingerprint: str) -> str:
        """Cache key of one (encoding function, dataset) combination."""
        material = json.dumps(
            {
                "store_version": self.version,
                "model": token,
                "dataset": fingerprint,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.npz")

    # ---------------------------------------------------------------- access
    def load(self, key: str) -> np.ndarray | None:
        """The encodings stored under ``key``, or None on a miss.

        An unreadable entry (corrupted file, wrong embedded version) is
        removed and reported as a miss so the caller re-encodes and the next
        :meth:`save` replaces it with a good one.
        """
        path = self._entry_path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["store_version"]) != self.version:
                    raise ValueError("store version mismatch")
                encodings = np.array(data["encodings"], copy=True)
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return encodings

    def save(self, key: str, encodings: np.ndarray) -> None:
        """Atomically persist ``encodings`` under ``key``.

        The entry is written to a temporary file in the store directory and
        published with an atomic rename, so concurrent writers cannot leave a
        partially written entry behind (the last writer wins, and both write
        identical bytes for the same key anyway).
        """
        os.makedirs(self.path, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez_compressed(
                    handle,
                    store_version=np.int64(self.version),
                    encodings=np.asarray(encodings),
                )
            os.replace(temp_path, self._entry_path(key))
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.puts += 1

    # ------------------------------------------------------------ maintenance
    def entries(self) -> list[str]:
        """Keys of every complete entry currently in the store directory."""
        if not os.path.isdir(self.path):
            return []
        return sorted(
            name[: -len(".npz")]
            for name in os.listdir(self.path)
            if name.endswith(".npz") and not name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every entry (and stray temporary file); returns the count removed."""
        removed = 0
        if not os.path.isdir(self.path):
            return removed
        for name in os.listdir(self.path):
            if name.endswith(".npz"):
                try:
                    os.remove(os.path.join(self.path, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    @property
    def stats(self) -> dict:
        """Hit/miss/write counters of this store handle, plus the entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "entries": len(self),
        }


def dataset_encodings(
    model,
    graphs: Sequence[Graph],
    store: EncodingStore | None = None,
    *,
    fingerprint: str | None = None,
) -> tuple[np.ndarray, bool]:
    """Encode ``graphs`` with ``model``, through the persistent store when possible.

    Returns ``(encodings, from_store)``.  The store is consulted only when it
    is given *and* the model publishes an ``encoding_store_token`` (models
    whose encodings are not reproducible across processes — the random
    centrality ablation, unseeded configs — publish None and always encode in
    memory).  On a miss the freshly computed encodings are persisted before
    returning, so the next process or run hits.

    ``fingerprint`` lets callers holding a :class:`GraphDataset` pass its
    memoized ``dataset.fingerprint()`` instead of re-hashing the graphs here.
    """
    graphs = list(graphs)
    token = getattr(model, "encoding_store_token", None)
    if store is None or token is None:
        return model.encode(graphs), False
    if fingerprint is None:
        fingerprint = graphs_fingerprint(graphs)
    key = store.key(token, fingerprint)
    cached = store.load(key)
    if cached is not None:
        return cached, True
    encodings = model.encode(graphs)
    store.save(key, np.asarray(encodings))
    return encodings, False
