"""Robustness evaluation: accuracy under corrupted model memory.

The paper argues (Sections I and II) that HDC models are *inherently robust*:
information is stored holographically, so every hypervector component carries
the same amount of information and the model degrades gracefully when
components are corrupted — the property that makes HDC attractive for
unreliable, low-power memory in IoT devices.  The paper states the claim
qualitatively; this module quantifies it for GraphHD by flipping a growing
fraction of the trained class-vector components and re-measuring accuracy,
optionally comparing against the same corruption applied to a GNN baseline's
weights (which is not holographic and degrades much faster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import supports_encoding_cache
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.metrics import accuracy_score
from repro.eval.parallel import TaskPolicy, run_tasks
from repro.graphs.graph import Graph


@dataclass
class RobustnessPoint:
    """Accuracy at one corruption level."""

    corruption_fraction: float
    accuracy: float


@dataclass
class RobustnessCurve:
    """Accuracy as a function of the fraction of corrupted components."""

    model_name: str
    points: list[RobustnessPoint] = field(default_factory=list)

    @property
    def fractions(self) -> list[float]:
        return [point.corruption_fraction for point in self.points]

    @property
    def accuracies(self) -> list[float]:
        return [point.accuracy for point in self.points]

    def accuracy_at(self, fraction: float) -> float:
        """Accuracy at the corruption level closest to ``fraction``."""
        if not self.points:
            raise ValueError("robustness curve is empty")
        closest = min(
            self.points, key=lambda point: abs(point.corruption_fraction - fraction)
        )
        return closest.accuracy

    def degradation(self) -> float:
        """Accuracy lost between the clean model and the most corrupted one."""
        if not self.points:
            raise ValueError("robustness curve is empty")
        return self.points[0].accuracy - self.points[-1].accuracy


def corrupt_class_vectors(
    model: GraphHDClassifier,
    fraction: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> None:
    """Flip the sign of a random fraction of each class accumulator's components.

    The corruption is applied in place; corrupt a fresh copy (or refit) to
    evaluate multiple corruption levels independently.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    memory = model.classifier.memory
    for label in memory.classes:
        accumulator = memory._accumulators[label]
        count = int(round(len(accumulator) * fraction))
        if count == 0:
            continue
        positions = generator.choice(len(accumulator), size=count, replace=False)
        accumulator[positions] = -accumulator[positions]


def graphhd_robustness_curve(
    model_factory,
    train_graphs: Sequence[Graph],
    train_labels: Sequence,
    test_graphs: Sequence[Graph],
    test_labels: Sequence,
    *,
    corruption_fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    repetitions: int = 3,
    seed: int | None = 0,
    encoding_cache: bool = True,
    n_jobs: int | None = None,
    encoding_store: EncodingStore | None = None,
    mmap_mode: str | None = None,
    task_policy: TaskPolicy | None = None,
) -> RobustnessCurve:
    """Measure GraphHD accuracy while corrupting its class hypervectors.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh :class:`GraphHDClassifier`.
    corruption_fractions:
        Fractions of class-vector components whose sign is flipped.
    repetitions:
        Number of independent corruption draws averaged per fraction (the
        clean point is measured once).
    encoding_cache:
        Encode the train/test graphs once and refit every corruption draw
        from the cached encodings (corruption only touches the trained class
        vectors, so the curve is identical); disable to re-encode per draw.
    n_jobs:
        Worker processes the (fraction, draw) grid fans out over (None: the
        ``REPRO_N_JOBS`` environment variable, default 1).  Every draw
        corrupts with its own deterministically derived RNG, so the curve is
        bit-identical to the serial loop for every worker count.
    encoding_store:
        Optional persistent encoding store for the cached train/test
        encodings (ignored when the model vetoes caching).
    mmap_mode:
        ``"r"`` serves store entries as read-only memory-mapped views;
        corruption only mutates the trained class vectors, never the
        encodings, so the curve is unchanged.  Ignored without a store.
    task_policy:
        Fault-tolerance policy for the (fraction, draw) tasks
        (:class:`~repro.eval.parallel.TaskPolicy`): per-draw timeout, bounded
        retries, and an optional checkpoint journal so an interrupted curve
        resumes executing only its missing draws.  Each draw's corruption
        RNG derives from the up-front seed plan, so retried and resumed
        curves stay bit-identical to a clean serial run.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    fractions = sorted(set(float(fraction) for fraction in corruption_fractions))
    curve = RobustnessCurve(model_name="GraphHD")

    train_encodings = test_encodings = None
    if encoding_cache:
        probe = model_factory()
        if supports_encoding_cache(probe):
            train_encodings, _ = dataset_encodings(
                probe, list(train_graphs), encoding_store, mmap_mode=mmap_mode
            )
            test_encodings, _ = dataset_encodings(
                probe, list(test_graphs), encoding_store, mmap_mode=mmap_mode
            )

    # One independent child seed per (fraction, draw), derived up front from
    # the base seed: each draw is then a pure task (fresh model, own
    # corruption RNG) and the curve does not depend on worker count or
    # scheduling order.
    draws_per_fraction = [1 if fraction == 0.0 else repetitions for fraction in fractions]
    root = np.random.SeedSequence(seed)
    children = root.spawn(int(sum(draws_per_fraction)))

    def run_draw(fraction: float, child: np.random.SeedSequence) -> float:
        model = model_factory()
        if train_encodings is not None:
            model.fit_encoded(train_encodings, list(train_labels))
        else:
            model.fit(list(train_graphs), list(train_labels))
        corrupt_class_vectors(model, fraction, rng=np.random.default_rng(child))
        if test_encodings is not None:
            predictions = model.predict_encoded(test_encodings)
        else:
            predictions = model.predict(list(test_graphs))
        return accuracy_score(list(test_labels), predictions)

    tasks = []
    child_iter = iter(children)
    for fraction, draws in zip(fractions, draws_per_fraction):
        for _ in range(draws):
            tasks.append(partial(run_draw, fraction, next(child_iter)))
    accuracies = run_tasks(
        tasks,
        n_jobs=n_jobs,
        policy=task_policy,
        checkpoint_tag=(
            f"robustness:fractions={','.join(str(f) for f in fractions)}"
            # root.entropy (not ``seed``) so a seedless run cannot resume
            # into a journal written under a different random seed plan.
            f":reps={repetitions}:seed={root.entropy}"
            f":train={len(train_graphs)}:test={len(test_graphs)}"
        ),
    )

    cursor = 0
    for fraction, draws in zip(fractions, draws_per_fraction):
        draw_accuracies = accuracies[cursor : cursor + draws]
        cursor += draws
        curve.points.append(
            RobustnessPoint(
                corruption_fraction=fraction, accuracy=float(np.mean(draw_accuracies))
            )
        )
    return curve


def corrupt_gnn_weights(trainer, fraction: float, *, rng=None) -> None:
    """Flip the sign of a random fraction of every GNN parameter tensor.

    Mirrors :func:`corrupt_class_vectors` for the GNN baseline so the two
    robustness curves are comparable: the same fraction of stored model
    components is corrupted in both cases.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if trainer.model is None:
        raise RuntimeError("trainer has not been fitted")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    for parameter in trainer.model.parameters():
        flat = parameter.data.reshape(-1)
        count = int(round(flat.size * fraction))
        if count == 0:
            continue
        positions = generator.choice(flat.size, size=count, replace=False)
        flat[positions] = -flat[positions]


def gnn_robustness_curve(
    trainer_factory,
    train_graphs: Sequence[Graph],
    train_labels: Sequence,
    test_graphs: Sequence[Graph],
    test_labels: Sequence,
    *,
    corruption_fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    repetitions: int = 3,
    seed: int | None = 0,
) -> RobustnessCurve:
    """Measure GNN accuracy while sign-flipping a fraction of its weights."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    fractions = sorted(set(float(fraction) for fraction in corruption_fractions))
    curve = RobustnessCurve(model_name="GIN-e")
    rng = np.random.default_rng(seed)
    for fraction in fractions:
        accuracies = []
        draws = 1 if fraction == 0.0 else repetitions
        for _ in range(draws):
            trainer = trainer_factory()
            trainer.fit(list(train_graphs), list(train_labels))
            corrupt_gnn_weights(trainer, fraction, rng=rng)
            predictions = trainer.predict(list(test_graphs))
            accuracies.append(accuracy_score(list(test_labels), predictions))
        curve.points.append(
            RobustnessPoint(
                corruption_fraction=fraction, accuracy=float(np.mean(accuracies))
            )
        )
    return curve
