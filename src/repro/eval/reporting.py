"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows and series the paper reports;
these helpers format them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` is directly readable next to the
paper's tables and figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    headers = [str(header) for header in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".") if "." in f"{cell:.4f}" else f"{cell:.4f}"
    return str(cell)


def render_panel(
    panel: Mapping[str, Mapping[str, float]],
    *,
    title: str,
    value_name: str = "value",
) -> str:
    """Render a dataset -> method -> value mapping as a table.

    Datasets become rows, methods become columns — the layout of each panel of
    Figure 3.
    """
    datasets = list(panel)
    methods: list[str] = []
    for row in panel.values():
        for method in row:
            if method not in methods:
                methods.append(method)
    headers = ["dataset"] + methods
    rows = []
    for dataset in datasets:
        row = [dataset]
        for method in methods:
            value = panel[dataset].get(method)
            row.append(value if value is not None else "-")
        rows.append(row)
    return render_table(headers, rows, title=f"{title} ({value_name})")


def render_series(
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    x_name: str = "x",
    title: str | None = None,
) -> str:
    """Render one or more named series over a shared x axis as a table."""
    headers = [x_name] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row = [x_value]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_figure3(comparison) -> str:
    """Render all three Figure 3 panels from a ComparisonResult."""
    parts = [
        render_panel(
            comparison.accuracy_table(),
            title="Figure 3 (left): accuracy",
            value_name="mean accuracy",
        ),
        render_panel(
            comparison.training_time_table(),
            title="Figure 3 (middle): training time",
            value_name="seconds per fold",
        ),
        render_panel(
            comparison.inference_time_table(),
            title="Figure 3 (right): inference time",
            value_name="seconds per graph",
        ),
    ]
    return "\n\n".join(parts)
