"""K-fold cross-validation with wall-time measurement.

The paper's protocol (Section V-A): 10-fold cross-validation, repeated 3
times; the reported training time is the wall-time of training one fold and
the inference time is the testing wall-time of one fold divided by the number
of test graphs (time per graph).

The folds x repetitions grid is embarrassingly parallel: every fold trains a
fresh model on a precomputed split.  ``cross_validate`` therefore plans all
splits (and the dataset encoding, when cached) up front in the parent
process and fans the folds out over :func:`repro.eval.parallel.run_tasks` —
results are bit-identical to the serial loop for every ``n_jobs``, because
each fold is a pure function of the plan and results are collected in plan
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.datasets.dataset import GraphDataset
from repro.datasets.splits import StratifiedKFold
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.eval.metrics import accuracy_score
from repro.eval.parallel import TaskPolicy, run_tasks


@dataclass
class FoldResult:
    """Result of training and testing on a single fold.

    ``test_indices`` records the fold assignment (which dataset indices were
    held out), so the serial<->parallel equivalence suite can assert that
    parallel dispatch evaluates exactly the same splits.
    """

    fold: int
    repetition: int
    accuracy: float
    train_seconds: float
    test_seconds: float
    num_train_graphs: int
    num_test_graphs: int
    test_indices: tuple[int, ...] = ()

    @property
    def inference_seconds_per_graph(self) -> float:
        """Test wall-time normalized by the number of test graphs."""
        if self.num_test_graphs == 0:
            return 0.0
        return self.test_seconds / self.num_test_graphs


@dataclass
class CrossValidationResult:
    """Aggregated result of repeated K-fold cross-validation for one method.

    When the encoding cache is active (``encoding_cached``), the dataset is
    encoded exactly once and ``encoding_seconds`` records that one-off cost;
    per-fold ``train_seconds``/``test_seconds`` then measure the pure
    class-vector accumulation and similarity-search inference.  Without the
    cache both per-fold timings include encoding, as in the paper's protocol.

    ``base_seed`` is the seed every fold seed was derived from: the ``seed``
    argument when one was given, otherwise the one seed drawn up front for
    the whole run — re-running with ``seed=result.base_seed`` reproduces the
    folds exactly.  ``encoding_store_hit`` records whether the cached
    encodings came from a persistent :class:`EncodingStore` entry instead of
    being computed.  With a store, ``encoding_seconds`` measures the actual
    one-off cost paid to *obtain* the encodings — a store load on a hit, or
    encode plus fingerprint-and-persist on a miss — so it is the honest
    end-to-end number for that run, but a cold-store figure is not directly
    comparable to a store-less encode time.
    """

    method: str
    dataset: str
    folds: list[FoldResult] = field(default_factory=list)
    encoding_cached: bool = False
    encoding_seconds: float = 0.0
    base_seed: int | None = None
    encoding_store_hit: bool = False

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([fold.accuracy for fold in self.folds]))

    @property
    def std_accuracy(self) -> float:
        return float(np.std([fold.accuracy for fold in self.folds]))

    @property
    def mean_train_seconds(self) -> float:
        """Average wall-time of training one fold (the paper's training time)."""
        return float(np.mean([fold.train_seconds for fold in self.folds]))

    @property
    def mean_test_seconds(self) -> float:
        return float(np.mean([fold.test_seconds for fold in self.folds]))

    @property
    def mean_inference_seconds_per_graph(self) -> float:
        """Average inference time per test graph (the paper's inference time)."""
        return float(
            np.mean([fold.inference_seconds_per_graph for fold in self.folds])
        )

    def summary(self) -> dict:
        """Plain-dict summary used by the reporting helpers and benchmarks."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "accuracy_mean": self.mean_accuracy,
            "accuracy_std": self.std_accuracy,
            "train_seconds": self.mean_train_seconds,
            "test_seconds": self.mean_test_seconds,
            "inference_seconds_per_graph": self.mean_inference_seconds_per_graph,
            "folds": len(self.folds),
            "encoding_cached": self.encoding_cached,
            "encoding_seconds": self.encoding_seconds,
            "base_seed": self.base_seed,
            "encoding_store_hit": self.encoding_store_hit,
        }


def supports_encoding_cache(model: object) -> bool:
    """Whether ``model`` can be trained and queried on cached encodings.

    A model opts into the evaluation-layer encoding cache by exposing the
    encoded-path protocol: ``encode(graphs)``, ``fit_encoded(encodings,
    labels)`` and ``predict_encoded(encodings)`` (GraphHD and its extensions
    do; the kernel and GNN baselines do not).  A model that implements the
    protocol can still veto the cache by setting ``encoding_cache_safe`` to
    False — GraphHD does so for the ``"random"`` vertex-identifier ablation,
    whose encodings consume a random stream per encoded batch and therefore
    depend on how the evaluation groups the graphs.
    """
    if not all(
        callable(getattr(model, name, None))
        for name in ("encode", "fit_encoded", "predict_encoded")
    ):
        return False
    return bool(getattr(model, "encoding_cache_safe", True))


def resolve_base_seed(seed: int | None) -> int:
    """The one base seed an evaluation run derives every per-task seed from.

    A ``None`` seed draws a single random base seed *up front*; all fold and
    repetition seeds then derive from it deterministically, so a seedless run
    is still internally consistent — parallel dispatch evaluates exactly the
    folds the serial loop would, and the drawn seed can be recorded (e.g. as
    ``CrossValidationResult.base_seed``) to reproduce the run later.
    """
    if seed is None:
        return int(np.random.default_rng().integers(0, 2**31 - 1))
    return int(seed)


def cross_validate(
    method_factory: Callable[[], object],
    dataset: GraphDataset,
    *,
    method_name: str = "method",
    n_splits: int = 10,
    repetitions: int = 3,
    max_folds_per_repetition: int | None = None,
    seed: int | None = 0,
    encoding_cache: bool = True,
    n_jobs: int | None = None,
    encoding_store: EncodingStore | None = None,
    mmap_mode: str | None = None,
    task_policy: TaskPolicy | None = None,
) -> CrossValidationResult:
    """Run repeated stratified K-fold cross-validation for one method.

    Parameters
    ----------
    method_factory:
        Zero-argument callable returning a fresh, unfitted classifier with
        ``fit(graphs, labels)`` and ``predict(graphs)``.
    dataset:
        The labelled graph dataset.
    n_splits:
        Number of folds (paper: 10).
    repetitions:
        Number of times the K-fold split is repeated with different shuffles
        (paper: 3).
    max_folds_per_repetition:
        Optionally evaluate only the first few folds of each repetition —
        used by the CI-sized benchmark configuration to bound runtime while
        preserving the protocol.
    seed:
        Base seed; repetition ``r`` uses ``base_seed + r`` for its shuffle,
        where ``base_seed`` is ``seed``, or one seed drawn up front when
        ``seed`` is None (see :func:`resolve_base_seed`).
    encoding_cache:
        Encode the dataset once up front and train/test every fold from the
        cached encodings, for methods that support it (see
        :func:`supports_encoding_cache`).  The accuracies are identical to
        re-encoding per fold: cache-safe encodings do not depend on the
        training split, and models whose encodings do (GraphHD's
        ``"random"`` centrality ablation) veto the cache themselves.  The
        one-off encoding cost is reported separately in
        ``CrossValidationResult.encoding_seconds``.  Disable to reproduce
        the paper's timing protocol, where every fold's training time
        includes encoding.
    n_jobs:
        Worker processes the folds fan out over (None: the ``REPRO_N_JOBS``
        environment variable, default 1; zero/negative: all cores).
        Accuracies and fold assignments are bit-identical for every value;
        only wall-clock changes.
    encoding_store:
        Optional persistent on-disk encoding store; when the encoding cache
        is active, the dataset encodings are loaded from (or saved to) the
        store so later runs and sibling processes skip re-encoding.  Models
        that veto the in-memory cache veto the store as well.
    mmap_mode:
        ``"r"`` serves store entries as read-only memory-mapped views, so
        every forked fold worker shares the one page-cached encoding matrix
        instead of copying it; results are bit-identical to in-memory loads
        (folds only slice the matrix, which copies).  Ignored without a
        store.
    task_policy:
        Fault-tolerance policy for the fold tasks
        (:class:`~repro.eval.parallel.TaskPolicy`): per-fold timeout, bounded
        retries with backoff, and an optional checkpoint journal so an
        interrupted run resumes executing only the missing folds.  Folds are
        pure functions of the up-front plan, so retried and resumed runs
        stay bit-identical to a clean serial run.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    labels = dataset.labels
    graphs = dataset.graphs
    base_seed = resolve_base_seed(seed)
    result = CrossValidationResult(
        method=method_name, dataset=dataset.name, base_seed=base_seed
    )

    # Encode in the parent, before any workers fork: every fold task then
    # shares the one encoding matrix copy-on-write instead of re-pickling it.
    encodings = None
    if encoding_cache:
        probe = method_factory()
        if supports_encoding_cache(probe):
            encode_start = time.perf_counter()
            encodings, from_store = dataset_encodings(
                probe,
                graphs,
                encoding_store,
                fingerprint=(
                    dataset.fingerprint() if encoding_store is not None else None
                ),
                mmap_mode=mmap_mode,
            )
            result.encoding_seconds = time.perf_counter() - encode_start
            result.encoding_cached = True
            result.encoding_store_hit = from_store

    # Plan every fold up front (consuming the split RNGs serially in the
    # parent), so each fold task is a pure function of the plan and the
    # results cannot depend on worker count or scheduling order.
    plan: list[tuple[int, int, np.ndarray, np.ndarray]] = []
    for repetition in range(repetitions):
        splitter = StratifiedKFold(
            n_splits, shuffle=True, seed=base_seed + repetition
        )
        for fold_index, (train_indices, test_indices) in enumerate(
            splitter.split(labels)
        ):
            if (
                max_folds_per_repetition is not None
                and fold_index >= max_folds_per_repetition
            ):
                break
            plan.append((repetition, fold_index, train_indices, test_indices))

    def run_fold(task: tuple[int, int, np.ndarray, np.ndarray]) -> FoldResult:
        repetition, fold_index, train_indices, test_indices = task
        train_labels = [labels[index] for index in train_indices]
        test_labels = [labels[index] for index in test_indices]

        model = method_factory()
        if encodings is not None:
            train_encodings = encodings[np.asarray(train_indices)]
            test_encodings = encodings[np.asarray(test_indices)]

            train_start = time.perf_counter()
            model.fit_encoded(train_encodings, train_labels)
            train_seconds = time.perf_counter() - train_start

            test_start = time.perf_counter()
            predictions = model.predict_encoded(test_encodings)
            test_seconds = time.perf_counter() - test_start
        else:
            train_graphs = [graphs[index] for index in train_indices]
            test_graphs = [graphs[index] for index in test_indices]

            train_start = time.perf_counter()
            model.fit(train_graphs, train_labels)
            train_seconds = time.perf_counter() - train_start

            test_start = time.perf_counter()
            predictions = model.predict(test_graphs)
            test_seconds = time.perf_counter() - test_start

        return FoldResult(
            fold=fold_index,
            repetition=repetition,
            accuracy=accuracy_score(test_labels, predictions),
            train_seconds=train_seconds,
            test_seconds=test_seconds,
            num_train_graphs=len(train_indices),
            num_test_graphs=len(test_indices),
            test_indices=tuple(int(index) for index in test_indices),
        )

    # The journal tag captures everything that shapes the fold plan, so a
    # checkpoint can only resume into the run that wrote it.
    result.folds = run_tasks(
        [lambda task=task: run_fold(task) for task in plan],
        n_jobs=n_jobs,
        policy=task_policy,
        checkpoint_tag=(
            f"cross_validate:{method_name}:{dataset.name}:"
            f"{n_splits}x{repetitions}:max={max_folds_per_repetition}:"
            f"seed={base_seed}"
        ),
    )
    return result
