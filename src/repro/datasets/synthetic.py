"""Synthetic stand-ins for the six TUDataset benchmarks and the scaling sweep.

No network access is available in this reproduction, so the six datasets of
Table I (DD, ENZYMES, MUTAG, NCI1, PROTEINS, PTC_FM) are replaced by synthetic
datasets that

* match the Table I statistics — number of graphs, number of classes, average
  vertex count, average edge count (and hence sparsity), and
* carry a purely *topological* class signal, because GraphHD (and the
  restricted baselines of the paper) only look at graph structure.

Each class of a dataset is assigned a structural archetype (tree-like,
clustered, small-world, scale-free, community-structured) whose parameters are
tuned so that the expected edge count matches the dataset average.  The class
signal strength is controlled per dataset so that the relative accuracy
ordering of the paper can be reproduced (e.g. NCI1/ENZYMES remain the hardest
datasets for structure-only methods).

The scaling experiment of Figure 4 uses plain Erdős–Rényi graphs with edge
probability 0.05, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.dataset import GraphDataset
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    ring_of_cliques_graph,
    tree_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph


@dataclass
class ClassArchetype:
    """Structural archetype used to generate the graphs of one class.

    Attributes
    ----------
    kind:
        One of ``"tree"``, ``"clustered"``, ``"smallworld"``, ``"scalefree"``,
        ``"communities"``, ``"random"``.
    edge_multiplier:
        Scales the target number of edges relative to the dataset average,
        letting classes differ in density (a signal GraphHD can pick up).
    parameter:
        Archetype-specific knob: number of communities, clique size, rewiring
        probability, or attachment count depending on ``kind``.
    """

    kind: str
    edge_multiplier: float = 1.0
    parameter: float = 2.0


@dataclass
class SyntheticDatasetSpec:
    """Specification of one synthetic benchmark dataset (one row of Table I).

    ``class_overlap`` controls how often a graph is generated from the *other*
    classes' archetype while keeping its own label, and ``parameter_jitter``
    randomizes the per-graph edge density.  Both mimic the label noise and
    intra-class structural diversity of the real datasets: without them every
    baseline saturates at 100% accuracy, which the real benchmarks do not.
    ``difficulty`` is documented per dataset so that the relative ordering of
    the paper (NCI1 and ENZYMES hardest) is preserved.
    """

    name: str
    num_graphs: int
    num_classes: int
    avg_vertices: float
    avg_edges: float
    archetypes: list[ClassArchetype] = field(default_factory=list)
    vertex_count_spread: float = 0.35
    num_vertex_labels: int = 0
    class_overlap: float = 0.15
    parameter_jitter: float = 0.10

    def __post_init__(self) -> None:
        if len(self.archetypes) not in (0, self.num_classes):
            raise ValueError(
                f"{self.name}: expected {self.num_classes} archetypes, "
                f"got {len(self.archetypes)}"
            )
        if not 0.0 <= self.class_overlap < 1.0:
            raise ValueError(f"{self.name}: class_overlap must be in [0, 1)")
        if self.parameter_jitter < 0:
            raise ValueError(f"{self.name}: parameter_jitter must be non-negative")


#: Specifications matching Table I of the paper.  Archetypes are chosen so the
#: classes differ in topology: chemistry-style datasets (MUTAG, NCI1, PTC_FM)
#: oppose tree-like and ring-containing molecules, protein datasets (DD,
#: PROTEINS, ENZYMES) oppose clustered and small-world contact maps.
DATASET_SPECS: dict[str, SyntheticDatasetSpec] = {
    "DD": SyntheticDatasetSpec(
        name="DD",
        num_graphs=1178,
        num_classes=2,
        avg_vertices=284.32,
        avg_edges=715.66,
        archetypes=[
            ClassArchetype("clustered", edge_multiplier=1.05, parameter=6.0),
            ClassArchetype("smallworld", edge_multiplier=0.95, parameter=0.15),
        ],
        num_vertex_labels=89,
    ),
    "ENZYMES": SyntheticDatasetSpec(
        name="ENZYMES",
        num_graphs=600,
        num_classes=6,
        avg_vertices=32.63,
        avg_edges=62.14,
        archetypes=[
            ClassArchetype("clustered", edge_multiplier=1.10, parameter=5.0),
            ClassArchetype("smallworld", edge_multiplier=1.05, parameter=0.05),
            ClassArchetype("communities", edge_multiplier=1.00, parameter=2.0),
            ClassArchetype("scalefree", edge_multiplier=0.95, parameter=2.0),
            ClassArchetype("communities", edge_multiplier=0.95, parameter=3.0),
            ClassArchetype("random", edge_multiplier=0.90, parameter=0.0),
        ],
        num_vertex_labels=3,
        # Six-way classification from topology alone is the second-hardest
        # task in the paper; substantial overlap keeps it that way here.
        class_overlap=0.30,
    ),
    "MUTAG": SyntheticDatasetSpec(
        name="MUTAG",
        num_graphs=188,
        num_classes=2,
        avg_vertices=17.93,
        avg_edges=19.79,
        archetypes=[
            ClassArchetype("clustered", edge_multiplier=1.15, parameter=5.0),
            ClassArchetype("tree", edge_multiplier=0.90, parameter=3.0),
        ],
        num_vertex_labels=7,
    ),
    "NCI1": SyntheticDatasetSpec(
        name="NCI1",
        num_graphs=4110,
        num_classes=2,
        avg_vertices=29.87,
        avg_edges=32.30,
        archetypes=[
            ClassArchetype("tree", edge_multiplier=1.05, parameter=3.0),
            ClassArchetype("scalefree", edge_multiplier=0.97, parameter=1.0),
        ],
        num_vertex_labels=37,
        # NCI1 is the hardest structure-only dataset in the paper: heavy
        # class overlap keeps all structure-only methods well below the
        # label-aware state of the art.
        class_overlap=0.35,
    ),
    "PROTEINS": SyntheticDatasetSpec(
        name="PROTEINS",
        num_graphs=1113,
        num_classes=2,
        avg_vertices=39.06,
        avg_edges=72.82,
        archetypes=[
            ClassArchetype("clustered", edge_multiplier=1.05, parameter=5.0),
            ClassArchetype("smallworld", edge_multiplier=0.95, parameter=0.10),
        ],
        num_vertex_labels=3,
    ),
    "PTC_FM": SyntheticDatasetSpec(
        name="PTC_FM",
        num_graphs=349,
        num_classes=2,
        avg_vertices=14.11,
        avg_edges=14.48,
        archetypes=[
            ClassArchetype("clustered", edge_multiplier=1.10, parameter=4.0),
            ClassArchetype("tree", edge_multiplier=0.92, parameter=2.0),
        ],
        num_vertex_labels=18,
    ),
}


def _sample_vertex_count(
    spec: SyntheticDatasetSpec, rng: np.random.Generator
) -> int:
    """Sample a graph size around the dataset average with a lognormal-ish spread."""
    spread = spec.vertex_count_spread
    factor = float(np.exp(rng.normal(0.0, spread)))
    return max(4, int(round(spec.avg_vertices * factor)))


def _densify_to_target(
    graph: Graph, target_edges: int, rng: np.random.Generator
) -> Graph:
    """Add uniformly random extra edges until the graph reaches ``target_edges``."""
    n = graph.num_vertices
    if n < 2:
        return graph
    max_edges = n * (n - 1) // 2
    target = min(target_edges, max_edges)
    attempts = 0
    limit = 20 * max(target, 1)
    while graph.num_edges < target and attempts < limit:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        attempts += 1
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def _generate_archetype_graph(
    archetype: ClassArchetype,
    num_vertices: int,
    target_edges: int,
    rng: np.random.Generator,
) -> Graph:
    """Generate one graph of the given archetype with roughly ``target_edges`` edges."""
    n = num_vertices
    kind = archetype.kind
    if kind == "tree":
        graph = tree_graph(n, max_children=int(max(archetype.parameter, 1)), rng=rng)
    elif kind == "clustered":
        clique_size = int(max(archetype.parameter, 3))
        num_cliques = max(n // clique_size, 1)
        graph = ring_of_cliques_graph(num_cliques, clique_size, rng=rng)
        # Trim or pad to the requested vertex count by regenerating the target
        # count relative to what the clique construction produced.
        if graph.num_vertices != n:
            extra = Graph(n)
            for u, v in graph.edges():
                if u < n and v < n:
                    extra.add_edge(u, v)
            graph = extra
    elif kind == "smallworld":
        average_degree = max(int(round(2 * target_edges / max(n, 1))), 2)
        graph = watts_strogatz_graph(
            n, average_degree, float(archetype.parameter), rng=rng
        )
    elif kind == "scalefree":
        attachment = max(int(archetype.parameter), 1)
        graph = barabasi_albert_graph(n, attachment, rng=rng)
    elif kind == "communities":
        communities = max(int(archetype.parameter), 1)
        base_size = max(n // communities, 1)
        sizes = [base_size] * communities
        sizes[0] += n - base_size * communities
        density = target_edges / max(n * (n - 1) / 2, 1)
        graph = planted_partition_graph(
            sizes,
            p_within=min(4.0 * density, 0.9),
            p_between=min(0.3 * density, 0.5),
            rng=rng,
        )
    elif kind == "random":
        density = target_edges / max(n * (n - 1) / 2, 1)
        graph = erdos_renyi_graph(n, min(density, 1.0), rng=rng)
    else:
        raise ValueError(f"unknown archetype kind: {kind!r}")
    return _densify_to_target(graph, target_edges, rng)


def make_benchmark_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int | None = 0,
) -> GraphDataset:
    """Generate the synthetic stand-in for one of the six Table I datasets.

    Parameters
    ----------
    name:
        One of ``"DD"``, ``"ENZYMES"``, ``"MUTAG"``, ``"NCI1"``, ``"PROTEINS"``,
        ``"PTC_FM"`` (case-insensitive).
    scale:
        Fraction of the original number of graphs to generate; 1.0 reproduces
        the Table I graph count, smaller values give proportionally smaller
        datasets for quick experiments and CI-sized benchmark runs.
    seed:
        Seed of the generation; the same seed always yields the same dataset.
    """
    key = name.upper()
    if key not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    spec = DATASET_SPECS[key]
    rng = np.random.default_rng(seed)

    num_graphs = max(int(round(spec.num_graphs * scale)), spec.num_classes * 2)
    edges_per_vertex = spec.avg_edges / spec.avg_vertices

    graphs: list[Graph] = []
    for index in range(num_graphs):
        class_label = index % spec.num_classes
        archetype_label = class_label
        if spec.num_classes > 1 and rng.random() < spec.class_overlap:
            # Structural overlap between classes: the graph keeps its label
            # but is drawn from another class's archetype, mimicking the
            # irreducible error of the real benchmarks.
            alternatives = [c for c in range(spec.num_classes) if c != class_label]
            archetype_label = int(rng.choice(alternatives))
        archetype = (
            spec.archetypes[archetype_label]
            if spec.archetypes
            else ClassArchetype("random")
        )
        num_vertices = _sample_vertex_count(spec, rng)
        jitter = float(np.exp(rng.normal(0.0, spec.parameter_jitter)))
        target_edges = max(
            int(
                round(
                    num_vertices * edges_per_vertex * archetype.edge_multiplier * jitter
                )
            ),
            1,
        )
        graph = _generate_archetype_graph(archetype, num_vertices, target_edges, rng)
        graph.graph_label = class_label
        if spec.num_vertex_labels > 0:
            # Assign categorical vertex labels correlated with degree so that
            # the label-aware GraphHD extension has a signal to exploit.
            degrees = graph.degrees()
            labels = (degrees + rng.integers(0, 2, size=graph.num_vertices)) % max(
                spec.num_vertex_labels, 1
            )
            graph.vertex_labels = [int(label) for label in labels]
        graphs.append(graph)

    order = rng.permutation(len(graphs))
    return GraphDataset(spec.name, [graphs[index] for index in order])


def make_all_benchmark_datasets(
    *, scale: float = 1.0, seed: int | None = 0
) -> dict[str, GraphDataset]:
    """Generate all six synthetic benchmark datasets keyed by name."""
    return {
        name: make_benchmark_dataset(name, scale=scale, seed=seed)
        for name in DATASET_SPECS
    }


def make_scaling_dataset(
    num_vertices: int,
    *,
    num_graphs: int = 100,
    edge_probability: float = 0.05,
    seed: int | None = 0,
) -> GraphDataset:
    """Dataset for the Figure 4 scaling experiment.

    100 Erdős–Rényi graphs with the requested vertex count, evenly split over
    two classes, edge probability 0.05 — as described in Section V-B.  A small
    density contrast between the classes provides a learnable signal without
    affecting the timing profile being measured.
    """
    if num_vertices <= 0:
        raise ValueError(f"num_vertices must be positive, got {num_vertices}")
    if num_graphs < 2:
        raise ValueError(f"num_graphs must be at least 2, got {num_graphs}")
    rng = np.random.default_rng(seed)
    graphs = []
    for index in range(num_graphs):
        class_label = index % 2
        probability = edge_probability * (1.15 if class_label == 1 else 0.85)
        graph = erdos_renyi_graph(
            num_vertices, min(probability, 1.0), rng=rng, graph_label=class_label
        )
        graphs.append(graph)
    order = rng.permutation(num_graphs)
    return GraphDataset(
        f"ER-{num_vertices}", [graphs[index] for index in order]
    )
