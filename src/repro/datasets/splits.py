"""Cross-validation splits.

The paper evaluates every method with 10-fold cross validation (averaged over
3 repetitions) because the datasets contain relatively few graphs.  The
stratified K-fold splitter here mirrors the standard TUDataset evaluation
protocol: folds preserve the class proportions as closely as possible and
every graph appears in exactly one test fold.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

import numpy as np


class StratifiedKFold:
    """Stratified K-fold splitter over a sequence of class labels.

    Parameters
    ----------
    n_splits:
        Number of folds (the paper uses 10).
    shuffle:
        Whether to shuffle samples within each class before assigning folds.
    seed:
        Seed for the shuffle.
    """

    def __init__(self, n_splits: int = 10, *, shuffle: bool = True, seed: int | None = 0):
        if n_splits < 2:
            raise ValueError(f"n_splits must be at least 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(
        self, labels: Sequence[Hashable]
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs for each fold.

        Raises ``ValueError`` if any class has fewer samples than folds, since
        stratification would then be impossible.
        """
        labels = list(labels)
        if len(labels) < self.n_splits:
            raise ValueError(
                f"cannot split {len(labels)} samples into {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.seed)

        indices_by_class: dict[Hashable, list[int]] = {}
        for index, label in enumerate(labels):
            indices_by_class.setdefault(label, []).append(index)

        for label, indices in indices_by_class.items():
            if len(indices) < self.n_splits:
                raise ValueError(
                    f"class {label!r} has only {len(indices)} samples, "
                    f"fewer than n_splits={self.n_splits}"
                )

        fold_of_sample = np.empty(len(labels), dtype=np.int64)
        for label, indices in indices_by_class.items():
            indices = np.array(indices)
            if self.shuffle:
                rng.shuffle(indices)
            fold_assignment = np.arange(len(indices)) % self.n_splits
            fold_of_sample[indices] = fold_assignment

        all_indices = np.arange(len(labels))
        for fold in range(self.n_splits):
            test_mask = fold_of_sample == fold
            yield all_indices[~test_mask], all_indices[test_mask]

    def get_n_splits(self) -> int:
        """Number of folds this splitter produces."""
        return self.n_splits


def train_test_split(
    labels: Sequence[Hashable],
    *,
    test_fraction: float = 0.2,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Single stratified train/test split.

    Each class contributes approximately ``test_fraction`` of its samples to
    the test set (at least one sample per class goes to each side when the
    class has two or more samples).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    labels = list(labels)
    rng = np.random.default_rng(seed)

    indices_by_class: dict[Hashable, list[int]] = {}
    for index, label in enumerate(labels):
        indices_by_class.setdefault(label, []).append(index)

    train_indices: list[int] = []
    test_indices: list[int] = []
    for indices in indices_by_class.values():
        indices = np.array(indices)
        rng.shuffle(indices)
        test_count = int(round(len(indices) * test_fraction))
        if len(indices) >= 2:
            test_count = min(max(test_count, 1), len(indices) - 1)
        else:
            test_count = 0
        test_indices.extend(indices[:test_count].tolist())
        train_indices.extend(indices[test_count:].tolist())

    return np.array(sorted(train_indices)), np.array(sorted(test_indices))
