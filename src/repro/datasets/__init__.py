"""Dataset substrate: TUDataset-format I/O, synthetic benchmarks, CV splits.

The paper evaluates on six datasets from the TUDataset collection (DD,
ENZYMES, MUTAG, NCI1, PROTEINS, PTC_FM).  Because this reproduction runs
offline, :mod:`repro.datasets.synthetic` generates datasets matching the
Table I statistics with a class-dependent structural signal, while
:mod:`repro.datasets.tudataset` can read/write the real TUDataset text format
so the harness runs unmodified on the original files when they are available.
"""

from repro.datasets.dataset import GraphDataset, graphs_fingerprint
from repro.datasets.splits import StratifiedKFold, train_test_split
from repro.datasets.synthetic import (
    DATASET_SPECS,
    SyntheticDatasetSpec,
    make_benchmark_dataset,
    make_scaling_dataset,
)
from repro.datasets.tudataset import load_tudataset, save_tudataset
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "GraphDataset",
    "graphs_fingerprint",
    "StratifiedKFold",
    "train_test_split",
    "SyntheticDatasetSpec",
    "DATASET_SPECS",
    "make_benchmark_dataset",
    "make_scaling_dataset",
    "load_tudataset",
    "save_tudataset",
    "available_datasets",
    "load_dataset",
]
