"""The :class:`GraphDataset` container used throughout the library."""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.properties import GraphStatistics, dataset_statistics


def _canonical_label(label):
    """Environment-independent form of a label, for fingerprint hashing.

    numpy scalar reprs changed between numpy 1.x and 2.x (``1`` versus
    ``np.int64(1)``), so hashing ``repr(label)`` directly would fingerprint
    the same dataset differently across environments — silently splitting
    persistent cache keys.  numpy scalars are unwrapped to the equivalent
    Python scalar (they compare and hash equal to it, so they also encode
    identically), and containers are canonicalized element-wise.
    """
    if isinstance(label, np.generic):
        return label.item()
    if isinstance(label, (list, tuple)):
        return tuple(_canonical_label(item) for item in label)
    return label


def graphs_fingerprint(graphs: Sequence[Graph]) -> str:
    """Stable content hash of a sequence of graphs.

    The fingerprint covers everything an encoder can read — vertex counts,
    the cached edge arrays (in their stored order), graph labels and any
    vertex/edge labels — so two graph sequences share a fingerprint exactly
    when every encoder produces identical encodings for both.  It is stable
    across processes, interpreter runs (no ``hash()`` randomization) and
    numpy versions (labels are canonicalized before hashing; see
    :func:`_canonical_label`), which makes it usable as part of a persistent
    cache key; see :mod:`repro.eval.encoding_store`.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-graphs-fingerprint-v2")
    digest.update(len(graphs).to_bytes(8, "little"))
    for graph in graphs:
        digest.update(b"G")
        digest.update(int(graph.num_vertices).to_bytes(8, "little"))
        sources, targets = graph.edge_arrays()
        digest.update(np.ascontiguousarray(sources, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(targets, dtype=np.int64).tobytes())
        digest.update(repr(_canonical_label(graph.graph_label)).encode("utf-8"))
        if graph.vertex_labels is not None:
            digest.update(b"V")
            digest.update(
                repr(
                    [_canonical_label(label) for label in graph.vertex_labels]
                ).encode("utf-8")
            )
        if graph.edge_labels:
            digest.update(b"E")
            digest.update(
                repr(
                    sorted(
                        (edge, _canonical_label(label))
                        for edge, label in graph.edge_labels.items()
                    )
                ).encode("utf-8")
            )
    return digest.hexdigest()


class GraphDataset:
    """An ordered collection of graphs with classification labels.

    The labels are read from each graph's ``graph_label`` attribute; every
    graph in a dataset must be labelled.
    """

    def __init__(self, name: str, graphs: Sequence[Graph]) -> None:
        graphs = list(graphs)
        if not graphs:
            raise ValueError("a dataset must contain at least one graph")
        for index, graph in enumerate(graphs):
            if graph.graph_label is None:
                raise ValueError(f"graph at index {index} has no graph_label")
        self.name = name
        self.graphs = graphs

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.graphs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return GraphDataset(self.name, self.graphs[index])
        return self.graphs[index]

    @property
    def labels(self) -> list[Hashable]:
        """Class label of each graph, in dataset order."""
        return [graph.graph_label for graph in self.graphs]

    @property
    def classes(self) -> list[Hashable]:
        """Distinct class labels, sorted when possible."""
        distinct = set(self.labels)
        try:
            return sorted(distinct)
        except TypeError:
            return list(distinct)

    @property
    def num_classes(self) -> int:
        """Number of distinct class labels."""
        return len(self.classes)

    def class_counts(self) -> dict[Hashable, int]:
        """Number of graphs per class label."""
        counts: dict[Hashable, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def subset(self, indices: Iterable[int]) -> "GraphDataset":
        """Dataset restricted to the graphs at ``indices`` (in the given order)."""
        indices = list(indices)
        if not indices:
            raise ValueError("cannot create an empty subset")
        return GraphDataset(self.name, [self.graphs[index] for index in indices])

    def statistics(self) -> GraphStatistics:
        """Table I statistics of this dataset."""
        return dataset_statistics(self.name, self.graphs)

    def fingerprint(self) -> str:
        """Content hash of the graphs (see :func:`graphs_fingerprint`).

        Computed once and cached; datasets are treated as immutable after
        construction everywhere in the library.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            cached = graphs_fingerprint(self.graphs)
            self._fingerprint_cache = cached
        return cached

    def shuffled(self, rng: int | np.random.Generator | None = None) -> "GraphDataset":
        """A copy of the dataset with graphs in a random order."""
        generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        order = generator.permutation(len(self.graphs))
        return GraphDataset(self.name, [self.graphs[index] for index in order])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GraphDataset(name={self.name!r}, graphs={len(self.graphs)}, "
            f"classes={self.num_classes})"
        )
