"""Reader and writer for the TUDataset text format.

The TUDataset collection (Morris et al., 2020) distributes every dataset as a
set of plain-text files sharing a prefix ``DS``:

* ``DS_A.txt`` — sparse adjacency list, one ``row, col`` pair per line,
  1-based global vertex indices;
* ``DS_graph_indicator.txt`` — line ``i`` holds the (1-based) graph id of
  global vertex ``i``;
* ``DS_graph_labels.txt`` — line ``g`` holds the class label of graph ``g``;
* ``DS_node_labels.txt`` — optional, line ``i`` holds the label of vertex ``i``;
* ``DS_edge_labels.txt`` — optional, line ``k`` holds the label of the ``k``-th
  adjacency entry.

This module parses that format into a :class:`~repro.datasets.dataset.GraphDataset`
and can also write one out, which is how the synthetic benchmark datasets can
be exported for use with other tools (and how the round-trip is tested).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.datasets.dataset import GraphDataset
from repro.graphs.graph import Graph


def _read_lines(path: str) -> list[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


def load_tudataset(directory: str, name: str | None = None) -> GraphDataset:
    """Load a dataset stored in TUDataset format from ``directory``.

    Parameters
    ----------
    directory:
        Directory containing the ``<name>_A.txt`` etc. files.
    name:
        Dataset prefix.  Defaults to the directory's base name, which is the
        layout used by the official TUDataset archives.
    """
    if name is None:
        name = os.path.basename(os.path.normpath(directory))
    prefix = os.path.join(directory, name)

    adjacency_path = f"{prefix}_A.txt"
    indicator_path = f"{prefix}_graph_indicator.txt"
    graph_labels_path = f"{prefix}_graph_labels.txt"
    node_labels_path = f"{prefix}_node_labels.txt"
    edge_labels_path = f"{prefix}_edge_labels.txt"

    for required in (adjacency_path, indicator_path, graph_labels_path):
        if not os.path.exists(required):
            raise FileNotFoundError(f"missing TUDataset file: {required}")

    graph_of_vertex = [int(line) for line in _read_lines(indicator_path)]
    graph_labels = [int(line) for line in _read_lines(graph_labels_path)]
    num_graphs = len(graph_labels)
    if max(graph_of_vertex, default=0) > num_graphs:
        raise ValueError("graph indicator references a graph with no label")

    # Global vertex index -> (graph index, local vertex index).
    vertices_per_graph: list[int] = [0] * num_graphs
    local_index: list[tuple[int, int]] = []
    for graph_id in graph_of_vertex:
        graph_index = graph_id - 1
        local_index.append((graph_index, vertices_per_graph[graph_index]))
        vertices_per_graph[graph_index] += 1

    node_labels = None
    if os.path.exists(node_labels_path):
        node_labels = [int(line) for line in _read_lines(node_labels_path)]
        if len(node_labels) != len(graph_of_vertex):
            raise ValueError("node label count does not match vertex count")

    adjacency_lines = _read_lines(adjacency_path)
    edge_labels = None
    if os.path.exists(edge_labels_path):
        edge_labels = [int(line) for line in _read_lines(edge_labels_path)]
        if len(edge_labels) != len(adjacency_lines):
            raise ValueError("edge label count does not match adjacency entry count")

    per_graph_edges: list[list[tuple[int, int]]] = [[] for _ in range(num_graphs)]
    per_graph_edge_labels: list[dict[tuple[int, int], int]] = [
        {} for _ in range(num_graphs)
    ]
    for entry_index, line in enumerate(adjacency_lines):
        row_text, col_text = line.replace(",", " ").split()
        source = int(row_text) - 1
        target = int(col_text) - 1
        source_graph, source_local = local_index[source]
        target_graph, target_local = local_index[target]
        if source_graph != target_graph:
            raise ValueError(
                f"adjacency entry {entry_index + 1} connects different graphs"
            )
        edge = (min(source_local, target_local), max(source_local, target_local))
        per_graph_edges[source_graph].append(edge)
        if edge_labels is not None:
            per_graph_edge_labels[source_graph][edge] = edge_labels[entry_index]

    graphs = []
    for graph_index in range(num_graphs):
        num_vertices = vertices_per_graph[graph_index]
        vertex_labels = None
        if node_labels is not None:
            vertex_labels = [
                node_labels[global_index]
                for global_index, (owner, _) in enumerate(local_index)
                if owner == graph_index
            ]
        graphs.append(
            Graph(
                num_vertices,
                per_graph_edges[graph_index],
                vertex_labels=vertex_labels,
                edge_labels=per_graph_edge_labels[graph_index]
                if edge_labels is not None
                else None,
                graph_label=graph_labels[graph_index],
            )
        )
    return GraphDataset(name, graphs)


def save_tudataset(dataset: GraphDataset, directory: str, name: str | None = None) -> str:
    """Write ``dataset`` to ``directory`` in TUDataset format.

    Returns the dataset prefix path.  Vertex and edge labels are written only
    when every graph in the dataset carries them.
    """
    if name is None:
        name = dataset.name
    os.makedirs(directory, exist_ok=True)
    prefix = os.path.join(directory, name)

    adjacency_lines: list[str] = []
    indicator_lines: list[str] = []
    graph_label_lines: list[str] = []
    node_label_lines: list[str] = []
    edge_label_lines: list[str] = []

    all_have_vertex_labels = all(graph.vertex_labels is not None for graph in dataset)
    all_have_edge_labels = all(graph.edge_labels is not None for graph in dataset)

    global_offset = 0
    for graph_number, graph in enumerate(dataset, start=1):
        for vertex in range(graph.num_vertices):
            indicator_lines.append(str(graph_number))
            if all_have_vertex_labels:
                node_label_lines.append(str(graph.vertex_labels[vertex]))
        for u, v in graph.edges():
            # TUDataset stores both directions of every undirected edge.
            for source, target in ((u, v), (v, u)):
                adjacency_lines.append(
                    f"{global_offset + source + 1}, {global_offset + target + 1}"
                )
                if all_have_edge_labels:
                    edge_label_lines.append(str(graph.edge_labels[(u, v)]))
        graph_label_lines.append(str(graph.graph_label))
        global_offset += graph.num_vertices

    def _write(path: str, lines: Sequence[str]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    _write(f"{prefix}_A.txt", adjacency_lines)
    _write(f"{prefix}_graph_indicator.txt", indicator_lines)
    _write(f"{prefix}_graph_labels.txt", graph_label_lines)
    if all_have_vertex_labels:
        _write(f"{prefix}_node_labels.txt", node_label_lines)
    if all_have_edge_labels:
        _write(f"{prefix}_edge_labels.txt", edge_label_lines)
    return prefix
