"""Dataset registry: one entry point for real and synthetic benchmark data.

``load_dataset("MUTAG")`` returns the synthetic stand-in by default; if the
environment variable ``GRAPHHD_TUDATASET_ROOT`` points at a directory
containing the real TUDataset folders (e.g. ``$ROOT/MUTAG/MUTAG_A.txt``),
the real data is loaded instead, so the complete benchmark harness can be
re-run on the authors' datasets without code changes.
"""

from __future__ import annotations

import os

from repro.datasets.dataset import GraphDataset
from repro.datasets.synthetic import DATASET_SPECS, make_benchmark_dataset
from repro.datasets.tudataset import load_tudataset

#: Environment variable that points at a directory of real TUDataset folders.
TUDATASET_ROOT_ENV = "GRAPHHD_TUDATASET_ROOT"


def available_datasets() -> list[str]:
    """Names of the benchmark datasets this registry can produce."""
    return sorted(DATASET_SPECS)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int | None = 0,
    prefer_real: bool = True,
) -> GraphDataset:
    """Load a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    scale:
        Fraction of the full dataset size to generate when falling back to the
        synthetic generator; ignored when real data is loaded.
    seed:
        Seed of the synthetic generation.
    prefer_real:
        If True and ``GRAPHHD_TUDATASET_ROOT`` points to a directory containing
        the named dataset in TUDataset format, load the real data.
    """
    key = name.upper()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")

    if prefer_real:
        root = os.environ.get(TUDATASET_ROOT_ENV)
        if root:
            directory = os.path.join(root, key)
            marker = os.path.join(directory, f"{key}_A.txt")
            if os.path.exists(marker):
                return load_tudataset(directory, key)

    return make_benchmark_dataset(key, scale=scale, seed=seed)
