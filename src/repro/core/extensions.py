"""GraphHD extensions sketched in the paper's future-work section.

Section VII of the paper proposes two research directions:

1. trading some of GraphHD's efficiency for accuracy through standard HDC
   techniques such as *retraining* and *multiple class vectors per class*;
2. incorporating vertex/edge *labels and attributes* into the encoding.

All three are implemented here so that the reproduction covers the paper's
optional/extension scope:

* :class:`RetrainedGraphHDClassifier` — GraphHD followed by perceptron-style
  retraining epochs over the encoded training set;
* :class:`MultiCentroidGraphHDClassifier` — splits every class into several
  sub-centroids (clustered by similarity) and predicts the class of the most
  similar sub-centroid;
* :class:`LabelAwareGraphHDEncoder` — an encoder that binds each vertex with a
  hypervector for its categorical label, and each edge with its edge-label
  hypervector when present.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Hashable, Sequence

import numpy as np

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.core.model import GraphHDClassifier
from repro.graphs.graph import Graph
from repro.hdc.classifier import (
    CentroidClassifier,
    RetrainingReport,
    label_class_indices,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.training_state import MergeError, TrainingState


class RetrainedGraphHDClassifier(GraphHDClassifier):
    """GraphHD with perceptron-style retraining (future-work direction 1).

    After the standard Algorithm 1 training pass, the encoded training set is
    replayed for up to ``retrain_epochs`` epochs; each misclassified graph is
    added to its true class vector and subtracted from the predicted one.
    """

    def __init__(
        self,
        config: GraphHDConfig | None = None,
        *,
        metric: str = "cosine",
        retrain_epochs: int = 10,
        learning_rate: float = 1.0,
    ) -> None:
        super().__init__(config, metric=metric)
        if retrain_epochs < 0:
            raise ValueError(f"retrain_epochs must be non-negative, got {retrain_epochs}")
        self.retrain_epochs = int(retrain_epochs)
        self.learning_rate = float(learning_rate)
        self.retraining_report: RetrainingReport | None = None

    def fit(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> "RetrainedGraphHDClassifier":
        graphs = list(graphs)
        labels = list(labels)
        if not graphs:
            raise ValueError("cannot fit on an empty training set")
        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encoding_seconds = time.perf_counter() - encode_start
        self.fit_encoded(encodings, labels)
        # fit_encoded records the pure accumulation cost; fold the (single)
        # encoding pass back into the training decomposition.
        self.timings.encoding_seconds = encoding_seconds
        self.timings.training_seconds += encoding_seconds
        return self

    def fit_encoded(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> "RetrainedGraphHDClassifier":
        labels = list(labels)
        super().fit_encoded(encodings, labels)
        self.retraining_report = self.classifier.retrain(
            encodings,
            labels,
            epochs=self.retrain_epochs,
            learning_rate=self.learning_rate,
        )
        return self


class MultiCentroidGraphHDClassifier:
    """GraphHD with multiple class vectors per class (future-work direction 1).

    The training encodings of each class are partitioned into
    ``centroids_per_class`` groups with a small k-means-style refinement in
    hypervector space (cosine similarity); each group is bundled into its own
    sub-centroid.  Prediction returns the class owning the most similar
    sub-centroid, which lets one class cover several structural modes.
    """

    def __init__(
        self,
        config: GraphHDConfig | None = None,
        *,
        centroids_per_class: int = 2,
        metric: str = "cosine",
        refinement_rounds: int = 5,
        seed: int | None = 0,
    ) -> None:
        if centroids_per_class < 1:
            raise ValueError(
                f"centroids_per_class must be positive, got {centroids_per_class}"
            )
        self.config = config or GraphHDConfig()
        self.centroids_per_class = int(centroids_per_class)
        self.metric = metric
        self.refinement_rounds = int(refinement_rounds)
        self.seed = seed
        self.encoder = GraphHDEncoder(self.config)
        self.backend = self.encoder.backend
        self._centroids: np.ndarray | None = None
        self._centroid_classes: list[Hashable] = []

    @property
    def classes(self) -> list[Hashable]:
        """Distinct class labels seen during fit."""
        seen: list[Hashable] = []
        for label in self._centroid_classes:
            if label not in seen:
                seen.append(label)
        return seen

    @property
    def encoding_cache_safe(self) -> bool:
        """Split-invariance of the encodings; see ``GraphHDClassifier``."""
        return self.config.centrality != "random"

    @property
    def encoding_store_token(self) -> dict | None:
        """Persistent-store identity of the encoding function; see ``GraphHDClassifier``."""
        if self.config.seed is None or not self.encoding_cache_safe:
            return None
        return {
            "encoder": type(self.encoder).__name__,
            "config": dataclasses.asdict(self.config),
        }

    def _cluster_class(
        self, encodings: np.ndarray, rng: np.random.Generator
    ) -> list[tuple[np.ndarray, int]]:
        """Split one class's encodings into ``(accumulator, count)`` sub-centroids."""
        count = encodings.shape[0]
        dimension = self.config.dimension
        clusters = min(self.centroids_per_class, count)
        if clusters <= 1:
            return [(self.backend.accumulate(encodings, dimension), count)]

        # Initialize assignments round-robin, then refine by nearest centroid.
        assignment = np.arange(count) % clusters
        rng.shuffle(assignment)
        for _ in range(self.refinement_rounds):
            accumulators = np.stack(
                [
                    self.backend.accumulate(encodings[assignment == cluster], dimension)
                    if np.any(assignment == cluster)
                    else np.zeros(dimension, dtype=np.int64)
                    for cluster in range(clusters)
                ]
            )
            scores = self.backend.similarity_to_accumulators(
                encodings, accumulators, self.config.dimension, metric=self.metric
            )
            new_assignment = scores.argmax(axis=1)
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
        return [
            (
                self.backend.accumulate(encodings[assignment == cluster], dimension),
                int(np.count_nonzero(assignment == cluster)),
            )
            for cluster in range(clusters)
            if np.any(assignment == cluster)
        ]

    def encode(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Encode graphs with this model's encoder (the encoding-cache hook)."""
        return self.encoder.encode_many(list(graphs))

    def fit(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> "MultiCentroidGraphHDClassifier":
        """Encode the training graphs and build per-class sub-centroids."""
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")
        if not graphs:
            raise ValueError("cannot fit on an empty training set")
        return self.fit_encoded(self.encoder.encode_many(graphs), labels)

    def _state_context(self) -> dict:
        """Merge-compatibility identity, marking the multi-centroid layout."""
        return {
            "encoder": type(self.encoder).__name__,
            "config": dataclasses.asdict(self.config),
            "multi_centroid": {
                "centroids_per_class": self.centroids_per_class,
                "refinement_rounds": self.refinement_rounds,
                "seed": self.seed,
            },
        }

    def fit_state_encoded(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> TrainingState:
        """Cluster pre-encoded graphs into a sub-centroid training state.

        The state's classes are composite ``(label, cluster_index)`` keys, one
        per sub-centroid.  Unlike plain GraphHD training, clustering is *not*
        a monoid: merging two multi-centroid states sums sub-centroids
        index-wise rather than re-clustering jointly, so shard-and-merge is
        deterministic but not bit-identical to single-shot ``fit``.  The state
        is primarily for checkpoint/resume and the unified train/merge API.
        """
        encodings = np.asarray(encodings)
        labels = list(labels)
        if encodings.shape[0] != len(labels):
            raise ValueError("encodings and labels must have the same length")
        if not labels:
            raise ValueError("cannot fit on an empty training set")
        rng = np.random.default_rng(self.seed)
        class_labels, class_ids = label_class_indices(labels)

        state = TrainingState(self.config.dimension, backend=self.backend)
        for index, label in enumerate(class_labels):
            class_encodings = encodings[class_ids == index]
            for cluster, (accumulator, count) in enumerate(
                self._cluster_class(class_encodings, rng)
            ):
                state.add_accumulator((label, cluster), accumulator, count)
        state.context = self._state_context()
        return state

    def fit_state(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> TrainingState:
        """Encode graphs and cluster them into a sub-centroid training state."""
        return self.fit_state_encoded(self.encoder.encode_many(list(graphs)), labels)

    def fit_from_state(self, state: TrainingState) -> "MultiCentroidGraphHDClassifier":
        """Install a sub-centroid training state produced by :meth:`fit_state`.

        Raises :class:`~repro.hdc.training_state.MergeError` when the state
        was produced under a different encoder config or centroid layout.
        """
        expected = self._state_context()
        if state.context is not None and state.context != expected:
            raise MergeError(
                "training state is not compatible with this classifier: "
                f"expected context {expected!r}, found {state.context!r}"
            )
        centroids: list[np.ndarray] = []
        centroid_classes: list[Hashable] = []
        for key in state.classes:
            label, _cluster = key
            centroids.append(state.accumulator(key))
            centroid_classes.append(label)
        if not centroids:
            raise ValueError("cannot fit from an empty training state")
        self._centroids = np.stack(centroids)
        self._centroid_classes = centroid_classes
        return self

    def fit_encoded(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> "MultiCentroidGraphHDClassifier":
        """Build per-class sub-centroids from pre-encoded graphs."""
        return self.fit_from_state(self.fit_state_encoded(encodings, labels))

    def predict(self, graphs: Sequence[Graph]) -> list[Hashable]:
        """Predict the class owning the most similar sub-centroid."""
        if self._centroids is None:
            raise RuntimeError("classifier has not been fitted")
        graphs = list(graphs)
        if not graphs:
            return []
        return self.predict_encoded(self.encoder.encode_many(graphs))

    def predict_encoded(
        self, encodings: Sequence[np.ndarray] | np.ndarray
    ) -> list[Hashable]:
        """Predict from pre-encoded graphs against the sub-centroids."""
        if self._centroids is None:
            raise RuntimeError("classifier has not been fitted")
        encodings = np.asarray(encodings)
        if encodings.shape[0] == 0:
            return []
        scores = self.backend.similarity_to_accumulators(
            encodings, self._centroids, self.config.dimension, metric=self.metric
        )
        winners = scores.argmax(axis=1)
        return [self._centroid_classes[int(index)] for index in winners]

    def score(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> float:
        """Classification accuracy on labelled graphs.

        Raises ``ValueError`` on a graphs/labels length mismatch instead of
        silently truncating the longer side.
        """
        graphs = list(graphs)
        labels = list(labels)
        if not labels:
            raise ValueError("cannot score an empty set of graphs")
        if len(graphs) != len(labels):
            raise ValueError(
                "graphs and labels must have the same length: got "
                f"{len(graphs)} graphs and {len(labels)} labels"
            )
        predictions = self.predict(graphs)
        correct = sum(
            1 for predicted, actual in zip(predictions, labels) if predicted == actual
        )
        return correct / len(labels)


class LabelAwareGraphHDEncoder(GraphHDEncoder):
    """GraphHD encoder that also uses vertex and edge labels (future work 2).

    Structural edge hypervectors are additionally bound with a hypervector for
    the *unordered pair* of endpoint vertex labels (and, when present, with a
    hypervector for the edge's own label).  Binding the endpoint labels
    individually would not work: binding is its own inverse, so two identical
    endpoint labels would cancel out of the edge hypervector and a uniformly
    relabelled graph would encode exactly like the unlabelled one.  Using the
    label *pair* keeps the label information for homogeneous and heterogeneous
    edges alike.  Graphs without labels degrade gracefully to the structural
    encoding.
    """

    def __init__(self, config: GraphHDConfig | None = None) -> None:
        super().__init__(config)
        label_seed = None if self.config.seed is None else self.config.seed + 101
        edge_label_seed = None if self.config.seed is None else self.config.seed + 202
        self._vertex_label_pair_memory = ItemMemory(
            self.config.dimension, seed=label_seed, backend=self.backend
        )
        self._edge_label_memory = ItemMemory(
            self.config.dimension, seed=edge_label_seed, backend=self.backend
        )

    def _edge_accumulator(
        self, graph: Graph, vertex_hypervectors: np.ndarray
    ) -> np.ndarray:
        # Label binding is inherently per-edge, so the label-aware encoder
        # falls back to summing explicit edge hypervectors.  Unlabelled graphs
        # keep the fast sparse-matrix path of the base encoder.
        if graph.vertex_labels is None and graph.edge_labels is None:
            return super()._edge_accumulator(graph, vertex_hypervectors)
        edge_hypervectors = self.encode_edges(graph, vertex_hypervectors)
        if edge_hypervectors.shape[0] == 0:
            return np.zeros(self.config.dimension, dtype=np.int64)
        return self.backend.accumulate(edge_hypervectors, self.config.dimension)

    def encode_edges(
        self, graph: Graph, vertex_hypervectors: np.ndarray | None = None
    ) -> np.ndarray:
        edge_hypervectors = super().encode_edges(graph, vertex_hypervectors)
        if edge_hypervectors.shape[0] == 0:
            return edge_hypervectors
        edges = graph.edges()
        combined = edge_hypervectors

        if graph.vertex_labels is not None:
            pair_keys = []
            for u, v in edges:
                label_u = graph.vertex_labels[u]
                label_v = graph.vertex_labels[v]
                low, high = sorted((str(label_u), str(label_v)))
                pair_keys.append((low, high))
            pair_hypervectors = self._vertex_label_pair_memory.get_many(pair_keys)
            combined = self.backend.bind(combined, pair_hypervectors)

        if graph.edge_labels is not None:
            labels = [graph.edge_labels.get(edge) for edge in edges]
            if all(label is not None for label in labels):
                label_hypervectors = self._edge_label_memory.get_many(labels)
                combined = self.backend.bind(combined, label_hypervectors)

        return combined
