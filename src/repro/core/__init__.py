"""GraphHD: the paper's primary contribution.

* :mod:`repro.core.encoding` — the GraphHD graph encoder: PageRank-centrality
  ranks identify vertices across graphs, edges are encoded by binding the two
  endpoint hypervectors, and the graph hypervector is the bundle of its edge
  hypervectors (Section IV of the paper).
* :mod:`repro.core.model` — the GraphHD classifier implementing Algorithm 1
  (training) and nearest-class-vector inference.
* :mod:`repro.core.extensions` — the future-work extensions sketched by the
  paper: perceptron-style retraining, multiple class vectors per class, and a
  label-aware encoding that incorporates vertex labels.
"""

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.core.model import GraphHDClassifier
from repro.core.extensions import (
    LabelAwareGraphHDEncoder,
    MultiCentroidGraphHDClassifier,
    RetrainedGraphHDClassifier,
)

__all__ = [
    "GraphHDConfig",
    "GraphHDEncoder",
    "GraphHDClassifier",
    "RetrainedGraphHDClassifier",
    "MultiCentroidGraphHDClassifier",
    "LabelAwareGraphHDEncoder",
]
