"""The GraphHD classifier (Algorithm 1 of the paper + inference).

Training bundles the graph hypervectors of every training graph into one
class hypervector per class; inference encodes the query graph with the same
encoder and predicts the class whose hypervector is most similar (cosine
similarity by default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.graphs.graph import Graph
from repro.hdc.classifier import CentroidClassifier


@dataclass
class GraphHDTimings:
    """Wall-clock breakdown of the last fit/predict calls (seconds)."""

    encoding_seconds: float = 0.0
    training_seconds: float = 0.0
    inference_seconds: float = 0.0


class GraphHDClassifier:
    """End-to-end GraphHD graph classifier.

    Parameters
    ----------
    config:
        Encoder configuration; defaults to the paper's settings
        (d = 10,000 bipolar, PageRank identifiers with 10 iterations).
    metric:
        Similarity metric used for inference; the paper uses cosine similarity.
    """

    def __init__(
        self,
        config: GraphHDConfig | None = None,
        *,
        metric: str = "cosine",
    ) -> None:
        self.config = config or GraphHDConfig()
        self.metric = metric
        self.encoder = GraphHDEncoder(self.config)
        self.classifier = CentroidClassifier(self.config.dimension, metric=metric)
        self.timings = GraphHDTimings()

    # ------------------------------------------------------------------ train
    def fit(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> "GraphHDClassifier":
        """Train class hypervectors from labelled graphs (Algorithm 1)."""
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")
        if not graphs:
            raise ValueError("cannot fit on an empty training set")

        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encode_end = time.perf_counter()
        self.classifier.fit(encodings, labels)
        train_end = time.perf_counter()

        self.timings.encoding_seconds = encode_end - encode_start
        self.timings.training_seconds = train_end - encode_start
        return self

    def partial_fit(self, graph: Graph, label: Hashable) -> None:
        """Online update with a single labelled graph."""
        encoding = self.encoder.encode(graph)
        self.classifier.partial_fit(encoding, label)

    # -------------------------------------------------------------- inference
    @property
    def classes(self) -> list[Hashable]:
        """Class labels known to the classifier."""
        return self.classifier.classes

    def encode(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Encode graphs with the trained encoder (exposed for inspection/tests)."""
        return self.encoder.encode_many(list(graphs))

    def decision_scores(
        self, graphs: Sequence[Graph]
    ) -> tuple[np.ndarray, list[Hashable]]:
        """Similarity of each graph to every class hypervector."""
        encodings = self.encoder.encode_many(list(graphs))
        return self.classifier.decision_scores(encodings)

    def predict(self, graphs: Sequence[Graph]) -> list[Hashable]:
        """Predict the class of each graph."""
        graphs = list(graphs)
        if not graphs:
            return []
        start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        predictions = self.classifier.predict(encodings)
        self.timings.inference_seconds = time.perf_counter() - start
        return predictions

    def predict_one(self, graph: Graph) -> Hashable:
        """Predict the class of a single graph."""
        return self.predict([graph])[0]

    def score(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> float:
        """Classification accuracy on labelled graphs."""
        labels = list(labels)
        if not labels:
            raise ValueError("cannot score an empty set of graphs")
        predictions = self.predict(graphs)
        correct = sum(
            1 for predicted, actual in zip(predictions, labels) if predicted == actual
        )
        return correct / len(labels)
