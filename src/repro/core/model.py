"""The GraphHD classifier (Algorithm 1 of the paper + inference).

Training bundles the graph hypervectors of every training graph into one
class hypervector per class; inference encodes the query graph with the same
encoder and predicts the class whose hypervector is most similar (cosine
similarity by default).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.graphs.graph import Graph
from repro.hdc.classifier import CentroidClassifier
from repro.hdc.training_state import MergeError, TrainingState
from repro.hdc.training_state import object_vector as _object_vector


@dataclass
class GraphHDTimings:
    """Wall-clock breakdown of the fit/partial_fit/predict calls (seconds).

    ``training_seconds`` is the end-to-end training wall-time and, right
    after ``fit``, decomposes exactly into ``encoding_seconds`` (graph ->
    hypervector encoding) plus ``accumulation_seconds`` (pure class-vector
    accumulation), so the Figure 3 timing benchmarks can attribute cost to
    the right stage.  ``fit`` overwrites the three training fields;
    ``partial_fit`` adds its per-sample cost onto them.

    ``inference_seconds`` records the pure similarity-search cost of the
    last ``predict``/``predict_encoded`` call — both paths agree.  The
    encode cost of a ``predict`` over raw graphs is booked onto
    ``encoding_seconds`` instead, so a serving layer reading this breakdown
    decomposes request latency honestly (encode vs. similarity).
    """

    encoding_seconds: float = 0.0
    accumulation_seconds: float = 0.0
    training_seconds: float = 0.0
    inference_seconds: float = 0.0


class GraphHDClassifier:
    """End-to-end GraphHD graph classifier.

    Parameters
    ----------
    config:
        Encoder configuration; defaults to the paper's settings
        (d = 10,000 bipolar, PageRank identifiers with 10 iterations).
    metric:
        Similarity metric used for inference; the paper uses cosine similarity.
    """

    def __init__(
        self,
        config: GraphHDConfig | None = None,
        *,
        metric: str = "cosine",
    ) -> None:
        self.config = config or GraphHDConfig()
        self.metric = metric
        self.encoder = GraphHDEncoder(self.config)
        self.backend = self.encoder.backend
        self.classifier = CentroidClassifier(
            self.config.dimension, metric=metric, backend=self.backend
        )
        self.timings = GraphHDTimings()

    # ------------------------------------------------------------------ train
    def _state_context(self) -> dict:
        """Merge-compatibility identity stamped onto every exported state.

        Covers the encoder class and the *full* configuration, so two
        training states only merge when their encodings live in the same
        vector space (same basis seed, centrality, dimension, backend, ...).
        """
        return {
            "encoder": type(self.encoder).__name__,
            "config": asdict(self.config),
        }

    def fit_state(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> TrainingState:
        """Encode and accumulate labelled graphs into a mergeable state.

        The map half of sharded map-reduce training: the returned
        :class:`TrainingState` does not touch this model's class vectors —
        install it (or a merge of several shard states) with
        :meth:`fit_from_state`.  The state is stamped with this model's
        encoder context, so merging states from differently configured
        encoders raises :class:`~repro.hdc.training_state.MergeError`.
        ``timings`` records the encode/accumulate decomposition of this call.
        """
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")
        if not graphs:
            raise ValueError("cannot fit on an empty training set")

        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encode_end = time.perf_counter()
        state = self.classifier.fit_state(encodings, labels)
        state.context = self._state_context()
        train_end = time.perf_counter()

        self.timings.encoding_seconds = encode_end - encode_start
        self.timings.accumulation_seconds = train_end - encode_end
        self.timings.training_seconds = train_end - encode_start
        return state

    def fit_state_encoded(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> TrainingState:
        """Accumulate pre-encoded graphs into a mergeable state.

        Counterpart of :meth:`fit_state` for callers holding cached
        encodings (the evaluation harness, the sharded driver with an
        encoding store).  The encodings must come from an encoder with this
        model's configuration.
        """
        encodings = np.asarray(encodings)
        labels = list(labels)
        if encodings.shape[0] != len(labels):
            raise ValueError("encodings and labels must have the same length")
        if not labels:
            raise ValueError("cannot fit on an empty training set")

        train_start = time.perf_counter()
        state = self.classifier.fit_state(encodings, labels)
        state.context = self._state_context()
        train_end = time.perf_counter()

        self.timings.encoding_seconds = 0.0
        self.timings.accumulation_seconds = train_end - train_start
        self.timings.training_seconds = train_end - train_start
        return state

    def fit_from_state(self, state: TrainingState) -> "GraphHDClassifier":
        """Merge a training state's class vectors into this model.

        The reduce half of map-reduce training, and the resume primitive for
        continual ingestion: a freshly constructed (or loaded) model absorbs
        any compatible state.  Raises
        :class:`~repro.hdc.training_state.MergeError` when the state was
        produced by a differently configured encoder (or on dimension /
        backend mismatch).  The merge cost is added onto the accumulation
        timing fields.
        """
        expected = self._state_context()
        if state.context is not None and state.context != expected:
            raise MergeError(
                "training state was produced by a differently configured "
                f"encoder: expected context {expected!r}, found "
                f"{state.context!r}"
            )
        start = time.perf_counter()
        self.classifier.fit_from_state(state)
        elapsed = time.perf_counter() - start
        self.timings.accumulation_seconds += elapsed
        self.timings.training_seconds += elapsed
        return self

    def export_state(self) -> TrainingState:
        """A deep copy of this model's training state, context-stamped.

        The exported state is independent of the model (merging or
        accumulating into it never mutates these class vectors) and carries
        the encoder context, so it can be saved, shipped and merged by
        :class:`~repro.eval.sharded` drivers or a compatible model's
        :meth:`fit_from_state`.
        """
        state = self.classifier.memory.export_state()
        state.context = self._state_context()
        return state

    def fit(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> "GraphHDClassifier":
        """Train class hypervectors from labelled graphs (Algorithm 1)."""
        state = self.fit_state(graphs, labels)
        merge_start = time.perf_counter()
        self.classifier.fit_from_state(state)
        merge_seconds = time.perf_counter() - merge_start
        self.timings.accumulation_seconds += merge_seconds
        self.timings.training_seconds += merge_seconds
        return self

    def fit_encoded(
        self,
        encodings: Sequence[np.ndarray] | np.ndarray,
        labels: Sequence[Hashable],
    ) -> "GraphHDClassifier":
        """Train class hypervectors from pre-encoded graphs.

        GraphHD training is just a class-wise sum of graph encodings, so the
        evaluation protocol can encode a dataset once and re-fit every
        cross-validation fold from cached encodings.  The encodings must come
        from an encoder with this model's configuration (``self.encode`` or
        an identically configured one); training then produces exactly the
        class vectors that :meth:`fit` would.  ``timings`` records the pure
        accumulation cost (``encoding_seconds`` stays 0).
        """
        state = self.fit_state_encoded(encodings, labels)
        merge_start = time.perf_counter()
        self.classifier.fit_from_state(state)
        merge_seconds = time.perf_counter() - merge_start
        self.timings.accumulation_seconds += merge_seconds
        self.timings.training_seconds += merge_seconds
        return self

    def partial_fit(self, graph: Graph, label: Hashable) -> None:
        """Online update with a single labelled graph.

        The per-sample encoding and accumulation costs are added onto the
        corresponding timing fields.
        """
        self.partial_fit_many([graph], [label])

    def partial_fit_many(
        self, graphs: Sequence[Graph], labels: Sequence[Hashable]
    ) -> None:
        """Online update with a batch of labelled graphs.

        Batched counterpart of :meth:`partial_fit` — identical class vectors
        (integer accumulation commutes), but the batch pays the flat-batch
        encoder and the segmented accumulation kernel once.  The batch costs
        are added onto the corresponding timing fields.
        """
        graphs = list(graphs)
        labels = list(labels)
        if len(graphs) != len(labels):
            raise ValueError("graphs and labels must have the same length")
        if not graphs:
            return

        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encode_end = time.perf_counter()
        self.classifier.partial_fit_many(encodings, labels)
        train_end = time.perf_counter()

        self.timings.encoding_seconds += encode_end - encode_start
        self.timings.accumulation_seconds += train_end - encode_end
        self.timings.training_seconds += train_end - encode_start

    # -------------------------------------------------------------- inference
    @property
    def classes(self) -> list[Hashable]:
        """Class labels known to the classifier."""
        return self.classifier.classes

    @property
    def encoding_cache_safe(self) -> bool:
        """Whether encodings are split-invariant (safe to cache per dataset).

        True for every deterministic centrality: a graph then encodes
        identically whether it is encoded alone, inside any batch, or by a
        fresh identically-configured model.  The ``"random"`` centrality
        draws per-graph identifiers from a stream, so its encodings depend
        on how the evaluation groups the graphs — caching would silently
        change (not just reorder) results.
        """
        return self.config.centrality != "random"

    @property
    def encoding_store_token(self) -> dict | None:
        """Stable identity of the encoding function, for the persistent store.

        The token, combined with a dataset fingerprint, keys the on-disk
        encoding cache (:mod:`repro.eval.encoding_store`): it covers the
        encoder class and the full configuration, so any change that alters
        encodings (dimension, seed, centrality, backend, ...) changes the
        key.  None — vetoing persistence — when encodings are not
        reproducible across processes: unseeded configurations draw a fresh
        basis per process, and the ``"random"`` centrality ablation consumes
        a random stream per encoded batch.
        """
        if self.config.seed is None or not self.encoding_cache_safe:
            return None
        return {
            "encoder": type(self.encoder).__name__,
            "config": asdict(self.config),
        }

    def encode(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Encode graphs with the trained encoder (exposed for inspection/tests)."""
        return self.encoder.encode_many(list(graphs))

    def decision_scores(
        self, graphs: Sequence[Graph]
    ) -> tuple[np.ndarray, list[Hashable]]:
        """Similarity of each graph to every class hypervector."""
        encodings = self.encoder.encode_many(list(graphs))
        return self.classifier.decision_scores(encodings)

    def predict(self, graphs: Sequence[Graph]) -> list[Hashable]:
        """Predict the class of each graph.

        Ties between equally similar classes break deterministically toward
        the earliest-trained class (see :meth:`CentroidClassifier.predict`).
        The encode cost is added onto ``timings.encoding_seconds`` and
        ``timings.inference_seconds`` records the pure similarity-search
        time, exactly as :meth:`predict_encoded` would.
        """
        graphs = list(graphs)
        if not graphs:
            return []
        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encode_end = time.perf_counter()
        predictions = self.classifier.predict(encodings)
        self.timings.encoding_seconds += encode_end - encode_start
        self.timings.inference_seconds = time.perf_counter() - encode_end
        return predictions

    def predict_topk(
        self, graphs: Sequence[Graph], k: int = 1
    ) -> list[list[tuple[Hashable, float]]]:
        """Top-``k`` (label, similarity) pairs for each graph.

        Backed by :meth:`decision_scores` with the same ranking and tie rule
        as :meth:`predict` (the leading pair of every row is the ``predict``
        winner); timing bookkeeping matches :meth:`predict`.
        """
        graphs = list(graphs)
        if not graphs:
            return []
        encode_start = time.perf_counter()
        encodings = self.encoder.encode_many(graphs)
        encode_end = time.perf_counter()
        results = self.classifier.predict_topk(encodings, k)
        self.timings.encoding_seconds += encode_end - encode_start
        self.timings.inference_seconds = time.perf_counter() - encode_end
        return results

    def predict_topk_encoded(
        self, encodings: Sequence[np.ndarray] | np.ndarray, k: int = 1
    ) -> list[list[tuple[Hashable, float]]]:
        """Top-``k`` (label, similarity) pairs for each pre-encoded graph.

        The serving hot path: one similarity pass yields both the winner and
        the ranked top-``k``; ``timings.inference_seconds`` records the pure
        similarity-search cost.
        """
        encodings = np.asarray(encodings)
        if encodings.shape[0] == 0:
            return []
        start = time.perf_counter()
        results = self.classifier.predict_topk(encodings, k)
        self.timings.inference_seconds = time.perf_counter() - start
        return results

    def predict_encoded(
        self, encodings: Sequence[np.ndarray] | np.ndarray
    ) -> list[Hashable]:
        """Predict the class of each pre-encoded graph.

        The counterpart of :meth:`fit_encoded`: inference against the class
        hypervectors without re-encoding, for evaluation harnesses that cache
        dataset encodings.  ``timings.inference_seconds`` records the pure
        similarity-search cost.
        """
        encodings = np.asarray(encodings)
        if encodings.shape[0] == 0:
            return []
        start = time.perf_counter()
        predictions = self.classifier.predict(encodings)
        self.timings.inference_seconds = time.perf_counter() - start
        return predictions

    def predict_one(self, graph: Graph) -> Hashable:
        """Predict the class of a single graph."""
        return self.predict([graph])[0]

    def score(self, graphs: Sequence[Graph], labels: Sequence[Hashable]) -> float:
        """Classification accuracy on labelled graphs.

        Raises ``ValueError`` when the numbers of graphs and labels differ —
        a silent ``zip`` truncation would report an accuracy over the wrong
        sample set.
        """
        graphs = list(graphs)
        labels = list(labels)
        if not labels:
            raise ValueError("cannot score an empty set of graphs")
        if len(graphs) != len(labels):
            raise ValueError(
                "graphs and labels must have the same length: got "
                f"{len(graphs)} graphs and {len(labels)} labels"
            )
        predictions = self.predict(graphs)
        correct = sum(
            1 for predicted, actual in zip(predictions, labels) if predicted == actual
        )
        return correct / len(labels)

    # ------------------------------------------------------------ persistence
    #: On-disk format version written by :meth:`save`.  Version 2 embeds the
    #: full :class:`TrainingState` (context-stamped), so a loaded model can
    #: keep training — ``partial_fit`` and ``fit_from_state`` merges resume
    #: exactly.  Version 1 files (pre-TrainingState) still load.
    PERSISTENCE_FORMAT_VERSION = 2

    def save(self, path) -> None:
        """Serialize the trained model to an ``.npz`` archive.

        The archive round-trips everything needed to reproduce this model's
        predictions exactly *and* to resume training: the configuration
        (including the backend choice), the similarity metric, the
        materialized item-memory entries together with the generator state
        that produces any *future* entries, the deterministic tie-breaker
        vector, and the embedded :class:`TrainingState` (per-class
        accumulators, sample counts, encoder context).  Class labels and
        item-memory keys are stored as pickled object arrays, so any hashable
        label type survives the trip.
        """
        basis = self.encoder._basis
        item_keys = list(basis.keys())
        # Rows of the contiguous basis matrix are in key-materialization
        # order, which is exactly the iteration order of basis.keys().
        item_matrix = np.array(basis.matrix, copy=True)
        state = self.export_state()
        np.savez_compressed(
            path,
            format_version=np.int64(self.PERSISTENCE_FORMAT_VERSION),
            kind="graphhd_model",
            config=json.dumps(asdict(self.config)),
            metric=self.metric,
            basis_rng_state=json.dumps(basis._rng.bit_generator.state),
            random_rng_state=json.dumps(
                self.encoder._random_rng.bit_generator.state
            ),
            item_keys=_object_vector(item_keys),
            item_vectors=item_matrix,
            tie_breaker=self.encoder._tie_breaker,
            **{
                f"state_{key}": value
                for key, value in state._payload_arrays().items()
            },
        )

    @classmethod
    def load(cls, path) -> "GraphHDClassifier":
        """Restore a model previously written by :meth:`save`.

        The returned classifier predicts identically to the saved one (same
        encodings, same class vectors) on either backend, and can resume
        training: ``partial_fit`` continues the embedded
        :class:`TrainingState` and :meth:`fit_from_state` merges compatible
        shard states on top.  Reads the current format (version 2) and the
        legacy pre-TrainingState format (version 1); anything else — a
        non-model archive or a file written by a newer library — raises an
        actionable ``ValueError`` naming the expected and found versions.
        """
        with np.load(path, allow_pickle=True) as data:
            if "format_version" not in data.files:
                raise ValueError(
                    f"{path} is not a GraphHD model archive: it has no "
                    "format_version entry (expected a file written by "
                    "GraphHDClassifier.save, format version "
                    f"<= {cls.PERSISTENCE_FORMAT_VERSION})"
                )
            # Version-1 model archives predate the kind marker; any archive
            # that *does* carry one must carry ours (a TrainingState file,
            # for instance, says so instead of dying on a missing key).
            if "kind" in data.files and str(data["kind"]) != "graphhd_model":
                raise ValueError(
                    f"{path} is not a GraphHD model archive: found kind "
                    f"{str(data['kind'])!r}, expected 'graphhd_model' "
                    "(training-state archives load via TrainingState.load)"
                )
            version = int(data["format_version"])
            if version not in (1, cls.PERSISTENCE_FORMAT_VERSION):
                raise ValueError(
                    f"unsupported model format version: found {version}, "
                    f"expected 1..{cls.PERSISTENCE_FORMAT_VERSION}; a newer "
                    "file needs a newer repro to load, an older one needs "
                    "re-saving"
                )
            config = GraphHDConfig(**json.loads(str(data["config"])))
            model = cls(config, metric=str(data["metric"]))

            basis = model.encoder._basis
            basis._rng.bit_generator.state = json.loads(str(data["basis_rng_state"]))
            model.encoder._random_rng.bit_generator.state = json.loads(
                str(data["random_rng_state"])
            )
            item_vectors = data["item_vectors"]
            for key, vector in zip(data["item_keys"], item_vectors):
                basis.set(key, vector)
            model.encoder._tie_breaker = np.array(data["tie_breaker"], copy=True)

            memory = model.classifier.memory
            if version == 1:
                # Legacy layout: bare per-class arrays, no embedded state.
                counts = data["class_counts"]
                for index, label in enumerate(data["class_labels"]):
                    memory.add_accumulator(
                        label,
                        np.array(
                            data["class_accumulators"][index],
                            dtype=np.int64,
                            copy=True,
                        ),
                        int(counts[index]),
                    )
            else:
                state = TrainingState._from_payload(data, prefix="state_")
                # The memory's internal state stays context-free; the context
                # is re-derived from the live config on export.
                state.context = None
                memory._state = state
            model.classifier._is_fitted = len(memory.classes) > 0
        return model
