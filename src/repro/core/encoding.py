"""The GraphHD graph encoder (Section IV of the paper).

The encoder maps a graph to a single hypervector in three steps:

1. **Vertex identification** — every vertex is assigned an identifier that is
   comparable *across* graphs.  GraphHD uses the rank of the vertex's PageRank
   centrality within its own graph: the most central vertex of any graph gets
   identifier 0, the second most central gets 1, and so on.  Vertices with the
   same rank in different graphs are encoded with the same random basis
   hypervector.
2. **Edge encoding** — an edge ``(u, v)`` is encoded by *binding* the two
   endpoint hypervectors: ``Enc_e((u, v)) = Enc_v(u) * Enc_v(v)``.
3. **Graph encoding** — the graph hypervector is the bundle (element-wise
   majority vote) of all its edge hypervectors.

The centrality measure, the number of PageRank iterations (fixed to 10 in the
paper), the dimensionality (10,000) and the bundling normalization are all
exposed through :class:`GraphHDConfig` so the ablation benchmarks can vary
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.graphs.centrality import (
    DEFAULT_DAMPING,
    DEFAULT_ITERATIONS,
    centrality_ranks,
    centrality_ranks_batch,
    degree_centrality,
    eigenvector_centrality,
    pagerank,
    pagerank_matrix,
)
from repro.graphs.graph import Graph, concatenated_edge_arrays
from repro.hdc.backend import BACKEND_NAMES, get_backend
from repro.hdc.hypervector import DEFAULT_DIMENSION, HV_DTYPE
from repro.hdc.item_memory import ItemMemory


@dataclass
class GraphHDConfig:
    """Configuration of the GraphHD encoder.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality; the paper uses 10,000.
    centrality:
        Vertex identifier source: ``"pagerank"`` (the paper's choice),
        ``"degree"``, ``"eigenvector"`` or ``"random"`` (no cross-graph
        correspondence — the ablation baseline).
    pagerank_iterations:
        Number of PageRank power iterations (paper: 10).
    pagerank_damping:
        PageRank damping factor.
    pagerank_batch_size:
        Number of graphs refined per block-diagonal PageRank batch (paper: 256).
    normalize_graph_hypervectors:
        Whether the bundle of edge hypervectors is majority-vote normalized
        into a bipolar vector (True, the paper's formulation) or kept as an
        integer accumulator (False).
    include_vertices:
        Also bundle the vertex hypervectors themselves into the graph
        hypervector (an optional enrichment; off by default to match the
        paper's Algorithm 1, which bundles edge hypervectors only).
    seed:
        Seed of the vertex basis hypervectors.
    backend:
        HDC compute backend: ``"dense"`` (the paper's int8 bipolar vectors,
        the default) or ``"packed"`` (bit-packed ``uint64`` words with XOR
        binding and popcount Hamming similarity; ~8x less memory).  For a
        given seed the packed encodings are exactly the bit-packing of the
        dense encodings.
    """

    dimension: int = DEFAULT_DIMENSION
    centrality: str = "pagerank"
    pagerank_iterations: int = DEFAULT_ITERATIONS
    pagerank_damping: float = DEFAULT_DAMPING
    pagerank_batch_size: int = 256
    normalize_graph_hypervectors: bool = True
    include_vertices: bool = False
    seed: int | None = 0
    backend: str = "dense"

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError(f"dimension must be positive, got {self.dimension}")
        if self.centrality not in ("pagerank", "degree", "eigenvector", "random"):
            raise ValueError(
                "centrality must be one of 'pagerank', 'degree', 'eigenvector', "
                f"'random'; got {self.centrality!r}"
            )
        if self.pagerank_iterations < 0:
            raise ValueError(
                f"pagerank_iterations must be non-negative, got {self.pagerank_iterations}"
            )
        if self.pagerank_batch_size <= 0:
            raise ValueError(
                f"pagerank_batch_size must be positive, got {self.pagerank_batch_size}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {list(BACKEND_NAMES)}, got {self.backend!r}"
            )
        if self.backend == "packed" and not self.normalize_graph_hypervectors:
            raise ValueError(
                "the packed backend stores binary hypervectors and therefore "
                "requires normalize_graph_hypervectors=True"
            )


class GraphHDEncoder:
    """Encodes graphs into hypervectors following the GraphHD scheme."""

    #: Upper bound on the float32 rank-pair table size; beyond this a batch
    #: is encoded per graph (optimal for graphs with many edges).
    PAIR_TABLE_MAX_BYTES = 256 * 1024 * 1024

    #: Minimum average reuse (edges per distinct rank pair) for the pair
    #: table to pay for itself.
    PAIR_TABLE_MIN_REUSE = 2.0

    #: Columns per chunk of the sparse pair-selector product, sized so a
    #: table chunk stays cache-resident across all graphs.
    PAIR_MATMUL_COLUMN_CHUNK = 512

    def __init__(self, config: GraphHDConfig | None = None) -> None:
        self.config = config or GraphHDConfig()
        self.backend = get_backend(self.config.backend)
        self._basis = ItemMemory(
            self.config.dimension, seed=self.config.seed, backend=self.backend
        )
        # A fixed tie-break vector keeps the majority-vote normalization fully
        # deterministic, so a graph encodes identically whether it is encoded
        # alone or inside a batch.
        tie_seed = None if self.config.seed is None else self.config.seed + 1
        self._tie_breaker = np.random.default_rng(tie_seed).choice(
            np.array([-1, 1], dtype=np.int8), size=self.config.dimension
        )
        random_seed = None if self.config.seed is None else self.config.seed + 2
        self._random_rng = np.random.default_rng(random_seed)

    @property
    def dimension(self) -> int:
        """Dimensionality of the produced hypervectors."""
        return self.config.dimension

    # ----------------------------------------------------------- identifiers
    def _centrality(self, graph: Graph) -> np.ndarray:
        config = self.config
        if config.centrality == "pagerank":
            return pagerank(
                graph,
                damping=config.pagerank_damping,
                iterations=config.pagerank_iterations,
            )
        if config.centrality == "degree":
            return degree_centrality(graph)
        if config.centrality == "eigenvector":
            return eigenvector_centrality(graph)
        # "random": an arbitrary ordering with no cross-graph meaning.
        return self._random_rng.random(graph.num_vertices)

    def vertex_identifiers(
        self, graph: Graph, centrality: np.ndarray | None = None
    ) -> np.ndarray:
        """Centrality-rank identifier of every vertex of ``graph``.

        A precomputed centrality array may be supplied (used by
        :meth:`encode_many` to reuse batched PageRank results).
        """
        if centrality is None:
            centrality = self._centrality(graph)
        return centrality_ranks(centrality)

    def encode_vertices(
        self, graph: Graph, centrality: np.ndarray | None = None
    ) -> np.ndarray:
        """Hypervector of every vertex, as a ``(num_vertices, dimension)`` array."""
        identifiers = self.vertex_identifiers(graph, centrality)
        return self._basis.get_many(int(identifier) for identifier in identifiers)

    # -------------------------------------------------------------- encoding
    def encode_edges(self, graph: Graph, vertex_hypervectors: np.ndarray | None = None) -> np.ndarray:
        """Edge hypervectors of ``graph``: binding of the two endpoint hypervectors.

        Returns an array of shape ``(num_edges, storage_width)`` in the
        backend's native format — ``(num_edges, dimension)`` int8 for the
        dense backend, ``(num_edges, dimension / 64)`` uint64 words for the
        packed backend (empty for graphs without edges).
        """
        if vertex_hypervectors is None:
            vertex_hypervectors = self.encode_vertices(graph)
        if graph.num_edges == 0:
            return self.backend.empty(0, self.config.dimension)
        sources, targets = graph.edge_arrays()
        return self.backend.bind(
            vertex_hypervectors[sources], vertex_hypervectors[targets]
        )

    def _edge_accumulator(
        self, graph: Graph, vertex_hypervectors: np.ndarray
    ) -> np.ndarray:
        """Integer sum of all edge hypervectors of ``graph``.

        Instead of materializing one hypervector per edge (an ``(E, d)``
        array, which dominates runtime and memory for the larger graphs of
        the scaling experiment), the bundle of edge bindings is computed with
        one sparse matrix product:

        ``sum_{(u,v) in E} h_u * h_v = 1/2 * sum_v h_v * (A h)_v``

        where ``A`` is the adjacency matrix (each undirected edge contributes
        twice to the right-hand side; self-loops contribute once and are
        compensated for).  The result is identical to summing the explicit
        per-edge hypervectors.

        The packed backend has no component-space product, so it instead
        XOR-binds the packed endpoint words per edge and bit-counts the
        bundle; both paths produce the same component-space accumulator.
        """
        if graph.num_edges == 0:
            return np.zeros(self.config.dimension, dtype=np.int64)
        if not self.backend.is_component_space:
            edge_hypervectors = self.encode_edges(graph, vertex_hypervectors)
            return self.backend.accumulate(edge_hypervectors, self.config.dimension)
        # float32 keeps the sparse product exact (edge sums are small integers)
        # while halving the memory traffic of the hot loop.
        adjacency = graph.adjacency_matrix().astype(np.float32)
        dense = vertex_hypervectors.astype(np.float32)
        neighbor_sums = adjacency @ dense
        doubled = (dense * neighbor_sums).sum(axis=0, dtype=np.float64)
        sources, targets = graph.edge_arrays()
        self_loops = int(np.count_nonzero(sources == targets))
        if self_loops:
            doubled = doubled + float(self_loops)
        return np.rint(doubled / 2.0).astype(np.int64)

    def encode(self, graph: Graph, centrality: np.ndarray | None = None) -> np.ndarray:
        """Encode one graph into its graph hypervector.

        A precomputed centrality array may be supplied to reuse batched
        PageRank results; otherwise the centrality is computed on the fly.
        """
        vertex_hypervectors = self.encode_vertices(graph, centrality)
        # A graph without edges (and vertices, when they are excluded) encodes
        # to the neutral all-zero accumulator; normalization turns it into the
        # tie-breaker vector so downstream similarity stays well-defined but
        # uninformative, matching the information content.
        accumulator = self._edge_accumulator(graph, vertex_hypervectors)
        if self.config.include_vertices and vertex_hypervectors.shape[0] > 0:
            accumulator = accumulator + self.backend.accumulate(
                vertex_hypervectors, self.config.dimension
            )

        if self.config.normalize_graph_hypervectors:
            return self.backend.normalize(accumulator, tie_breaker=self._tie_breaker)
        return accumulator

    def _centralities(self, graphs: Sequence[Graph]) -> list[np.ndarray]:
        """Centrality arrays for a batch of graphs, one per graph.

        PageRank centralities are computed in block-diagonal batches (the
        paper's batch size is 256), which amortizes the sparse-matrix setup
        cost; the other centralities are computed per graph, in input order
        (so the ``"random"`` centrality consumes its stream identically to
        per-graph encoding).
        """
        if self.config.centrality == "pagerank":
            return pagerank_matrix(
                graphs,
                damping=self.config.pagerank_damping,
                iterations=self.config.pagerank_iterations,
                batch_size=self.config.pagerank_batch_size,
            )
        return [self._centrality(graph) for graph in graphs]

    def encode_many(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Encode a collection of graphs into a ``(num_graphs, dimension)`` array.

        Uses the fully vectorized flat-batch path: all graphs' edges are
        concatenated into flat index arrays, the endpoint hypervectors are
        gathered from the basis matrix in one shot, and binding + bundling
        for the whole batch happens in a handful of NumPy calls (see
        :meth:`_encode_flat`).  The result is bit-identical to encoding each
        graph individually with :meth:`encode`.
        """
        graphs = list(graphs)
        if not graphs:
            return self.backend.empty(0, self.config.dimension)
        centralities = self._centralities(graphs)
        if not self._uses_base_encoding_hooks():
            return self.encode_many_per_graph(graphs, centralities)
        return self._encode_flat(graphs, centralities)

    def _uses_base_encoding_hooks(self) -> bool:
        """Whether this instance still encodes with the base per-graph hooks.

        The flat-batch path reproduces the *base* GraphHD scheme directly
        from the basis matrix and never calls the per-graph hooks, so any
        subclass overriding one of them (e.g. the label-aware encoder's
        ``encode_edges``) is detected here and batches fall back to the
        per-graph path, keeping the overridden behaviour by construction.
        """
        cls = type(self)
        return all(
            getattr(cls, name) is getattr(GraphHDEncoder, name)
            for name in (
                "encode",
                "encode_vertices",
                "encode_edges",
                "vertex_identifiers",
                "_edge_accumulator",
                "_centrality",
            )
        )

    def encode_many_per_graph(
        self,
        graphs: Sequence[Graph],
        centralities: Sequence[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Encode a batch one graph at a time (the pre-flat-batch orchestration).

        Kept as the fallback for subclasses that override the per-graph
        encoding hooks, and as the reference implementation that the
        flat-batch equivalence tests and benchmarks compare against.
        """
        graphs = list(graphs)
        if not graphs:
            return self.backend.empty(0, self.config.dimension)
        if centralities is None:
            centralities = self._centralities(graphs)
        return np.vstack(
            [
                self.encode(graph, centrality)
                for graph, centrality in zip(graphs, centralities)
            ]
        )

    def _encode_flat(
        self, graphs: Sequence[Graph], centralities: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Vectorized whole-batch encoding with zero per-graph Python in the hot path.

        The batch is laid out flat: one batched argsort ranks every graph,
        the cached edge arrays concatenate (with vertex offsets) into flat
        ``sources``/``targets``/``graph_id`` index arrays, and the whole
        dataset is bound and bundled in a handful of NumPy/BLAS calls
        through the **rank-pair table** (:meth:`_encode_flat_pair_table`):
        an edge hypervector is ``basis[i] * basis[j]`` for an unordered rank
        pair ``(i, j)``, and a 500-graph batch of ~30-vertex graphs has only
        a few hundred *distinct* pairs, so each is bound once and all
        per-graph bundles become one sparse selector-matrix product.

        For batches where the table does not pay off — very large graphs
        (table would not fit in :attr:`PAIR_TABLE_MAX_BYTES`) or pairs that
        barely repeat — the batch delegates to
        :meth:`encode_many_per_graph`, whose per-graph sparse-adjacency
        accumulation is already optimal when thousands of edges amortize
        each graph's fixed cost.  Both routes produce bit-identical results
        to per-graph :meth:`encode`.
        """
        num_graphs = len(graphs)
        dimension = self.config.dimension
        backend = self.backend

        vertex_counts = np.fromiter(
            (graph.num_vertices for graph in graphs), dtype=np.int64, count=num_graphs
        )
        edge_counts = np.fromiter(
            (graph.num_edges for graph in graphs), dtype=np.int64, count=num_graphs
        )
        total_edges = int(edge_counts.sum())
        max_vertices = int(vertex_counts.max()) if num_graphs else 0

        # basis_rows maps a centrality rank to its row in the contiguous
        # basis matrix (materializing any new ranks in sorted order, exactly
        # like per-graph encoding does).
        basis_rows = self._basis.indices_for(range(max_vertices))
        basis_matrix = self._basis.matrix

        if total_edges:
            # Cheap pre-gate: when even the bound on the number of distinct
            # pairs (the full rank-pair space, or one pair per edge) cannot
            # fit in the size cap, skip the flat layout work entirely.
            pair_bound = min(max_vertices * (max_vertices + 1) // 2, total_edges)
            if (
                pair_bound * dimension * np.dtype(np.float32).itemsize
                > self.PAIR_TABLE_MAX_BYTES
            ):
                return self.encode_many_per_graph(graphs, centralities)

            # Edge endpoints as flat per-edge rank arrays: one batched
            # argsort ranks every graph, and the cached edge arrays
            # concatenate (with vertex offsets) into flat endpoint indices.
            ranks = centrality_ranks_batch(centralities)
            flat_ranks = np.concatenate(ranks)
            vertex_offsets = np.concatenate(([0], np.cumsum(vertex_counts)))
            flat_sources, flat_targets = concatenated_edge_arrays(
                graphs, vertex_offsets, edge_counts
            )
            source_ranks = flat_ranks[flat_sources]
            target_ranks = flat_ranks[flat_targets]
            edge_graph_ids = np.repeat(np.arange(num_graphs), edge_counts)

            # Each edge hypervector depends only on the *unordered* endpoint
            # rank pair; when distinct pairs are few and heavily reused the
            # pair-table strategy wins, otherwise the per-graph path (whose
            # sparse-adjacency accumulation is already optimal for graphs
            # with many edges) takes over.
            low = np.minimum(source_ranks, target_ranks)
            high = np.maximum(source_ranks, target_ranks)
            pair_ids = high * (high + 1) // 2 + low
            unique_pairs, first_occurrence = np.unique(pair_ids, return_index=True)
            table_bytes = (
                len(unique_pairs) * dimension * np.dtype(np.float32).itemsize
            )
            if (
                table_bytes <= self.PAIR_TABLE_MAX_BYTES
                and total_edges / len(unique_pairs) >= self.PAIR_TABLE_MIN_REUSE
            ):
                return self._encode_flat_pair_table(
                    num_graphs,
                    vertex_counts,
                    basis_rows,
                    basis_matrix,
                    pair_columns=np.searchsorted(unique_pairs, pair_ids),
                    pair_low=low[first_occurrence],
                    pair_high=high[first_occurrence],
                    edge_graph_ids=edge_graph_ids,
                )
            return self.encode_many_per_graph(graphs, centralities)

        accumulators = np.zeros((num_graphs, dimension), dtype=np.int64)

        if self.config.include_vertices and max_vertices:
            prefix = self._vertex_prefix_sums(
                self._basis_components(basis_rows, basis_matrix)
            )
            populated = vertex_counts > 0
            accumulators[populated] += prefix[vertex_counts[populated] - 1]

        if self.config.normalize_graph_hypervectors:
            return backend.normalize(accumulators, tie_breaker=self._tie_breaker)
        return accumulators

    def _basis_components(
        self, basis_rows: np.ndarray, basis_matrix: np.ndarray
    ) -> np.ndarray:
        """Bipolar component rows of the basis for ranks ``0..len(basis_rows)-1``."""
        native = basis_matrix[basis_rows]
        if self.backend.is_component_space:
            return native
        return self.backend.unpack(native, self.config.dimension)

    @staticmethod
    def _vertex_prefix_sums(components: np.ndarray) -> np.ndarray:
        """Cumulative basis sums: row ``n-1`` bundles the vertices of an n-vertex graph.

        Vertex identifiers within a graph are always the full rank range
        ``0..n-1``, so each graph's vertex bundle is a prefix sum of the
        bipolar basis components — one cumulative sum serves the whole batch.
        """
        return np.cumsum(components, axis=0, dtype=np.int64)

    def _encode_flat_pair_table(
        self,
        num_graphs: int,
        vertex_counts: np.ndarray,
        basis_rows: np.ndarray,
        basis_matrix: np.ndarray,
        *,
        pair_columns: np.ndarray,
        pair_low: np.ndarray,
        pair_high: np.ndarray,
        edge_graph_ids: np.ndarray,
    ) -> np.ndarray:
        """Whole-batch encoding through the distinct rank-pair table.

        Binds each distinct pair hypervector once, then bundles every graph
        with one sparse boolean selector product ``S @ B``, evaluated in
        cache-resident column chunks; majority-vote normalization runs on
        each chunk while it is hot instead of re-reading a full accumulator
        matrix.  float32 arithmetic is exact here: per-graph sums count at
        most one edge per distinct pair, and a graph with ``>= 2**24`` edges
        would imply at least as many distinct pairs, tripping the table-size
        gate into the integer fallback first.
        """
        dimension = self.config.dimension
        backend = self.backend
        components = self._basis_components(basis_rows, basis_matrix)
        selector = sparse.csr_matrix(
            (
                np.ones(len(edge_graph_ids), dtype=np.float32),
                (edge_graph_ids, pair_columns),
            ),
            shape=(num_graphs, len(pair_low)),
        )

        normalize = self.config.normalize_graph_hypervectors
        include_vertices = self.config.include_vertices
        if include_vertices:
            prefix = self._vertex_prefix_sums(components).astype(np.float32)
            populated = vertex_counts > 0
            prefix_rows = vertex_counts[populated] - 1

        output = np.empty(
            (num_graphs, dimension), dtype=HV_DTYPE if normalize else np.int64
        )
        chunk = self.PAIR_MATMUL_COLUMN_CHUNK
        for start in range(0, dimension, chunk):
            stop = min(start + chunk, dimension)
            # Bind the distinct-pair table for this column chunk only; the
            # gather-with-slice produces the contiguous float32 operand the
            # sparse product needs without a second copy.
            table_chunk = np.multiply(
                components[pair_high, start:stop],
                components[pair_low, start:stop],
                dtype=np.float32,
            )
            chunk_accumulator = selector @ table_chunk
            if include_vertices:
                chunk_accumulator[populated] += prefix[prefix_rows, start:stop]
            if normalize:
                # Majority vote via two comparisons (cheaper than np.sign on
                # float32): +1 where positive, -1 where negative, tie where
                # neither — exactly np.sign's trichotomy on these exact
                # integer values.
                positive = chunk_accumulator > 0
                negative = chunk_accumulator < 0
                signed = np.subtract(positive, negative, dtype=HV_DTYPE)
                ties = np.logical_or(positive, negative, out=positive)
                ties = np.logical_not(ties, out=ties)
                if np.any(ties):
                    signed[ties] = np.broadcast_to(
                        self._tie_breaker[start:stop], signed.shape
                    )[ties]
                output[:, start:stop] = signed
            else:
                output[:, start:stop] = chunk_accumulator
        if not normalize:
            return output
        if backend.is_component_space:
            return output
        return backend.pack(output)
