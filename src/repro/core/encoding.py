"""The GraphHD graph encoder (Section IV of the paper).

The encoder maps a graph to a single hypervector in three steps:

1. **Vertex identification** — every vertex is assigned an identifier that is
   comparable *across* graphs.  GraphHD uses the rank of the vertex's PageRank
   centrality within its own graph: the most central vertex of any graph gets
   identifier 0, the second most central gets 1, and so on.  Vertices with the
   same rank in different graphs are encoded with the same random basis
   hypervector.
2. **Edge encoding** — an edge ``(u, v)`` is encoded by *binding* the two
   endpoint hypervectors: ``Enc_e((u, v)) = Enc_v(u) * Enc_v(v)``.
3. **Graph encoding** — the graph hypervector is the bundle (element-wise
   majority vote) of all its edge hypervectors.

The centrality measure, the number of PageRank iterations (fixed to 10 in the
paper), the dimensionality (10,000) and the bundling normalization are all
exposed through :class:`GraphHDConfig` so the ablation benchmarks can vary
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.graphs.centrality import (
    DEFAULT_DAMPING,
    DEFAULT_ITERATIONS,
    centrality_ranks,
    degree_centrality,
    eigenvector_centrality,
    pagerank,
    pagerank_matrix,
)
from repro.graphs.graph import Graph
from repro.hdc.backend import BACKEND_NAMES, get_backend
from repro.hdc.hypervector import DEFAULT_DIMENSION
from repro.hdc.item_memory import ItemMemory


@dataclass
class GraphHDConfig:
    """Configuration of the GraphHD encoder.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality; the paper uses 10,000.
    centrality:
        Vertex identifier source: ``"pagerank"`` (the paper's choice),
        ``"degree"``, ``"eigenvector"`` or ``"random"`` (no cross-graph
        correspondence — the ablation baseline).
    pagerank_iterations:
        Number of PageRank power iterations (paper: 10).
    pagerank_damping:
        PageRank damping factor.
    pagerank_batch_size:
        Number of graphs refined per block-diagonal PageRank batch (paper: 256).
    normalize_graph_hypervectors:
        Whether the bundle of edge hypervectors is majority-vote normalized
        into a bipolar vector (True, the paper's formulation) or kept as an
        integer accumulator (False).
    include_vertices:
        Also bundle the vertex hypervectors themselves into the graph
        hypervector (an optional enrichment; off by default to match the
        paper's Algorithm 1, which bundles edge hypervectors only).
    seed:
        Seed of the vertex basis hypervectors.
    backend:
        HDC compute backend: ``"dense"`` (the paper's int8 bipolar vectors,
        the default) or ``"packed"`` (bit-packed ``uint64`` words with XOR
        binding and popcount Hamming similarity; ~8x less memory).  For a
        given seed the packed encodings are exactly the bit-packing of the
        dense encodings.
    """

    dimension: int = DEFAULT_DIMENSION
    centrality: str = "pagerank"
    pagerank_iterations: int = DEFAULT_ITERATIONS
    pagerank_damping: float = DEFAULT_DAMPING
    pagerank_batch_size: int = 256
    normalize_graph_hypervectors: bool = True
    include_vertices: bool = False
    seed: int | None = 0
    backend: str = "dense"

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError(f"dimension must be positive, got {self.dimension}")
        if self.centrality not in ("pagerank", "degree", "eigenvector", "random"):
            raise ValueError(
                "centrality must be one of 'pagerank', 'degree', 'eigenvector', "
                f"'random'; got {self.centrality!r}"
            )
        if self.pagerank_iterations < 0:
            raise ValueError(
                f"pagerank_iterations must be non-negative, got {self.pagerank_iterations}"
            )
        if self.pagerank_batch_size <= 0:
            raise ValueError(
                f"pagerank_batch_size must be positive, got {self.pagerank_batch_size}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {list(BACKEND_NAMES)}, got {self.backend!r}"
            )
        if self.backend == "packed" and not self.normalize_graph_hypervectors:
            raise ValueError(
                "the packed backend stores binary hypervectors and therefore "
                "requires normalize_graph_hypervectors=True"
            )


class GraphHDEncoder:
    """Encodes graphs into hypervectors following the GraphHD scheme."""

    def __init__(self, config: GraphHDConfig | None = None) -> None:
        self.config = config or GraphHDConfig()
        self.backend = get_backend(self.config.backend)
        self._basis = ItemMemory(
            self.config.dimension, seed=self.config.seed, backend=self.backend
        )
        # A fixed tie-break vector keeps the majority-vote normalization fully
        # deterministic, so a graph encodes identically whether it is encoded
        # alone or inside a batch.
        tie_seed = None if self.config.seed is None else self.config.seed + 1
        self._tie_breaker = np.random.default_rng(tie_seed).choice(
            np.array([-1, 1], dtype=np.int8), size=self.config.dimension
        )
        random_seed = None if self.config.seed is None else self.config.seed + 2
        self._random_rng = np.random.default_rng(random_seed)

    @property
    def dimension(self) -> int:
        """Dimensionality of the produced hypervectors."""
        return self.config.dimension

    # ----------------------------------------------------------- identifiers
    def _centrality(self, graph: Graph) -> np.ndarray:
        config = self.config
        if config.centrality == "pagerank":
            return pagerank(
                graph,
                damping=config.pagerank_damping,
                iterations=config.pagerank_iterations,
            )
        if config.centrality == "degree":
            return degree_centrality(graph)
        if config.centrality == "eigenvector":
            return eigenvector_centrality(graph)
        # "random": an arbitrary ordering with no cross-graph meaning.
        return self._random_rng.random(graph.num_vertices)

    def vertex_identifiers(
        self, graph: Graph, centrality: np.ndarray | None = None
    ) -> np.ndarray:
        """Centrality-rank identifier of every vertex of ``graph``.

        A precomputed centrality array may be supplied (used by
        :meth:`encode_many` to reuse batched PageRank results).
        """
        if centrality is None:
            centrality = self._centrality(graph)
        return centrality_ranks(centrality)

    def encode_vertices(
        self, graph: Graph, centrality: np.ndarray | None = None
    ) -> np.ndarray:
        """Hypervector of every vertex, as a ``(num_vertices, dimension)`` array."""
        identifiers = self.vertex_identifiers(graph, centrality)
        return self._basis.get_many(int(identifier) for identifier in identifiers)

    # -------------------------------------------------------------- encoding
    def encode_edges(self, graph: Graph, vertex_hypervectors: np.ndarray | None = None) -> np.ndarray:
        """Edge hypervectors of ``graph``: binding of the two endpoint hypervectors.

        Returns an array of shape ``(num_edges, storage_width)`` in the
        backend's native format — ``(num_edges, dimension)`` int8 for the
        dense backend, ``(num_edges, dimension / 64)`` uint64 words for the
        packed backend (empty for graphs without edges).
        """
        if vertex_hypervectors is None:
            vertex_hypervectors = self.encode_vertices(graph)
        edges = graph.edges()
        if not edges:
            return self.backend.empty(0, self.config.dimension)
        sources = np.array([u for u, _ in edges], dtype=np.int64)
        targets = np.array([v for _, v in edges], dtype=np.int64)
        return self.backend.bind(
            vertex_hypervectors[sources], vertex_hypervectors[targets]
        )

    def _edge_accumulator(
        self, graph: Graph, vertex_hypervectors: np.ndarray
    ) -> np.ndarray:
        """Integer sum of all edge hypervectors of ``graph``.

        Instead of materializing one hypervector per edge (an ``(E, d)``
        array, which dominates runtime and memory for the larger graphs of
        the scaling experiment), the bundle of edge bindings is computed with
        one sparse matrix product:

        ``sum_{(u,v) in E} h_u * h_v = 1/2 * sum_v h_v * (A h)_v``

        where ``A`` is the adjacency matrix (each undirected edge contributes
        twice to the right-hand side; self-loops contribute once and are
        compensated for).  The result is identical to summing the explicit
        per-edge hypervectors.

        The packed backend has no component-space product, so it instead
        XOR-binds the packed endpoint words per edge and bit-counts the
        bundle; both paths produce the same component-space accumulator.
        """
        if graph.num_edges == 0:
            return np.zeros(self.config.dimension, dtype=np.int64)
        if not self.backend.is_component_space:
            edge_hypervectors = self.encode_edges(graph, vertex_hypervectors)
            return self.backend.accumulate(edge_hypervectors, self.config.dimension)
        # float32 keeps the sparse product exact (edge sums are small integers)
        # while halving the memory traffic of the hot loop.
        adjacency = graph.adjacency_matrix().astype(np.float32)
        dense = vertex_hypervectors.astype(np.float32)
        neighbor_sums = adjacency @ dense
        doubled = (dense * neighbor_sums).sum(axis=0, dtype=np.float64)
        self_loops = sum(1 for u, v in graph.edges() if u == v)
        if self_loops:
            doubled = doubled + float(self_loops)
        return np.rint(doubled / 2.0).astype(np.int64)

    def encode(self, graph: Graph, centrality: np.ndarray | None = None) -> np.ndarray:
        """Encode one graph into its graph hypervector.

        A precomputed centrality array may be supplied to reuse batched
        PageRank results; otherwise the centrality is computed on the fly.
        """
        vertex_hypervectors = self.encode_vertices(graph, centrality)
        # A graph without edges (and vertices, when they are excluded) encodes
        # to the neutral all-zero accumulator; normalization turns it into the
        # tie-breaker vector so downstream similarity stays well-defined but
        # uninformative, matching the information content.
        accumulator = self._edge_accumulator(graph, vertex_hypervectors)
        if self.config.include_vertices and vertex_hypervectors.shape[0] > 0:
            accumulator = accumulator + self.backend.accumulate(
                vertex_hypervectors, self.config.dimension
            )

        if self.config.normalize_graph_hypervectors:
            return self.backend.normalize(accumulator, tie_breaker=self._tie_breaker)
        return accumulator

    def encode_many(self, graphs: Sequence[Graph]) -> np.ndarray:
        """Encode a collection of graphs into a ``(num_graphs, dimension)`` array.

        When the configured centrality is PageRank the centralities of all the
        graphs are computed in block-diagonal batches (the paper's batch size
        is 256) before the per-graph binding/bundling, which amortizes the
        sparse-matrix setup cost.
        """
        graphs = list(graphs)
        if not graphs:
            return self.backend.empty(0, self.config.dimension)
        if self.config.centrality != "pagerank":
            return np.vstack([self.encode(graph) for graph in graphs])

        centralities = pagerank_matrix(
            graphs,
            damping=self.config.pagerank_damping,
            iterations=self.config.pagerank_iterations,
            batch_size=self.config.pagerank_batch_size,
        )
        return np.vstack(
            [
                self.encode(graph, centrality)
                for graph, centrality in zip(graphs, centralities)
            ]
        )
