"""GraphHD reproduction: efficient graph classification with hyperdimensional computing.

This package reproduces the system described in "GraphHD: Efficient graph
classification using hyperdimensional computing" (Nunes et al., DATE 2022)
together with every substrate and baseline it is evaluated against:

* :mod:`repro.hdc` — hyperdimensional computing primitives (hypervectors,
  bind/bundle/permute, item and associative memories, centroid classifier);
* :mod:`repro.graphs` — graph data structure, random generators, PageRank and
  other centralities, Weisfeiler–Leman refinement;
* :mod:`repro.datasets` — TUDataset-format I/O, synthetic benchmark datasets
  matching Table I, cross-validation splits;
* :mod:`repro.kernels` — 1-WL and WL-OA graph kernels with a kernel SVM;
* :mod:`repro.nn` — a numpy autodiff engine and the GIN-eps / GIN-eps-JK
  baselines with Adam and a plateau LR scheduler;
* :mod:`repro.core` — the GraphHD encoder and classifier plus the paper's
  future-work extensions;
* :mod:`repro.eval` — the 10-fold cross-validation harness, Figure 3
  comparison and Figure 4 scaling experiment.
"""

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.core.model import GraphHDClassifier
from repro.core.extensions import (
    LabelAwareGraphHDEncoder,
    MultiCentroidGraphHDClassifier,
    RetrainedGraphHDClassifier,
)
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.dataset import GraphDataset
from repro.graphs.graph import Graph

__version__ = "1.0.0"

__all__ = [
    "GraphHDConfig",
    "GraphHDEncoder",
    "GraphHDClassifier",
    "RetrainedGraphHDClassifier",
    "MultiCentroidGraphHDClassifier",
    "LabelAwareGraphHDEncoder",
    "Graph",
    "GraphDataset",
    "load_dataset",
    "available_datasets",
    "__version__",
]
