"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that offline environments with an older setuptools (no PEP 660
editable-wheel support) can still do ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
