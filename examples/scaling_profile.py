"""Scaling profile: GraphHD vs GIN-eps vs WL-OA as graphs grow (Figure 4).

Reproduces a reduced version of the paper's scalability experiment
(Section V-B): synthetic Erdős–Rényi datasets with 2 classes and edge
probability 0.05 are generated for increasing vertex counts, and the training
time of GraphHD, the GIN-eps GNN and the WL-OA kernel are measured at each
size.  The full-size sweep (up to 980 vertices, 100 graphs per point, full
training schedules) is available through the benchmark harness; this example
uses a smaller sweep so it finishes in about a minute.

Usage::

    python examples/scaling_profile.py [--full]
"""

from __future__ import annotations

import sys

from repro.eval.reporting import render_series
from repro.eval.scaling import scaling_experiment


def main() -> None:
    full = "--full" in sys.argv
    if full:
        graph_sizes = [100, 250, 500, 750, 980]
        num_graphs = 100
        fast = False
    else:
        graph_sizes = [50, 100, 200, 400]
        num_graphs = 40
        fast = True

    methods = ("GraphHD", "GIN-e", "WL-OA")
    print(
        f"Scaling sweep over graph sizes {graph_sizes} "
        f"({num_graphs} Erdos-Renyi graphs per point, p=0.05)"
    )
    points = scaling_experiment(
        graph_sizes,
        methods=methods,
        num_graphs=num_graphs,
        edge_probability=0.05,
        fast=fast,
        seed=0,
    )

    train_series = {
        method: [point.train_seconds[method] for point in points] for method in methods
    }
    accuracy_series = {
        method: [point.accuracy[method] for point in points] for method in methods
    }

    print()
    print(
        render_series(
            graph_sizes,
            train_series,
            x_name="vertices",
            title="Figure 4: training time in seconds (lower is better)",
        )
    )
    print()
    print(
        render_series(
            graph_sizes,
            accuracy_series,
            x_name="vertices",
            title="Accuracy at each sweep point (sanity check, not part of Figure 4)",
        )
    )

    largest = points[-1]
    graphhd_time = largest.train_seconds["GraphHD"]
    print()
    for method in ("GIN-e", "WL-OA"):
        ratio = largest.train_seconds[method] / graphhd_time if graphhd_time > 0 else float("inf")
        print(
            f"At {largest.num_vertices} vertices GraphHD trains {ratio:.1f}x faster than {method}."
        )


if __name__ == "__main__":
    main()
