"""Molecular graph classification: GraphHD vs a WL kernel, plus extensions.

This example mirrors the chemistry workloads that motivate the paper (MUTAG,
NCI1, PTC): small sparse molecule-like graphs whose class depends on their
topology.  It

1. compares plain GraphHD against the 1-WL subtree kernel baseline on a
   PTC_FM-style dataset,
2. shows the two future-work extensions of the paper — perceptron-style
   retraining and multiple class vectors per class — and how much accuracy
   they buy back, and
3. shows the label-aware encoder using the vertex labels that the structural
   baseline ignores.

Usage::

    python examples/molecule_classification.py
"""

from __future__ import annotations

import time

from repro import GraphHDClassifier, GraphHDConfig, load_dataset
from repro.core.extensions import (
    LabelAwareGraphHDEncoder,
    MultiCentroidGraphHDClassifier,
    RetrainedGraphHDClassifier,
)
from repro.datasets.splits import train_test_split
from repro.eval.metrics import accuracy_score, confusion_matrix
from repro.eval.methods import make_method
from repro.eval.reporting import render_table
from repro.hdc.classifier import CentroidClassifier


def evaluate(name, model, train_graphs, train_labels, test_graphs, test_labels):
    """Fit a model, measure wall time, and return a result row."""
    start = time.perf_counter()
    model.fit(train_graphs, train_labels)
    train_seconds = time.perf_counter() - start
    start = time.perf_counter()
    predictions = model.predict(test_graphs)
    test_seconds = time.perf_counter() - start
    accuracy = accuracy_score(test_labels, predictions)
    return [name, f"{accuracy:.3f}", f"{train_seconds:.3f}", f"{test_seconds:.4f}"], predictions


def main() -> None:
    dataset = load_dataset("PTC_FM", scale=1.0, seed=0)
    print(f"Toxicology-style dataset: {len(dataset)} molecule graphs, "
          f"{dataset.num_classes} classes")

    train_indices, test_indices = train_test_split(dataset.labels, test_fraction=0.2, seed=0)
    train_graphs = [dataset.graphs[i] for i in train_indices]
    train_labels = [dataset.labels[i] for i in train_indices]
    test_graphs = [dataset.graphs[i] for i in test_indices]
    test_labels = [dataset.labels[i] for i in test_indices]

    config = GraphHDConfig(dimension=10_000, seed=0)
    rows = []

    row, graphhd_predictions = evaluate(
        "GraphHD",
        GraphHDClassifier(config),
        train_graphs, train_labels, test_graphs, test_labels,
    )
    rows.append(row)

    row, _ = evaluate(
        "GraphHD + retraining",
        RetrainedGraphHDClassifier(config, retrain_epochs=10),
        train_graphs, train_labels, test_graphs, test_labels,
    )
    rows.append(row)

    row, _ = evaluate(
        "GraphHD + 2 centroids/class",
        MultiCentroidGraphHDClassifier(config, centroids_per_class=2),
        train_graphs, train_labels, test_graphs, test_labels,
    )
    rows.append(row)

    row, _ = evaluate(
        "1-WL kernel + SVM",
        make_method("1-WL", fast=True, seed=0),
        train_graphs, train_labels, test_graphs, test_labels,
    )
    rows.append(row)

    print()
    print(
        render_table(
            ["method", "accuracy", "train [s]", "inference [s]"],
            rows,
            title="Structure-only molecular classification",
        )
    )

    # Label-aware extension: the synthetic molecules carry categorical vertex
    # labels (atom types); binding them into the edge hypervectors uses
    # information the structural baseline throws away.
    label_encoder = LabelAwareGraphHDEncoder(config)
    classifier = CentroidClassifier(config.dimension)
    classifier.fit(label_encoder.encode_many(train_graphs), train_labels)
    label_accuracy = classifier.score(label_encoder.encode_many(test_graphs), test_labels)
    print()
    print(f"Label-aware GraphHD accuracy: {label_accuracy:.3f}")

    matrix, classes = confusion_matrix(test_labels, graphhd_predictions)
    print()
    print("GraphHD confusion matrix (rows = true class):")
    header = ["true \\ predicted"] + [str(c) for c in classes]
    matrix_rows = [
        [str(classes[i])] + [int(v) for v in matrix[i]] for i in range(len(classes))
    ]
    print(render_table(header, matrix_rows))


if __name__ == "__main__":
    main()
