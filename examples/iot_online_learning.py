"""IoT-style online learning and robustness with GraphHD.

The paper motivates HDC for graph learning in resource-constrained settings
(IoT malware detection, sensor networks).  Two properties matter there beyond
raw speed:

* **online learning** — devices see graphs one at a time and cannot afford to
  retrain from scratch; GraphHD's class vectors are simple accumulators, so a
  new labelled graph is absorbed with one encoding and one addition;
* **robustness** — hypervectors store information holographically, so the
  model keeps working when a fraction of the stored class-vector components is
  corrupted (bit flips in unreliable memory).

This example simulates a stream of communication graphs from two device
behaviours (benign tree-like traffic vs. malware-style densely clustered
traffic), trains GraphHD online, and then measures accuracy while injecting
increasing amounts of corruption into the trained model.

Usage::

    python examples/iot_online_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphHDClassifier, GraphHDConfig
from repro.datasets.dataset import GraphDataset
from repro.eval.reporting import render_table
from repro.graphs.generators import (
    barabasi_albert_graph,
    ring_of_cliques_graph,
    tree_graph,
)


def make_device_graph(behaviour: int, rng: np.random.Generator):
    """One communication graph: benign traffic (0) or malware-style traffic (1)."""
    size = int(rng.integers(20, 40))
    if behaviour == 0:
        # Benign: shallow tree-like request patterns with a few extra links.
        graph = tree_graph(size, max_children=3, rng=rng, graph_label=0)
    else:
        # Malware: scanning/beaconing produces hub-heavy, clustered structure.
        if rng.random() < 0.5:
            graph = barabasi_albert_graph(size, 3, rng=rng, graph_label=1)
        else:
            graph = ring_of_cliques_graph(max(size // 5, 2), 5, rng=rng, graph_label=1)
    return graph


def corrupt_class_vectors(model: GraphHDClassifier, flip_fraction: float, rng) -> None:
    """Flip the sign of a fraction of each stored class accumulator's components."""
    memory = model.classifier.memory
    for label in memory.classes:
        accumulator = memory._accumulators[label]
        count = int(len(accumulator) * flip_fraction)
        positions = rng.choice(len(accumulator), size=count, replace=False)
        accumulator[positions] = -accumulator[positions]


def main() -> None:
    rng = np.random.default_rng(0)
    stream = [make_device_graph(index % 2, rng) for index in range(300)]
    test_graphs = [make_device_graph(index % 2, rng) for index in range(100)]
    test_labels = [graph.graph_label for graph in test_graphs]
    print(
        "Simulated IoT stream:",
        GraphDataset("iot-stream", stream).statistics(),
    )

    config = GraphHDConfig(dimension=10_000, seed=0)
    model = GraphHDClassifier(config)

    # --- Online learning: absorb the stream one graph at a time, tracking how
    # quickly the model becomes useful.
    checkpoints = [10, 25, 50, 100, 200, 300]
    rows = []
    for count, graph in enumerate(stream, start=1):
        model.partial_fit(graph, graph.graph_label)
        if count in checkpoints:
            accuracy = model.score(test_graphs, test_labels)
            rows.append([count, f"{accuracy:.3f}"])
    print()
    print(
        render_table(
            ["graphs seen", "test accuracy"],
            rows,
            title="Online learning: accuracy vs. number of streamed graphs",
        )
    )

    # --- Robustness: corrupt the trained class vectors and re-measure.
    rows = []
    for flip_fraction in (0.0, 0.05, 0.1, 0.2, 0.3, 0.4):
        corrupted = GraphHDClassifier(config)
        corrupted.fit(stream, [graph.graph_label for graph in stream])
        corrupt_class_vectors(corrupted, flip_fraction, np.random.default_rng(1))
        accuracy = corrupted.score(test_graphs, test_labels)
        rows.append([f"{flip_fraction:.0%}", f"{accuracy:.3f}"])
    print()
    print(
        render_table(
            ["corrupted components", "test accuracy"],
            rows,
            title="Robustness: accuracy vs. fraction of corrupted class-vector components",
        )
    )
    print()
    print(
        "GraphHD degrades gracefully because every hypervector component carries "
        "the same amount of information (holographic representation)."
    )


if __name__ == "__main__":
    main()
