"""Quickstart: train GraphHD on a benchmark dataset and evaluate it.

Runs in a few seconds.  It loads the synthetic MUTAG stand-in (or the real
TUDataset files if ``GRAPHHD_TUDATASET_ROOT`` is set), trains the GraphHD
classifier with the paper's configuration (10,000-dimensional bipolar
hypervectors, PageRank vertex identifiers with 10 power iterations), and
reports 5-fold cross-validated accuracy together with the training and
inference times that make GraphHD attractive for resource-constrained
settings.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphHDClassifier, GraphHDConfig, load_dataset
from repro.eval.cross_validation import cross_validate
from repro.eval.reporting import render_table


def main() -> None:
    dataset = load_dataset("MUTAG", scale=0.5, seed=0)
    stats = dataset.statistics()
    print(
        f"Dataset {dataset.name}: {stats.num_graphs} graphs, "
        f"{stats.num_classes} classes, "
        f"{stats.avg_vertices:.1f} vertices and {stats.avg_edges:.1f} edges on average"
    )

    # The paper's configuration: d = 10,000 bipolar hypervectors, PageRank
    # centrality ranks as vertex identifiers, 10 power iterations.
    config = GraphHDConfig(dimension=10_000, pagerank_iterations=10, seed=0)

    result = cross_validate(
        lambda: GraphHDClassifier(config),
        dataset,
        method_name="GraphHD",
        n_splits=5,
        repetitions=1,
        seed=0,
    )

    rows = [
        ["accuracy (mean over folds)", f"{result.mean_accuracy:.3f}"],
        ["accuracy (std over folds)", f"{result.std_accuracy:.3f}"],
        ["training time per fold [s]", f"{result.mean_train_seconds:.3f}"],
        ["inference time per graph [s]", f"{result.mean_inference_seconds_per_graph:.6f}"],
    ]
    print()
    print(render_table(["metric", "value"], rows, title="GraphHD 5-fold cross-validation"))

    # Single train/predict round-trip on a held-out split, for a minimal API tour.
    split = int(len(dataset) * 0.8)
    model = GraphHDClassifier(config)
    model.fit(dataset.graphs[:split], dataset.labels[:split])
    predictions = model.predict(dataset.graphs[split:])
    actual = dataset.labels[split:]
    holdout_accuracy = sum(p == a for p, a in zip(predictions, actual)) / len(actual)
    print()
    print(f"Hold-out accuracy on the last {len(actual)} graphs: {holdout_accuracy:.3f}")
    print(f"Known classes: {model.classes}")


if __name__ == "__main__":
    main()
