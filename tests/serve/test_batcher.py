"""Unit tests for the micro-batcher, serving stats and model manager.

The batcher tests run against a tiny fake model (parity-of-vertex-count
"classifier") so batch composition is fully controllable; the model-manager
tests exercise real saved archives.
"""

import threading
import time

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.serve.batcher import (
    MicroBatcher,
    ServerStats,
    ServiceClosedError,
)
from repro.serve.model_manager import ModelHandle, ModelManager, StaleVersionError


def graph_with(num_vertices: int) -> Graph:
    return Graph(num_vertices, [])


class FakeEncoder:
    """Encodes a graph as its vertex count; optionally blocks on an event."""

    def __init__(self):
        self.batch_sizes: list[int] = []
        self.gate: threading.Event | None = None
        self.entered = threading.Event()
        self.fail_with: Exception | None = None

    def encode_many(self, graphs):
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(5.0), "test gate never released"
        if self.fail_with is not None:
            raise self.fail_with
        self.batch_sizes.append(len(graphs))
        return np.array([[graph.num_vertices] for graph in graphs], dtype=np.float64)


class FakeClassifier:
    """Scores by vertex-count parity: even graphs -> 'even', odd -> 'odd'."""

    def decision_scores(self, encodings):
        parity = encodings[:, 0] % 2
        scores = np.stack([1.0 - parity, parity], axis=1)
        return scores, ["even", "odd"]


class FakeModel:
    metric = "parity"

    def __init__(self):
        self.encoder = FakeEncoder()
        self.classifier = FakeClassifier()


@pytest.fixture
def fake_setup():
    model = FakeModel()
    handle = ModelHandle(model=model, version=1, path="<fake>")
    batchers = []

    def make(**kwargs):
        batcher = MicroBatcher(lambda: handle, **kwargs)
        batchers.append(batcher)
        return batcher

    yield model, handle, make
    for batcher in batchers:
        batcher.close()


class TestMicroBatcher:
    def test_single_request_round_trip(self, fake_setup):
        model, handle, make = fake_setup
        batcher = make(max_delay=0.0)
        result = batcher.submit([graph_with(2), graph_with(3)], top_k=2)
        assert result.handle is handle
        assert result.batch_size == 2
        assert [topk[0][0] for topk in result.topk] == ["even", "odd"]
        # top-2 carries both labels with their scores, winner first.
        assert [label for label, _ in result.topk[0]] == ["even", "odd"]
        assert result.topk[0][0][1] == 1.0
        assert result.topk[0][1][1] == 0.0

    def test_empty_submit_rejected(self, fake_setup):
        _, _, make = fake_setup
        with pytest.raises(ValueError, match="empty graph batch"):
            make().submit([])

    def test_concurrent_requests_coalesce_into_one_batch(self, fake_setup):
        model, _, make = fake_setup
        batcher = make(max_batch_size=64, max_delay=0.05)
        # Block the batcher inside the first batch so later submissions pile
        # up in the queue, then release and watch them coalesce.
        model.encoder.gate = threading.Event()
        opener = threading.Thread(target=batcher.submit, args=([graph_with(2)],))
        opener.start()
        assert model.encoder.entered.wait(5.0)

        results = [None] * 4
        def client(slot):
            results[slot] = batcher.submit([graph_with(slot + 1)])
        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        while batcher.queue_depth() < 4:
            time.sleep(0.001)
        model.encoder.gate.set()
        opener.join(5.0)
        for thread in threads:
            thread.join(5.0)

        # First batch was the lone opener; the queued four ran as one batch.
        assert model.encoder.batch_sizes == [1, 4]
        for slot, result in enumerate(results):
            assert result.batch_size == 4
            expected = "even" if (slot + 1) % 2 == 0 else "odd"
            assert result.topk[0][0][0] == expected

    def test_batch_respects_graph_budget_on_whole_requests(self, fake_setup):
        model, _, make = fake_setup
        batcher = make(max_batch_size=4, max_delay=0.05)
        model.encoder.gate = threading.Event()
        opener = threading.Thread(target=batcher.submit, args=([graph_with(1)],))
        opener.start()
        assert model.encoder.entered.wait(5.0)

        # 3 + 2 graphs: the second request would overflow the 4-graph budget
        # and must wait for the next batch (requests are never split).
        threads = [
            threading.Thread(
                target=batcher.submit, args=([graph_with(1)] * count,)
            )
            for count in (3, 2)
        ]
        threads[0].start()
        while batcher.queue_depth() < 1:
            time.sleep(0.001)
        threads[1].start()
        while batcher.queue_depth() < 2:
            time.sleep(0.001)
        model.encoder.gate.set()
        model.encoder.gate = None
        opener.join(5.0)
        for thread in threads:
            thread.join(5.0)
        assert model.encoder.batch_sizes == [1, 3, 2]

    def test_oversized_request_runs_alone(self, fake_setup):
        model, _, make = fake_setup
        batcher = make(max_batch_size=2, max_delay=0.0)
        result = batcher.submit([graph_with(1)] * 5)
        assert result.batch_size == 5
        assert model.encoder.batch_sizes == [5]

    def test_batch_failure_propagates_to_every_request(self, fake_setup):
        model, _, make = fake_setup
        stats = ServerStats()
        batcher = make(max_delay=0.0, stats=stats)
        model.encoder.fail_with = RuntimeError("encoder exploded")
        with pytest.raises(RuntimeError, match="encoder exploded"):
            batcher.submit([graph_with(1)])
        assert stats.errors_total == 1
        # The batcher thread survives a failed batch.
        model.encoder.fail_with = None
        assert batcher.submit([graph_with(2)]).topk[0][0][0] == "even"

    def test_submit_timeout(self, fake_setup):
        model, _, make = fake_setup
        batcher = make(max_delay=0.0)
        model.encoder.gate = threading.Event()
        try:
            with pytest.raises(TimeoutError, match="did not complete within"):
                batcher.submit([graph_with(1)], timeout=0.05)
        finally:
            model.encoder.gate.set()

    def test_submit_after_close_raises(self, fake_setup):
        _, _, make = fake_setup
        batcher = make()
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit([graph_with(1)])

    def test_close_is_idempotent(self, fake_setup):
        _, _, make = fake_setup
        batcher = make()
        batcher.close()
        batcher.close()

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"max_batch_size": 0}, "max_batch_size"),
            ({"max_delay": -0.1}, "max_delay"),
        ],
    )
    def test_invalid_policy_rejected(self, fake_setup, kwargs, match):
        _, handle, _ = fake_setup
        with pytest.raises(ValueError, match=match):
            MicroBatcher(lambda: handle, **kwargs)

    def test_stats_recorded(self, fake_setup):
        model, _, make = fake_setup
        stats = ServerStats()
        batcher = make(max_delay=0.0, stats=stats)
        batcher.submit([graph_with(1), graph_with(2)])
        batcher.submit([graph_with(3)])
        snapshot = stats.snapshot(queue_depth=0)
        assert snapshot["requests_total"] == 2
        assert snapshot["graphs_total"] == 3
        assert snapshot["batches_total"] == 2
        assert snapshot["errors_total"] == 0
        assert snapshot["batch_sizes"]["max"] == 2
        assert snapshot["batch_sizes"]["histogram"] == {"1": 1, "2": 1}
        assert snapshot["request_latency"]["count"] == 2
        assert snapshot["request_latency"]["p99_ms"] >= snapshot["request_latency"]["p50_ms"]
        assert snapshot["encode_seconds_total"] >= 0.0


class TestServerStats:
    def test_empty_snapshot(self):
        snapshot = ServerStats().snapshot(queue_depth=3)
        assert snapshot["requests_total"] == 0
        assert snapshot["queue_depth"] == 3
        assert snapshot["batch_sizes"]["mean"] is None
        assert snapshot["batch_sizes"]["max"] is None
        assert snapshot["request_latency"] == {
            "count": 0,
            "p50_ms": None,
            "p99_ms": None,
            "mean_ms": None,
        }

    def test_latency_window_caps_samples(self):
        stats = ServerStats(window=8)
        for index in range(20):
            stats.record_request_latency(index / 1000.0)
        latency = stats.snapshot()["request_latency"]
        assert latency["count"] == 8
        # Only the last 8 samples (12ms..19ms) remain in the window.
        assert latency["p50_ms"] >= 12.0

    def test_max_queue_depth_high_water_mark(self):
        stats = ServerStats()
        stats.record_enqueue(2)
        stats.record_enqueue(7)
        stats.record_enqueue(1)
        assert stats.snapshot()["max_queue_depth"] == 7

    def test_snapshot_is_json_ready(self):
        import json

        stats = ServerStats()
        stats.record_batch(
            num_requests=1,
            num_graphs=4,
            encode_seconds=0.001,
            similarity_seconds=0.0005,
            batch_seconds=0.002,
        )
        json.dumps(stats.snapshot())


class TestModelManager:
    def test_loads_and_warms_at_version_one(self, dense_model_path):
        manager = ModelManager(dense_model_path)
        handle = manager.current()
        assert handle.version == 1
        assert handle.path == dense_model_path
        assert handle.num_classes == len(handle.model.classes)
        # Warmed: the shared reference matrix is memoized and frozen.
        matrix = handle.model.classifier.memory._reference_matrix_native()
        assert matrix.flags.writeable is False

    def test_describe_is_json_ready(self, packed_model_path):
        import json

        description = ModelManager(packed_model_path).current().describe()
        assert description["version"] == 1
        assert description["backend"] == "packed"
        json.dumps(description)

    def test_reload_in_place_bumps_version(self, dense_model_path):
        manager = ModelManager(dense_model_path)
        old = manager.current()
        new = manager.reload()
        assert new.version == 2
        assert new.path == dense_model_path
        assert manager.current() is new
        # The old handle stays fully usable for in-flight batches.
        assert old.version == 1
        assert old.model.classes == new.model.classes

    def test_reload_with_matching_expected_version(self, dense_model_path):
        manager = ModelManager(dense_model_path)
        assert manager.reload(expected_version=1).version == 2

    def test_stale_expected_version_refused(self, dense_model_path):
        manager = ModelManager(dense_model_path)
        manager.reload()  # live version is now 2
        with pytest.raises(StaleVersionError, match="version 2, reload expected 1"):
            manager.reload(expected_version=1)
        assert manager.current().version == 2

    def test_reload_to_new_path(self, dense_model_path, retrained_model_path):
        manager = ModelManager(dense_model_path)
        handle = manager.reload(path=retrained_model_path)
        assert handle.path == retrained_model_path
        assert handle.version == 2
        # A later in-place reload re-reads the *new* path.
        assert manager.reload().path == retrained_model_path

    def test_failed_reload_keeps_old_model(self, dense_model_path, tmp_path):
        manager = ModelManager(dense_model_path)
        live = manager.current()
        with pytest.raises(FileNotFoundError):
            manager.reload(path=str(tmp_path / "missing.npz"))
        assert manager.current() is live

    def test_missing_archive_refused_at_startup(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelManager(str(tmp_path / "missing.npz"))
