"""Unit tests for the serving wire schemas (no sockets, no models)."""

import json

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.serve.schemas import (
    DEFAULT_TOP_K,
    MAX_GRAPHS_PER_REQUEST,
    SchemaError,
    graph_from_payload,
    json_safe_label,
    parse_predict_request,
    parse_reload_request,
    prediction_payload,
)


def predict_body(graphs, **extra) -> bytes:
    return json.dumps({"graphs": graphs, **extra}).encode("utf-8")


TRIANGLE = {"num_vertices": 3, "edges": [[0, 1], [1, 2], [2, 0]]}


class TestGraphFromPayload:
    def test_round_trips_a_graph(self):
        graph = graph_from_payload(
            {
                "num_vertices": 4,
                "edges": [[0, 1], [1, 2], [2, 3]],
                "vertex_labels": ["C", "C", "N", "O"],
            }
        )
        assert isinstance(graph, Graph)
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert graph.vertex_labels == ["C", "C", "N", "O"]

    def test_edges_default_to_empty(self):
        graph = graph_from_payload({"num_vertices": 2})
        assert graph.num_edges == 0

    def test_non_object_rejected(self):
        with pytest.raises(SchemaError, match=r"graphs\[3\] must be a JSON object"):
            graph_from_payload([1, 2], index=3)

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields \\['nodes'\\]"):
            graph_from_payload({"num_vertices": 1, "nodes": []})

    @pytest.mark.parametrize("bad", ["3", 2.0, True, None])
    def test_non_integer_num_vertices_rejected(self, bad):
        with pytest.raises(SchemaError, match="num_vertices must be an integer"):
            graph_from_payload({"num_vertices": bad})

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(SchemaError, match="non-negative"):
            graph_from_payload({"num_vertices": -1})

    @pytest.mark.parametrize(
        "bad_edge", [[0], [0, 1, 2], [0, "1"], [0, 1.0], [0, True], "01", None]
    )
    def test_malformed_edge_rejected(self, bad_edge):
        with pytest.raises(SchemaError, match=r"edges\[0\] must be a \[u, v\] pair"):
            graph_from_payload({"num_vertices": 2, "edges": [bad_edge]})

    def test_out_of_range_edge_names_graph_and_edge(self):
        with pytest.raises(
            SchemaError, match=r"graphs\[2\].edges\[1\] = \[1, 5\] is out of range"
        ):
            graph_from_payload(
                {"num_vertices": 3, "edges": [[0, 1], [1, 5]]}, index=2
            )

    def test_vertex_labels_length_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="2 entries for 3 vertices"):
            graph_from_payload({"num_vertices": 3, "vertex_labels": ["a", "b"]})


class TestParsePredictRequest:
    def test_parses_graphs_and_top_k(self):
        request = parse_predict_request(predict_body([TRIANGLE, TRIANGLE], top_k=2))
        assert len(request.graphs) == 2
        assert request.top_k == 2

    def test_top_k_defaults(self):
        request = parse_predict_request(predict_body([TRIANGLE]))
        assert request.top_k == DEFAULT_TOP_K

    def test_top_k_clamped_to_num_classes(self):
        request = parse_predict_request(
            predict_body([TRIANGLE], top_k=10), num_classes=3
        )
        assert request.top_k == 3

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            parse_predict_request(b"{nope")

    def test_non_object_body_rejected(self):
        with pytest.raises(SchemaError, match="must be a JSON object, got list"):
            parse_predict_request(b"[1, 2]")

    def test_unknown_body_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields \\['batch'\\]"):
            parse_predict_request(predict_body([TRIANGLE], batch=True))

    @pytest.mark.parametrize("graphs", [[], None, "x", {}])
    def test_missing_or_empty_graphs_rejected(self, graphs):
        body = json.dumps({} if graphs is None else {"graphs": graphs})
        with pytest.raises(SchemaError, match="non-empty 'graphs' list"):
            parse_predict_request(body)

    def test_too_many_graphs_rejected(self):
        body = predict_body([TRIANGLE] * 4)
        with pytest.raises(SchemaError, match="at most 3 per request"):
            parse_predict_request(body, max_graphs=3)

    def test_default_cap_is_module_constant(self):
        body = predict_body([{"num_vertices": 0}] * (MAX_GRAPHS_PER_REQUEST + 1))
        with pytest.raises(SchemaError, match=str(MAX_GRAPHS_PER_REQUEST)):
            parse_predict_request(body)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_bad_top_k_rejected(self, bad):
        with pytest.raises(SchemaError, match="top_k must be a positive integer"):
            parse_predict_request(predict_body([TRIANGLE], top_k=bad))

    def test_bad_graph_error_names_its_index(self):
        with pytest.raises(SchemaError, match=r"graphs\[1\]"):
            parse_predict_request(predict_body([TRIANGLE, {"num_vertices": -2}]))


class TestParseReloadRequest:
    def test_empty_body_means_unconditional_in_place_reload(self):
        request = parse_reload_request(b"")
        assert request.path is None
        assert request.expected_version is None

    def test_parses_path_and_expected_version(self):
        request = parse_reload_request(
            json.dumps({"path": "m.npz", "expected_version": 4})
        )
        assert request.path == "m.npz"
        assert request.expected_version == 4

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields \\['version'\\]"):
            parse_reload_request(json.dumps({"version": 2}))

    @pytest.mark.parametrize("bad", [1, ["a"], True])
    def test_non_string_path_rejected(self, bad):
        with pytest.raises(SchemaError, match="path must be a string"):
            parse_reload_request(json.dumps({"path": bad}))

    @pytest.mark.parametrize("bad", ["2", 1.0, True])
    def test_non_integer_expected_version_rejected(self, bad):
        with pytest.raises(SchemaError, match="expected_version must be an integer"):
            parse_reload_request(json.dumps({"expected_version": bad}))


class TestResponseHelpers:
    @pytest.mark.parametrize(
        ("label", "expected"),
        [
            (np.int64(3), 3),
            (np.float32(0.5), 0.5),
            ((1, "a"), [1, "a"]),
            (None, None),
            ("mutagenic", "mutagenic"),
            (frozenset({1}), str(frozenset({1}))),
        ],
    )
    def test_json_safe_label(self, label, expected):
        safe = json_safe_label(label)
        assert safe == expected
        json.dumps(safe)  # must serialize

    def test_prediction_payload_winner_first(self):
        payload = prediction_payload([(np.int64(1), 0.9), (0, 0.4)])
        assert payload["label"] == 1
        assert payload["top_k"] == [
            {"label": 1, "score": 0.9},
            {"label": 0, "score": 0.4},
        ]
        json.dumps(payload)
