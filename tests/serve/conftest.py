"""Shared fixtures for the serving test suite.

Models are trained once per session on the shared MUTAG-style dataset and
saved to disk; individual tests load/serve those archives.  Servers always
bind port 0 (ephemeral) so the suite is parallel-safe.
"""

from __future__ import annotations

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.synthetic import make_benchmark_dataset

DIMENSION = 1024


@pytest.fixture(scope="session")
def serve_dataset():
    return make_benchmark_dataset("MUTAG", scale=0.3, seed=5)


def _train_and_save(dataset, path, backend: str, seed: int = 0) -> str:
    model = GraphHDClassifier(
        GraphHDConfig(dimension=DIMENSION, seed=seed, backend=backend)
    )
    model.fit(dataset.graphs, dataset.labels)
    model.save(path)
    return str(path)


@pytest.fixture(scope="session")
def dense_model_path(serve_dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve-models") / "dense.npz"
    return _train_and_save(serve_dataset, path, "dense")


@pytest.fixture(scope="session")
def packed_model_path(serve_dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve-models") / "packed.npz"
    return _train_and_save(serve_dataset, path, "packed")


@pytest.fixture(scope="session")
def retrained_model_path(serve_dataset, tmp_path_factory) -> str:
    """A second, distinguishable packed model (different basis seed)."""
    path = tmp_path_factory.mktemp("serve-models") / "packed-v2.npz"
    return _train_and_save(serve_dataset, path, "packed", seed=11)
