"""End-to-end HTTP tests of ``repro serve``.

Each test spins up a real ``ThreadingHTTPServer`` on an ephemeral port and
talks to it through the stdlib :class:`ServingClient` — the same transport
the CI smoke and the load generator use.  The headline guarantees:

* served predictions are bit-identical to offline ``predict_encoded`` on the
  same archive, for the dense and the packed backend, including under
  concurrent clients whose requests coalesce into micro-batches;
* a version-checked hot swap is atomic — every response reports a model
  version whose answers are exactly that version's offline answers, never a
  mixture.
"""

import json
import threading

import pytest

from repro.core.model import GraphHDClassifier
from repro.serve.app import create_server, start_in_thread
from repro.serve.client import ServingClient, ServingError, graph_payload


@pytest.fixture
def serve(request):
    """Factory fixture: start a server for a model path, yield a client."""
    servers = []

    def start(model_path, **kwargs):
        kwargs.setdefault("max_delay", 0.005)
        server = create_server(model_path, port=0, **kwargs)
        start_in_thread(server)
        servers.append(server)
        host, port = server.server_address[:2]
        return ServingClient(host, port)

    yield start
    for server in servers:
        server.server_close()


def offline_predictions(model_path, graphs):
    """The ground truth: load the archive and run the offline batch path."""
    model = GraphHDClassifier.load(model_path)
    encodings = model.encoder.encode_many(graphs)
    return model.classifier.predict(encodings)


class TestServedEqualsOffline:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_single_client_bit_identical(
        self, backend, serve, serve_dataset, dense_model_path, packed_model_path
    ):
        model_path = dense_model_path if backend == "dense" else packed_model_path
        client = serve(model_path)
        graphs = serve_dataset.graphs[:16]
        assert client.predict_labels(graphs) == offline_predictions(
            model_path, graphs
        )

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_concurrent_clients_coalesce_and_stay_bit_identical(
        self, backend, serve, serve_dataset, dense_model_path, packed_model_path
    ):
        model_path = dense_model_path if backend == "dense" else packed_model_path
        client = serve(model_path, max_delay=0.05, max_batch_size=64)
        graphs = serve_dataset.graphs[:24]
        expected = offline_predictions(model_path, graphs)

        results = [None] * len(graphs)
        batch_sizes = [0] * len(graphs)
        barrier = threading.Barrier(len(graphs))

        def worker(index):
            barrier.wait()
            host, port = client.host, client.port
            with ServingClient(host, port) as own:
                response = own.predict([graphs[index]])
            results[index] = response["predictions"][0]["label"]
            batch_sizes[index] = response["batch_size"]

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(graphs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)

        # Bit-identical to the offline answers regardless of how the
        # concurrent singleton requests were packed into micro-batches...
        assert results == expected
        # ...and the burst actually exercised coalescing.
        assert max(batch_sizes) > 1

    def test_topk_matches_offline_predict_topk(
        self, serve, serve_dataset, packed_model_path
    ):
        client = serve(packed_model_path)
        graphs = serve_dataset.graphs[:8]
        model = GraphHDClassifier.load(packed_model_path)
        offline = model.predict_topk(graphs, k=2)
        response = client.predict(graphs, top_k=2)
        assert response["metric"] == model.metric
        for served, expected in zip(response["predictions"], offline):
            assert served["label"] == expected[0][0]
            assert [entry["label"] for entry in served["top_k"]] == [
                label for label, _ in expected
            ]
            for entry, (_, score) in zip(served["top_k"], expected):
                assert entry["score"] == pytest.approx(score, abs=1e-12)

    def test_top_k_clamped_to_class_count(
        self, serve, serve_dataset, dense_model_path
    ):
        client = serve(dense_model_path)
        response = client.predict(serve_dataset.graphs[:1], top_k=99)
        model = GraphHDClassifier.load(dense_model_path)
        assert len(response["predictions"][0]["top_k"]) == len(model.classes)


class TestEndpoints:
    def test_healthz_reports_live_model(self, serve, dense_model_path):
        client = serve(dense_model_path)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["model"]["version"] == 1
        assert health["model"]["path"] == dense_model_path
        assert health["model"]["backend"] == "dense"

    def test_stats_shape_and_counters(self, serve, serve_dataset, dense_model_path):
        client = serve(dense_model_path)
        client.predict(serve_dataset.graphs[:5])
        stats = client.stats()
        assert stats["requests_total"] == 1
        assert stats["graphs_total"] == 5
        assert stats["batches_total"] == 1
        assert stats["request_latency"]["count"] == 1
        assert stats["request_latency"]["p50_ms"] > 0
        assert stats["request_latency"]["p99_ms"] >= stats["request_latency"]["p50_ms"]
        assert stats["batch_sizes"]["histogram"] == {"5": 1}
        assert stats["policy"]["max_batch_size"] == 64
        assert stats["model"]["version"] == 1

    def test_malformed_graph_rejected_400(self, serve, dense_model_path):
        client = serve(dense_model_path)
        with pytest.raises(ServingError) as excinfo:
            client.predict([{"num_vertices": 2, "edges": [[0, 5]]}])
        assert excinfo.value.status == 400
        assert "out of range" in str(excinfo.value)

    def test_invalid_json_rejected_400(self, serve, dense_model_path):
        client = serve(dense_model_path)
        with pytest.raises(ServingError) as excinfo:
            client._request("POST", "/predict", {"graphs": "nope"})
        assert excinfo.value.status == 400

    def test_unknown_path_404_lists_routes(self, serve, dense_model_path):
        client = serve(dense_model_path)
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert "/predict" in excinfo.value.payload["paths"]

    def test_wrong_method_405_names_allowed(self, serve, dense_model_path):
        client = serve(dense_model_path)
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/predict")
        assert excinfo.value.status == 405
        assert excinfo.value.payload["allowed"] == ["POST"]

    def test_graph_payload_round_trip(self, serve_dataset):
        graph = serve_dataset.graphs[0]
        payload = graph_payload(graph)
        json.dumps(payload)
        assert payload["num_vertices"] == graph.num_vertices
        assert len(payload["edges"]) == graph.num_edges


class TestHotSwap:
    def test_reload_bumps_version_and_serves_new_model(
        self, serve, serve_dataset, dense_model_path, retrained_model_path
    ):
        client = serve(dense_model_path)
        graphs = serve_dataset.graphs[:8]
        before = client.predict(graphs)
        assert before["model_version"] == 1

        response = client.reload(path=retrained_model_path, expected_version=1)
        assert response["reloaded"] is True
        assert response["model"]["version"] == 2
        assert response["model"]["path"] == retrained_model_path

        after = client.predict(graphs)
        assert after["model_version"] == 2
        assert [p["label"] for p in after["predictions"]] == offline_predictions(
            retrained_model_path, graphs
        )

    def test_stale_reload_rejected_409(self, serve, dense_model_path):
        client = serve(dense_model_path)
        client.reload()  # version 1 -> 2
        with pytest.raises(ServingError) as excinfo:
            client.reload(expected_version=1)
        assert excinfo.value.status == 409
        assert client.healthz()["model"]["version"] == 2

    def test_reload_missing_file_rejected_400(self, serve, dense_model_path, tmp_path):
        client = serve(dense_model_path)
        with pytest.raises(ServingError) as excinfo:
            client.reload(path=str(tmp_path / "missing.npz"))
        assert excinfo.value.status == 400
        assert client.healthz()["model"]["version"] == 1

    def test_no_request_sees_a_half_swapped_model(
        self, serve, serve_dataset, dense_model_path, retrained_model_path
    ):
        """Predictions under concurrent hot swaps are always version-consistent.

        Clients hammer /predict while another thread flips the model between
        two archives; every response's labels must exactly equal the offline
        answers of the model version the response reports — a mixture would
        mean a batch straddled the swap.
        """
        client = serve(dense_model_path, max_delay=0.01)
        graphs = serve_dataset.graphs[:6]
        truth = {
            1: offline_predictions(dense_model_path, graphs),
        }
        # Versions alternate between the two archives: even -> retrained.
        retrained_truth = offline_predictions(retrained_model_path, graphs)

        stop = threading.Event()
        mismatches = []

        def hammer():
            with ServingClient(client.host, client.port) as own:
                while not stop.is_set():
                    response = own.predict(graphs)
                    version = response["model_version"]
                    labels = [p["label"] for p in response["predictions"]]
                    expected = retrained_truth if version % 2 == 0 else truth[1]
                    if labels != expected:
                        mismatches.append((version, labels))
                        return

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        paths = [retrained_model_path, dense_model_path]
        for swap in range(6):
            client.reload(path=paths[swap % 2])
        stop.set()
        for worker in workers:
            worker.join(30.0)

        assert mismatches == []
        assert client.healthz()["model"]["version"] == 7  # 1 + 6 swaps


class TestCLI:
    def test_serve_parser_wires_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--model",
                "model.npz",
                "--port",
                "0",
                "--max-batch-size",
                "32",
                "--max-delay-ms",
                "1.5",
            ]
        )
        assert args.command == "serve"
        assert args.model == "model.npz"
        assert args.port == 0
        assert args.max_batch_size == 32
        assert args.max_delay_ms == 1.5
