"""End-to-end integration tests across the whole library.

These tests exercise the same code paths as the paper's experiments, scaled
down so they run in seconds: a synthetic benchmark dataset is generated,
GraphHD and the four baselines are trained and evaluated with the
cross-validation harness, and the key qualitative claims of the paper are
checked (comparable accuracy, GraphHD training much faster than the
baselines on larger graphs).
"""

import numpy as np
import pytest

from repro import GraphHDClassifier, GraphHDConfig, load_dataset
from repro.core.extensions import RetrainedGraphHDClassifier
from repro.datasets.synthetic import make_scaling_dataset
from repro.eval.comparison import compare_methods
from repro.eval.cross_validation import cross_validate
from repro.eval.methods import make_method
from repro.eval.reporting import render_figure3
from repro.eval.scaling import scaling_experiment


@pytest.fixture(scope="module")
def benchmark_dataset():
    return load_dataset("MUTAG", scale=0.35, seed=0, prefer_real=False)


class TestEndToEndGraphHD:
    def test_cross_validated_accuracy_beats_chance(self, benchmark_dataset):
        result = cross_validate(
            lambda: GraphHDClassifier(GraphHDConfig(dimension=2048, seed=0)),
            benchmark_dataset,
            method_name="GraphHD",
            n_splits=5,
            repetitions=1,
            seed=0,
        )
        majority = max(benchmark_dataset.class_counts().values()) / len(benchmark_dataset)
        assert result.mean_accuracy > majority

    def test_retraining_extension_runs_end_to_end(self, benchmark_dataset):
        model = RetrainedGraphHDClassifier(
            GraphHDConfig(dimension=2048, seed=0), retrain_epochs=5
        )
        graphs, labels = benchmark_dataset.graphs, benchmark_dataset.labels
        split = int(len(graphs) * 0.8)
        model.fit(graphs[:split], labels[:split])
        accuracy = model.score(graphs[split:], labels[split:])
        assert 0.0 <= accuracy <= 1.0
        assert model.retraining_report is not None


class TestFigure3Pipeline:
    def test_comparison_on_small_dataset(self, benchmark_dataset):
        comparison = compare_methods(
            [benchmark_dataset],
            methods=("GraphHD", "1-WL", "GIN-e"),
            fast=True,
            n_splits=3,
            repetitions=1,
            seed=0,
            dimension=1024,
        )
        accuracy = comparison.accuracy_table()[benchmark_dataset.name]
        training = comparison.training_time_table()[benchmark_dataset.name]
        inference = comparison.inference_time_table()[benchmark_dataset.name]
        for method in ("GraphHD", "1-WL", "GIN-e"):
            assert 0.0 <= accuracy[method] <= 1.0
            assert training[method] > 0
            assert inference[method] > 0
        report = render_figure3(comparison)
        assert "Figure 3" in report
        assert "GraphHD" in report

    def test_all_five_methods_fit_on_real_shaped_data(self, benchmark_dataset):
        graphs, labels = benchmark_dataset.graphs, benchmark_dataset.labels
        split = int(len(graphs) * 0.85)
        majority = max(benchmark_dataset.class_counts().values()) / len(benchmark_dataset)
        for name in ("GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK"):
            model = make_method(name, fast=True, seed=0, dimension=1024)
            model.fit(graphs[:split], labels[:split])
            predictions = model.predict(graphs[split:])
            assert len(predictions) == len(graphs) - split


class TestFigure4Pipeline:
    def test_scaling_sweep_produces_all_series(self):
        # A miniature Figure 4 sweep: every method is timed at every size.
        # The qualitative ordering claim (GraphHD fastest) is checked by the
        # benchmark harness at realistic sizes; timings at toy scale are too
        # noisy for a strict assertion here.
        points = scaling_experiment(
            [40, 100],
            methods=("GraphHD", "GIN-e", "WL-OA"),
            num_graphs=20,
            fast=True,
            seed=0,
            dimension=1024,
        )
        assert [point.num_vertices for point in points] == [40, 100]
        for point in points:
            for method in ("GraphHD", "GIN-e", "WL-OA"):
                assert point.train_seconds[method] > 0
                assert 0.0 <= point.accuracy[method] <= 1.0

    def test_graphhd_training_time_scales_gently(self):
        # GraphHD's per-graph cost is linear in the number of edges; doubling
        # the vertex count (quadrupling the edges under fixed edge probability)
        # must not blow up the training time by more than an order of magnitude.
        points = scaling_experiment(
            [50, 100],
            methods=("GraphHD",),
            num_graphs=20,
            fast=True,
            seed=0,
            dimension=1024,
        )
        small, large = (point.train_seconds["GraphHD"] for point in points)
        assert large < small * 20


class TestDatasetRegistryIntegration:
    def test_all_benchmarks_generate_and_encode(self):
        encoder_config = GraphHDConfig(dimension=512, seed=0)
        for name in ("MUTAG", "PTC_FM", "ENZYMES"):
            dataset = load_dataset(name, scale=0.05, seed=0, prefer_real=False)
            sample = dataset.graphs[: min(10, len(dataset))]
            model = GraphHDClassifier(encoder_config)
            encodings = model.encode(sample)
            assert encodings.shape == (len(sample), 512)
