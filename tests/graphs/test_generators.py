"""Tests for the random graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    ring_of_cliques_graph,
    tree_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import average_clustering_coefficient, graph_density


class TestErdosRenyi:
    def test_vertex_count(self):
        graph = erdos_renyi_graph(50, 0.1, rng=0)
        assert graph.num_vertices == 50

    def test_zero_probability_gives_no_edges(self):
        graph = erdos_renyi_graph(30, 0.0, rng=0)
        assert graph.num_edges == 0

    def test_probability_one_gives_complete_graph(self):
        graph = erdos_renyi_graph(10, 1.0, rng=0)
        assert graph.num_edges == 45

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_graph(100, 0.05, rng=0)
        expected = 0.05 * 100 * 99 / 2
        assert 0.6 * expected < graph.num_edges < 1.4 * expected

    def test_reproducible(self):
        first = erdos_renyi_graph(40, 0.1, rng=5)
        second = erdos_renyi_graph(40, 0.1, rng=5)
        assert first.edges() == second.edges()

    def test_graph_label_passed_through(self):
        graph = erdos_renyi_graph(5, 0.5, rng=0, graph_label="A")
        assert graph.graph_label == "A"

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)

    def test_invalid_vertex_count(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(-1, 0.5)

    def test_trivial_sizes(self):
        assert erdos_renyi_graph(0, 0.5, rng=0).num_vertices == 0
        assert erdos_renyi_graph(1, 0.5, rng=0).num_edges == 0


class TestPlantedPartition:
    def test_within_community_denser(self):
        graph = planted_partition_graph([25, 25], 0.5, 0.02, rng=0)
        within = 0
        between = 0
        for u, v in graph.edges():
            same = (u < 25) == (v < 25)
            if same:
                within += 1
            else:
                between += 1
        assert within > between

    def test_total_vertices(self):
        graph = planted_partition_graph([10, 20, 5], 0.3, 0.05, rng=0)
        assert graph.num_vertices == 35

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            planted_partition_graph([5, 5], 1.5, 0.1)
        with pytest.raises(ValueError):
            planted_partition_graph([5, 5], 0.5, -0.1)

    def test_negative_community_size(self):
        with pytest.raises(ValueError):
            planted_partition_graph([-1, 5], 0.5, 0.1)

    def test_empty_partition(self):
        graph = planted_partition_graph([], 0.5, 0.1, rng=0)
        assert graph.num_vertices == 0


class TestRingOfCliques:
    def test_structure(self):
        graph = ring_of_cliques_graph(4, 5)
        assert graph.num_vertices == 20
        # Each clique has C(5,2)=10 edges plus one bridge per clique.
        assert graph.num_edges == 4 * 10 + 4

    def test_single_clique(self):
        graph = ring_of_cliques_graph(1, 4)
        assert graph.num_vertices == 4
        assert graph.num_edges == 6

    def test_high_clustering(self):
        graph = ring_of_cliques_graph(5, 5)
        assert average_clustering_coefficient(graph) > 0.5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ring_of_cliques_graph(0, 3)
        with pytest.raises(ValueError):
            ring_of_cliques_graph(3, 0)


class TestWattsStrogatz:
    def test_vertex_count_and_connectivity(self):
        graph = watts_strogatz_graph(30, 4, 0.1, rng=0)
        assert graph.num_vertices == 30
        assert graph.num_edges >= 30  # at least the ring lattice edges

    def test_zero_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(10, 2, 0.0, rng=0)
        for vertex in range(10):
            assert graph.has_edge(vertex, (vertex + 1) % 10)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 2, 1.5)

    def test_small_graphs(self):
        assert watts_strogatz_graph(1, 2, 0.1, rng=0).num_edges == 0
        assert watts_strogatz_graph(0, 2, 0.1, rng=0).num_vertices == 0


class TestBarabasiAlbert:
    def test_vertex_count(self):
        graph = barabasi_albert_graph(50, 2, rng=0)
        assert graph.num_vertices == 50

    def test_connected(self):
        graph = barabasi_albert_graph(40, 2, rng=0)
        assert len(graph.connected_components()) == 1

    def test_heavy_tailed_degrees(self):
        graph = barabasi_albert_graph(200, 2, rng=0)
        degrees = graph.degrees()
        assert degrees.max() > 4 * np.median(degrees)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(-1, 2)
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, 0)

    def test_small_graph(self):
        graph = barabasi_albert_graph(3, 5, rng=0)
        assert graph.num_vertices == 3


class TestTreeGraph:
    def test_edge_count(self):
        graph = tree_graph(25, rng=0)
        assert graph.num_edges == 24

    def test_connected_and_acyclic(self):
        graph = tree_graph(30, rng=0)
        assert len(graph.connected_components()) == 1
        # A connected graph with n-1 edges is a tree.
        assert graph.num_edges == graph.num_vertices - 1

    def test_max_children_respected(self):
        graph = tree_graph(40, max_children=2, rng=0)
        # Children plus possibly one parent edge.
        assert graph.degrees().max() <= 3

    def test_trivial_sizes(self):
        assert tree_graph(0, rng=0).num_vertices == 0
        assert tree_graph(1, rng=0).num_edges == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            tree_graph(-2)
        with pytest.raises(ValueError):
            tree_graph(5, max_children=0)


class TestDensityContrast:
    def test_archetypes_have_distinct_structure(self):
        """The class archetypes used by the synthetic datasets are distinguishable."""
        rng = np.random.default_rng(0)
        cliquey = ring_of_cliques_graph(5, 5, rng=rng)
        tree = tree_graph(25, rng=rng)
        assert average_clustering_coefficient(cliquey) > average_clustering_coefficient(tree)
        assert graph_density(cliquey) > graph_density(tree)
