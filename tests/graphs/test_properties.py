"""Tests for graph and dataset statistics."""

import pytest

from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    average_clustering_coefficient,
    dataset_statistics,
    degree_histogram,
    graph_density,
)


class TestGraphDensity:
    def test_complete_graph(self):
        graph = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert graph_density(graph) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert graph_density(Graph(5)) == 0.0

    def test_trivial_graphs(self):
        assert graph_density(Graph(0)) == 0.0
        assert graph_density(Graph(1)) == 0.0

    def test_path_density(self, path_graph):
        assert graph_density(path_graph) == pytest.approx(4 / 10)


class TestDatasetStatistics:
    def test_basic_statistics(self, small_graph_collection):
        stats = dataset_statistics("toy", small_graph_collection)
        assert stats.name == "toy"
        assert stats.num_graphs == 6
        assert stats.num_classes == 2
        expected_vertices = sum(g.num_vertices for g in small_graph_collection) / 6
        assert stats.avg_vertices == pytest.approx(expected_vertices)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            dataset_statistics("empty", [])

    def test_as_row(self, small_graph_collection):
        row = dataset_statistics("toy", small_graph_collection).as_row()
        assert row[0] == "toy"
        assert row[1] == 6
        assert row[2] == 2

    def test_unlabelled_graphs_not_counted_as_class(self):
        graphs = [Graph(3, [(0, 1)], graph_label=0), Graph(3, [(0, 1)])]
        stats = dataset_statistics("mixed", graphs)
        assert stats.num_classes == 1


class TestDegreeHistogram:
    def test_star(self, star_graph):
        histogram = degree_histogram(star_graph)
        assert histogram == {5: 1, 1: 5}

    def test_empty(self):
        assert degree_histogram(Graph(0)) == {}

    def test_total_matches_vertex_count(self):
        graph = erdos_renyi_graph(30, 0.2, rng=0)
        histogram = degree_histogram(graph)
        assert sum(histogram.values()) == 30


class TestClusteringCoefficient:
    def test_triangle_is_fully_clustered(self, triangle_graph):
        assert average_clustering_coefficient(triangle_graph) == pytest.approx(1.0)

    def test_star_has_no_clustering(self, star_graph):
        assert average_clustering_coefficient(star_graph) == 0.0

    def test_empty_graph(self):
        assert average_clustering_coefficient(Graph(0)) == 0.0

    def test_between_zero_and_one(self):
        graph = erdos_renyi_graph(25, 0.3, rng=0)
        coefficient = average_clustering_coefficient(graph)
        assert 0.0 <= coefficient <= 1.0
