"""Tests for the Graph data structure."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.edges() == []

    def test_vertices_without_edges(self):
        graph = Graph(5)
        assert graph.num_vertices == 5
        assert graph.num_edges == 0
        assert list(graph.vertices()) == [0, 1, 2, 3, 4]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_edges_from_constructor(self, triangle_graph):
        assert triangle_graph.num_edges == 3
        assert triangle_graph.edges() == [(0, 1), (0, 2), (1, 2)]

    def test_duplicate_edges_collapsed(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_vertex_label_count_checked(self):
        with pytest.raises(ValueError):
            Graph(3, vertex_labels=["a", "b"])

    def test_edge_labels_canonicalized(self):
        graph = Graph(3, [(0, 1)], edge_labels={(1, 0): "bond"})
        assert graph.edge_labels == {(0, 1): "bond"}

    def test_graph_label_stored(self):
        graph = Graph(2, graph_label="positive")
        assert graph.graph_label == "positive"

    def test_len_and_iter(self, path_graph):
        assert len(path_graph) == 5
        assert list(path_graph) == [0, 1, 2, 3, 4]


class TestMutation:
    def test_add_edge(self):
        graph = Graph(4)
        graph.add_edge(0, 3)
        assert graph.has_edge(0, 3)
        assert graph.has_edge(3, 0)
        assert graph.num_edges == 1

    def test_add_edge_out_of_range(self):
        graph = Graph(3)
        with pytest.raises(IndexError):
            graph.add_edge(0, 3)
        with pytest.raises(IndexError):
            graph.add_edge(-1, 1)

    def test_self_loop_allowed(self):
        graph = Graph(2)
        graph.add_edge(1, 1)
        assert graph.has_edge(1, 1)
        assert graph.degree(1) == 1

    def test_add_edge_invalidates_matrix_cache(self):
        graph = Graph(3, [(0, 1)])
        first = graph.adjacency_matrix()
        graph.add_edge(1, 2)
        second = graph.adjacency_matrix()
        assert second.nnz > first.nnz


class TestViews:
    def test_neighbors_sorted(self, star_graph):
        assert star_graph.neighbors(0) == [1, 2, 3, 4, 5]
        assert star_graph.neighbors(3) == [0]

    def test_neighbors_out_of_range(self, star_graph):
        with pytest.raises(IndexError):
            star_graph.neighbors(6)

    def test_degrees(self, star_graph):
        degrees = star_graph.degrees()
        assert degrees[0] == 5
        assert np.all(degrees[1:] == 1)

    def test_degree_single_vertex(self, triangle_graph):
        assert triangle_graph.degree(0) == 2

    def test_has_edge_out_of_range_is_false(self, triangle_graph):
        assert not triangle_graph.has_edge(0, 99)
        assert not triangle_graph.has_edge(-1, 0)

    def test_vertex_label_access(self, labelled_graph):
        assert labelled_graph.vertex_label(1) == "N"

    def test_vertex_label_without_labels_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.vertex_label(0)


class TestAdjacencyMatrix:
    def test_shape_and_symmetry(self, path_graph):
        matrix = path_graph.adjacency_matrix()
        assert matrix.shape == (5, 5)
        dense = matrix.toarray()
        assert np.array_equal(dense, dense.T)

    def test_entries(self, triangle_graph):
        dense = triangle_graph.adjacency_matrix().toarray()
        expected = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float)
        assert np.array_equal(dense, expected)

    def test_row_sums_are_degrees(self, star_graph):
        matrix = star_graph.adjacency_matrix()
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.array_equal(row_sums, star_graph.degrees().astype(float))

    def test_empty_graph_matrix(self):
        graph = Graph(4)
        matrix = graph.adjacency_matrix()
        assert matrix.shape == (4, 4)
        assert matrix.nnz == 0

    def test_cache_reused(self, triangle_graph):
        assert triangle_graph.adjacency_matrix() is triangle_graph.adjacency_matrix()


class TestConnectedComponents:
    def test_single_component(self, path_graph):
        components = path_graph.connected_components()
        assert components == [[0, 1, 2, 3, 4]]

    def test_multiple_components(self):
        graph = Graph(6, [(0, 1), (2, 3)])
        components = graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,), (5,)]

    def test_empty_graph(self):
        assert Graph(0).connected_components() == []


class TestNetworkxConversion:
    def test_roundtrip_structure(self, labelled_graph):
        nx_graph = labelled_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.num_vertices == labelled_graph.num_vertices
        assert back.edges() == labelled_graph.edges()
        assert back.vertex_labels == labelled_graph.vertex_labels
        assert back.edge_labels == labelled_graph.edge_labels
        assert back.graph_label == labelled_graph.graph_label

    def test_from_networkx_generator(self):
        nx_graph = nx.cycle_graph(6)
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_vertices == 6
        assert graph.num_edges == 6

    def test_from_networkx_relabels_nodes(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("x", "y")
        nx_graph.add_edge("y", "z")
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_to_networkx_preserves_attributes(self, labelled_graph):
        nx_graph = labelled_graph.to_networkx()
        assert nx_graph.nodes[0]["label"] == "C"
        assert nx_graph.graph["label"] == 1


class TestCopyAndRelabel:
    def test_copy_is_independent(self, triangle_graph):
        copy = triangle_graph.copy()
        copy.add_edge(0, 0)
        assert not triangle_graph.has_edge(0, 0)

    def test_copy_preserves_labels(self, labelled_graph):
        copy = labelled_graph.copy()
        assert copy.vertex_labels == labelled_graph.vertex_labels
        assert copy.graph_label == labelled_graph.graph_label

    def test_relabel(self, triangle_graph):
        relabelled = triangle_graph.relabel(["a", "b", "c"])
        assert relabelled.vertex_labels == ["a", "b", "c"]
        assert triangle_graph.vertex_labels is None

    def test_relabel_wrong_length(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.relabel(["a"])


class TestEdgeArrays:
    def test_edge_arrays_match_sorted_edges(self, triangle_graph):
        sources, targets = triangle_graph.edge_arrays()
        assert sources.dtype == np.int64 and targets.dtype == np.int64
        assert list(zip(sources, targets)) == triangle_graph.edges()

    def test_edge_arrays_cached(self, triangle_graph):
        first = triangle_graph.edge_arrays()
        second = triangle_graph.edge_arrays()
        assert first[0] is second[0] and first[1] is second[1]

    def test_edge_arrays_invalidated_by_add_edge(self):
        graph = Graph(4, [(0, 1)])
        before = graph.edge_arrays()
        graph.add_edge(2, 3)
        sources, targets = graph.edge_arrays()
        assert sources is not before[0]
        assert list(zip(sources, targets)) == [(0, 1), (2, 3)]

    def test_edge_arrays_read_only(self, triangle_graph):
        sources, _ = triangle_graph.edge_arrays()
        with pytest.raises(ValueError):
            sources[0] = 99

    def test_edge_arrays_empty_graph(self):
        sources, targets = Graph(3).edge_arrays()
        assert sources.shape == (0,) and targets.shape == (0,)
