"""Tests for centrality measures (PageRank, degree, eigenvector, ranks)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.centrality import (
    centrality_ranks,
    degree_centrality,
    eigenvector_centrality,
    pagerank,
    pagerank_matrix,
)
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph


class TestPageRank:
    def test_sums_to_one(self, path_graph):
        ranks = pagerank(path_graph)
        assert ranks.sum() == pytest.approx(1.0)

    def test_uniform_on_symmetric_graph(self, triangle_graph):
        ranks = pagerank(triangle_graph)
        assert np.allclose(ranks, 1.0 / 3.0)

    def test_star_hub_is_most_central(self, star_graph):
        ranks = pagerank(star_graph)
        assert ranks.argmax() == 0

    def test_empty_graph(self):
        assert pagerank(Graph(0)).size == 0

    def test_isolated_vertices_get_uniform_share(self):
        graph = Graph(4, [(0, 1)])
        ranks = pagerank(graph)
        assert ranks.sum() == pytest.approx(1.0)
        assert np.all(ranks > 0)

    def test_zero_iterations_returns_uniform(self, star_graph):
        ranks = pagerank(star_graph, iterations=0)
        assert np.allclose(ranks, 1.0 / star_graph.num_vertices)

    def test_matches_networkx(self):
        graph = erdos_renyi_graph(40, 0.15, rng=0)
        nx_graph = graph.to_networkx()
        ours = pagerank(graph, iterations=100, tolerance=1e-12)
        reference = nx.pagerank(nx_graph, alpha=0.85, max_iter=200, tol=1e-12)
        reference_array = np.array([reference[v] for v in range(graph.num_vertices)])
        assert np.allclose(ours, reference_array, atol=1e-6)

    def test_damping_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            pagerank(triangle_graph, damping=1.5)

    def test_iterations_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            pagerank(triangle_graph, iterations=-1)

    def test_early_stopping_with_tolerance(self, star_graph):
        loose = pagerank(star_graph, iterations=200, tolerance=1e-3)
        tight = pagerank(star_graph, iterations=200, tolerance=1e-14)
        assert np.allclose(loose, tight, atol=1e-2)

    def test_ten_iterations_close_to_converged(self):
        # The paper fixes 10 iterations; on the small sparse graphs of the
        # benchmarks that is already close to the fixed point.
        graph = erdos_renyi_graph(30, 0.1, rng=1)
        ten = pagerank(graph, iterations=10)
        converged = pagerank(graph, iterations=500, tolerance=1e-14)
        assert np.abs(ten - converged).max() < 0.01


class TestPageRankMatrix:
    def test_matches_per_graph_pagerank(self):
        graphs = [erdos_renyi_graph(15 + i, 0.2, rng=i) for i in range(7)]
        batched = pagerank_matrix(graphs, batch_size=3)
        for graph, batch_result in zip(graphs, batched):
            single = pagerank(graph)
            assert np.allclose(batch_result, single, atol=1e-10)

    def test_batch_size_larger_than_input(self):
        graphs = [erdos_renyi_graph(10, 0.3, rng=i) for i in range(3)]
        batched = pagerank_matrix(graphs, batch_size=256)
        assert len(batched) == 3

    def test_empty_graph_in_batch(self):
        graphs = [Graph(0), erdos_renyi_graph(10, 0.3, rng=0)]
        batched = pagerank_matrix(graphs)
        assert batched[0].size == 0
        assert batched[1].size == 10

    def test_all_empty_batch(self):
        batched = pagerank_matrix([Graph(0), Graph(0)])
        assert all(result.size == 0 for result in batched)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            pagerank_matrix([Graph(1)], batch_size=0)

    def test_empty_list(self):
        assert pagerank_matrix([]) == []


class TestDegreeCentrality:
    def test_values(self, star_graph):
        centrality = degree_centrality(star_graph)
        assert centrality[0] == pytest.approx(1.0)
        assert centrality[1] == pytest.approx(0.2)

    def test_empty_and_singleton(self):
        assert degree_centrality(Graph(0)).size == 0
        assert degree_centrality(Graph(1))[0] == 0.0

    def test_matches_networkx(self, path_graph):
        ours = degree_centrality(path_graph)
        reference = nx.degree_centrality(path_graph.to_networkx())
        assert np.allclose(ours, [reference[v] for v in range(5)])


class TestEigenvectorCentrality:
    def test_star_hub_dominates(self, star_graph):
        centrality = eigenvector_centrality(star_graph)
        assert centrality.argmax() == 0

    def test_uniform_on_cycle(self):
        cycle = Graph(5, [(i, (i + 1) % 5) for i in range(5)])
        centrality = eigenvector_centrality(cycle)
        assert np.allclose(centrality, centrality[0])

    def test_edgeless_graph(self):
        centrality = eigenvector_centrality(Graph(3))
        assert np.allclose(centrality, 0.0)

    def test_empty_graph(self):
        assert eigenvector_centrality(Graph(0)).size == 0


class TestCentralityRanks:
    def test_most_central_gets_rank_zero(self, star_graph):
        ranks = centrality_ranks(pagerank(star_graph))
        assert ranks[0] == 0

    def test_ranks_are_a_permutation(self):
        values = np.array([0.1, 0.5, 0.2, 0.9])
        ranks = centrality_ranks(values)
        assert sorted(ranks) == [0, 1, 2, 3]
        assert ranks[3] == 0
        assert ranks[0] == 3

    def test_ties_broken_by_vertex_index(self):
        values = np.array([0.5, 0.5, 0.5])
        ranks = centrality_ranks(values)
        assert list(ranks) == [0, 1, 2]

    def test_deterministic(self):
        values = np.random.default_rng(0).random(50)
        assert np.array_equal(centrality_ranks(values), centrality_ranks(values))

    def test_empty(self):
        assert centrality_ranks(np.array([])).size == 0
