"""Tests for Weisfeiler–Leman colour refinement."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.wl_refinement import (
    ColorDictionary,
    initial_colors,
    refine_once,
    wl_color_histories,
    wl_refinement,
    wl_subtree_features,
)


class TestColorDictionary:
    def test_injective(self):
        dictionary = ColorDictionary()
        first = dictionary.get(("a",))
        second = dictionary.get(("b",))
        assert first != second
        assert dictionary.get(("a",)) == first
        assert len(dictionary) == 2

    def test_colors_are_consecutive_integers(self):
        dictionary = ColorDictionary()
        colors = [dictionary.get(key) for key in ("x", "y", "z")]
        assert colors == [0, 1, 2]


class TestInitialColors:
    def test_unlabelled_graphs_share_one_color(self, triangle_graph, path_graph):
        dictionary = ColorDictionary()
        first = initial_colors(triangle_graph, dictionary)
        second = initial_colors(path_graph, dictionary)
        assert len(set(first) | set(second)) == 1

    def test_labelled_graph_uses_labels(self, labelled_graph):
        dictionary = ColorDictionary()
        colors = initial_colors(labelled_graph, dictionary)
        # Labels are C, N, C, O -> vertices 0 and 2 share a colour.
        assert colors[0] == colors[2]
        assert colors[0] != colors[1]
        assert colors[1] != colors[3]

    def test_labels_can_be_ignored(self, labelled_graph):
        dictionary = ColorDictionary()
        colors = initial_colors(labelled_graph, dictionary, use_vertex_labels=False)
        assert len(set(colors)) == 1


class TestRefinement:
    def test_refinement_separates_degrees(self, star_graph):
        dictionary = ColorDictionary()
        colors = initial_colors(star_graph, dictionary)
        refined = refine_once(star_graph, colors, dictionary)
        # Hub and leaves have different degree so they get different colours.
        assert refined[0] != refined[1]
        assert len(set(refined[1:])) == 1

    def test_regular_graph_stays_uniform(self, triangle_graph):
        dictionary = ColorDictionary()
        colors = initial_colors(triangle_graph, dictionary)
        refined = refine_once(triangle_graph, colors, dictionary)
        assert len(set(refined)) == 1

    def test_wl_refinement_history_length(self, small_graph_collection):
        histories = wl_refinement(small_graph_collection, 3)
        assert len(histories) == len(small_graph_collection)
        for history, graph in zip(histories, small_graph_collection):
            assert len(history) == 4
            for colors in history:
                assert colors.shape == (graph.num_vertices,)

    def test_negative_iterations_rejected(self, small_graph_collection):
        with pytest.raises(ValueError):
            wl_refinement(small_graph_collection, -1)

    def test_colors_shared_across_graphs(self):
        # Two isomorphic paths must receive identical colour multisets.
        first = Graph(4, [(0, 1), (1, 2), (2, 3)])
        second = Graph(4, [(3, 2), (2, 1), (1, 0)])
        histories = wl_refinement([first, second], 2)
        for round_index in range(3):
            assert sorted(histories[0][round_index]) == sorted(histories[1][round_index])

    def test_non_isomorphic_graphs_get_different_colors(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        star = Graph(4, [(0, 1), (0, 2), (0, 3)])
        histories = wl_refinement([path, star], 2)
        assert sorted(histories[0][2]) != sorted(histories[1][2])


class TestSubtreeFeatures:
    def test_identical_graphs_identical_features(self, triangle_graph):
        features = wl_subtree_features([triangle_graph, triangle_graph.copy()], 3)
        assert features[0] == features[1]

    def test_feature_counts_sum_to_vertices_times_rounds(self, path_graph):
        iterations = 3
        features = wl_subtree_features([path_graph], iterations)[0]
        assert sum(features.values()) == path_graph.num_vertices * (iterations + 1)

    def test_zero_iterations(self, path_graph, star_graph):
        features = wl_subtree_features([path_graph, star_graph], 0)
        # With zero iterations and no labels every vertex has the same colour.
        assert list(features[0].values()) == [path_graph.num_vertices]
        assert list(features[1].values()) == [star_graph.num_vertices]


class TestColorHistories:
    def test_shape(self, small_graph_collection):
        histories = wl_color_histories(small_graph_collection, 2)
        for history, graph in zip(histories, small_graph_collection):
            assert history.shape == (graph.num_vertices, 3)

    def test_empty_graph(self):
        histories = wl_color_histories([Graph(0)], 2)
        assert histories[0].shape == (0, 3)

    def test_isomorphic_graphs_share_row_multisets(self):
        first = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        second = Graph(5, [(4, 3), (3, 2), (2, 1), (1, 0)])
        histories = wl_color_histories([first, second], 2)
        rows_first = sorted(map(tuple, histories[0]))
        rows_second = sorted(map(tuple, histories[1]))
        assert rows_first == rows_second
