"""Tests for the Figure 3 comparison runner and the Figure 4 scaling sweep."""

import pytest

from repro.datasets.dataset import GraphDataset
from repro.eval.comparison import ComparisonResult, compare_methods
from repro.eval.cross_validation import CrossValidationResult, FoldResult
from repro.eval.scaling import scaling_experiment


def make_result(dataset, method, accuracy, train_seconds, inference_seconds):
    result = CrossValidationResult(method=method, dataset=dataset)
    result.folds.append(
        FoldResult(
            fold=0,
            repetition=0,
            accuracy=accuracy,
            train_seconds=train_seconds,
            test_seconds=inference_seconds * 10,
            num_train_graphs=90,
            num_test_graphs=10,
        )
    )
    return result


@pytest.fixture
def synthetic_comparison():
    comparison = ComparisonResult()
    values = {
        ("A", "GraphHD"): (0.7, 1.0, 0.01),
        ("A", "GIN-e"): (0.72, 10.0, 0.02),
        ("A", "WL-OA"): (0.75, 20.0, 0.2),
        ("B", "GraphHD"): (0.6, 2.0, 0.01),
        ("B", "GIN-e"): (0.62, 30.0, 0.02),
        ("B", "WL-OA"): (0.66, 10.0, 0.05),
    }
    for (dataset, method), (accuracy, train, infer) in values.items():
        comparison.results[(dataset, method)] = make_result(
            dataset, method, accuracy, train, infer
        )
    return comparison


class TestComparisonResult:
    def test_datasets_and_methods(self, synthetic_comparison):
        assert synthetic_comparison.datasets() == ["A", "B"]
        assert synthetic_comparison.methods() == ["GraphHD", "GIN-e", "WL-OA"]

    def test_accuracy_table(self, synthetic_comparison):
        table = synthetic_comparison.accuracy_table()
        assert table["A"]["GraphHD"] == pytest.approx(0.7)
        assert table["B"]["WL-OA"] == pytest.approx(0.66)

    def test_training_time_table(self, synthetic_comparison):
        table = synthetic_comparison.training_time_table()
        assert table["A"]["GIN-e"] == pytest.approx(10.0)

    def test_inference_time_table(self, synthetic_comparison):
        table = synthetic_comparison.inference_time_table()
        assert table["A"]["WL-OA"] == pytest.approx(0.2)

    def test_speedups_geometric_mean(self, synthetic_comparison):
        speedups = synthetic_comparison.speedup_over(["GIN-e", "WL-OA"], metric="train")
        # GIN-e: ratios 10 and 15 -> geometric mean sqrt(150).
        assert speedups["GIN-e"] == pytest.approx((10 * 15) ** 0.5)
        assert speedups["WL-OA"] == pytest.approx((20 * 5) ** 0.5)

    def test_inference_speedups(self, synthetic_comparison):
        speedups = synthetic_comparison.speedup_over(["GIN-e"], metric="inference")
        assert speedups["GIN-e"] == pytest.approx(2.0)

    def test_invalid_metric_rejected(self, synthetic_comparison):
        with pytest.raises(ValueError):
            synthetic_comparison.speedup_over(["GIN-e"], metric="accuracy")

    def test_get(self, synthetic_comparison):
        result = synthetic_comparison.get("A", "GraphHD")
        assert result.method == "GraphHD"


class TestCompareMethods:
    def test_small_run(self, two_class_dataset):
        comparison = compare_methods(
            [two_class_dataset],
            methods=("GraphHD", "1-WL"),
            fast=True,
            n_splits=3,
            repetitions=1,
            seed=0,
            dimension=1024,
        )
        assert len(comparison.results) == 2
        accuracy = comparison.accuracy_table()[two_class_dataset.name]
        assert accuracy["GraphHD"] > 0.7
        assert accuracy["1-WL"] > 0.7

    def test_packed_backend_run(self, two_class_dataset):
        comparison = compare_methods(
            [two_class_dataset],
            methods=("GraphHD",),
            fast=True,
            n_splits=3,
            repetitions=1,
            seed=0,
            dimension=1024,
            backend="packed",
        )
        accuracy = comparison.accuracy_table()[two_class_dataset.name]
        assert accuracy["GraphHD"] > 0.7

    def test_max_folds_limits_work(self, two_class_dataset):
        comparison = compare_methods(
            [two_class_dataset],
            methods=("GraphHD",),
            fast=True,
            n_splits=5,
            repetitions=1,
            max_folds_per_repetition=2,
            seed=0,
            dimension=1024,
        )
        result = comparison.get(two_class_dataset.name, "GraphHD")
        assert len(result.folds) == 2


class TestScalingExperiment:
    def test_packed_backend_point(self):
        points = scaling_experiment(
            [20],
            methods=("GraphHD",),
            num_graphs=20,
            fast=True,
            seed=0,
            dimension=1024,
            backend="packed",
        )
        assert points[0].train_seconds["GraphHD"] > 0
        assert 0.0 <= points[0].accuracy["GraphHD"] <= 1.0

    def test_points_and_methods(self):
        points = scaling_experiment(
            [20, 40],
            methods=("GraphHD",),
            num_graphs=20,
            fast=True,
            seed=0,
            dimension=1024,
        )
        assert len(points) == 2
        assert points[0].num_vertices == 20
        assert "GraphHD" in points[0].train_seconds
        assert points[0].train_seconds["GraphHD"] > 0
        assert 0.0 <= points[0].accuracy["GraphHD"] <= 1.0

    def test_training_time_grows_with_graph_size(self):
        points = scaling_experiment(
            [20, 160],
            methods=("GraphHD",),
            num_graphs=20,
            fast=True,
            seed=0,
            dimension=1024,
        )
        assert (
            points[1].train_seconds["GraphHD"] > points[0].train_seconds["GraphHD"] * 0.5
        )
