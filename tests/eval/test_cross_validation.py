"""Tests for the cross-validation harness."""

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import (
    CrossValidationResult,
    FoldResult,
    cross_validate,
    supports_encoding_cache,
)


def graphhd_factory():
    return GraphHDClassifier(GraphHDConfig(dimension=1024, seed=0))


class TestFoldResult:
    def test_inference_time_per_graph(self):
        fold = FoldResult(
            fold=0,
            repetition=0,
            accuracy=0.9,
            train_seconds=1.0,
            test_seconds=0.5,
            num_train_graphs=90,
            num_test_graphs=10,
        )
        assert fold.inference_seconds_per_graph == pytest.approx(0.05)

    def test_zero_test_graphs(self):
        fold = FoldResult(0, 0, 0.0, 1.0, 0.5, 10, 0)
        assert fold.inference_seconds_per_graph == 0.0


class TestCrossValidate:
    def test_full_protocol_fold_count(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            method_name="GraphHD",
            n_splits=5,
            repetitions=2,
            seed=0,
        )
        assert len(result.folds) == 10
        assert result.method == "GraphHD"
        assert result.dataset == two_class_dataset.name

    def test_accuracy_on_separable_data(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
        )
        assert result.mean_accuracy > 0.8
        assert 0.0 <= result.std_accuracy <= 0.5

    def test_timings_positive(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        assert result.mean_train_seconds > 0
        assert result.mean_test_seconds > 0
        assert result.mean_inference_seconds_per_graph > 0

    def test_max_folds_per_repetition(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=2,
            max_folds_per_repetition=2,
            seed=0,
        )
        assert len(result.folds) == 4

    def test_summary_keys(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        summary = result.summary()
        for key in (
            "method",
            "dataset",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds",
            "inference_seconds_per_graph",
            "folds",
        ):
            assert key in summary

    def test_invalid_repetitions(self, two_class_dataset):
        with pytest.raises(ValueError):
            cross_validate(graphhd_factory, two_class_dataset, repetitions=0)

    def test_fresh_model_per_fold(self, two_class_dataset):
        created = []

        def counting_factory():
            model = graphhd_factory()
            created.append(model)
            return model

        # n_jobs=1 pinned: the factory-call count is observed in-process,
        # which only works on the serial path (workers get their own copies).
        cross_validate(
            counting_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
            encoding_cache=False,
            n_jobs=1,
        )
        assert len(created) == 5
        assert len({id(model) for model in created}) == 5

    def test_fresh_model_per_fold_with_cache_probe(self, two_class_dataset):
        created = []

        def counting_factory():
            model = graphhd_factory()
            created.append(model)
            return model

        cross_validate(
            counting_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
            n_jobs=1,
        )
        # One probe model encodes the dataset, then one fresh model per fold.
        assert len(created) == 6
        assert len({id(model) for model in created}) == 6


class TestSeedHandling:
    def test_base_seed_records_explicit_seed(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=42
        )
        assert result.base_seed == 42
        assert result.summary()["base_seed"] == 42

    def test_seed_none_draws_one_base_seed_up_front(self, two_class_dataset):
        # Regression: seed=None used to hand every repetition an unseeded
        # splitter, making the run unrecordable and parallel dispatch
        # non-reproducible.  It now draws one base seed up front; re-running
        # with that recorded seed reproduces the folds exactly.
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=2, seed=None
        )
        assert result.base_seed is not None
        replay = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=2,
            seed=result.base_seed,
        )
        assert [fold.accuracy for fold in result.folds] == [
            fold.accuracy for fold in replay.folds
        ]
        assert [fold.test_indices for fold in result.folds] == [
            fold.test_indices for fold in replay.folds
        ]

    def test_seed_none_parallel_matches_recorded_replay(self, two_class_dataset):
        # The same property through the parallel path: a seedless parallel
        # run is internally consistent and reproducible from its base seed.
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=None,
            n_jobs=2,
        )
        replay = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=result.base_seed,
            n_jobs=1,
        )
        assert [fold.accuracy for fold in result.folds] == [
            fold.accuracy for fold in replay.folds
        ]

    def test_fold_results_record_assignments(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        covered = sorted(
            index for fold in result.folds for index in fold.test_indices
        )
        assert covered == list(range(len(two_class_dataset)))


class TestEncodingCache:
    def test_supports_encoding_cache_protocol(self):
        assert supports_encoding_cache(graphhd_factory())

        class FitPredictOnly:
            def fit(self, graphs, labels):
                return self

            def predict(self, graphs):
                return []

        assert not supports_encoding_cache(FitPredictOnly())

    def test_cached_and_uncached_accuracies_identical(self, two_class_dataset):
        cached = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=2,
            seed=0,
            encoding_cache=True,
        )
        uncached = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=2,
            seed=0,
            encoding_cache=False,
        )
        assert [fold.accuracy for fold in cached.folds] == [
            fold.accuracy for fold in uncached.folds
        ]
        assert cached.mean_accuracy == uncached.mean_accuracy

    def test_cached_accuracies_identical_with_tuple_labels(self, two_class_dataset):
        # Hashable structured labels (tuples) must survive the encoded path.
        for graph in two_class_dataset.graphs:
            graph.graph_label = ("class", graph.graph_label)
        results = {}
        for flag in (True, False):
            results[flag] = cross_validate(
                graphhd_factory,
                two_class_dataset,
                n_splits=4,
                repetitions=1,
                seed=0,
                encoding_cache=flag,
            )
        assert [fold.accuracy for fold in results[True].folds] == [
            fold.accuracy for fold in results[False].folds
        ]

    def test_cache_reports_encoding_cost_separately(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        assert result.encoding_cached
        assert result.encoding_seconds > 0.0
        summary = result.summary()
        assert summary["encoding_cached"] is True
        assert summary["encoding_seconds"] == result.encoding_seconds

    def test_uncached_result_reports_no_encoding_cost(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
            encoding_cache=False,
        )
        assert not result.encoding_cached
        assert result.encoding_seconds == 0.0

    def test_random_centrality_vetoes_cache(self, two_class_dataset):
        # "random" vertex identifiers consume a stream per encoded batch, so
        # caching would change (not just reorder) results; the model vetoes
        # the cache and cached/uncached runs therefore stay identical.
        def random_factory():
            return GraphHDClassifier(
                GraphHDConfig(dimension=512, seed=0, centrality="random")
            )

        assert not supports_encoding_cache(random_factory())
        cached = cross_validate(
            random_factory, two_class_dataset, n_splits=4, repetitions=1, seed=0
        )
        uncached = cross_validate(
            random_factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=0,
            encoding_cache=False,
        )
        assert not cached.encoding_cached
        assert [fold.accuracy for fold in cached.folds] == [
            fold.accuracy for fold in uncached.folds
        ]

    def test_cache_ignored_for_unsupported_methods(self, two_class_dataset):
        class MajorityVote:
            def fit(self, graphs, labels):
                labels = list(labels)
                self.majority = max(set(labels), key=labels.count)
                return self

            def predict(self, graphs):
                return [self.majority for _ in graphs]

        result = cross_validate(
            MajorityVote, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        assert not result.encoding_cached
        assert len(result.folds) == 5
