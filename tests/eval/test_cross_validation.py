"""Tests for the cross-validation harness."""

import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.cross_validation import CrossValidationResult, FoldResult, cross_validate


def graphhd_factory():
    return GraphHDClassifier(GraphHDConfig(dimension=1024, seed=0))


class TestFoldResult:
    def test_inference_time_per_graph(self):
        fold = FoldResult(
            fold=0,
            repetition=0,
            accuracy=0.9,
            train_seconds=1.0,
            test_seconds=0.5,
            num_train_graphs=90,
            num_test_graphs=10,
        )
        assert fold.inference_seconds_per_graph == pytest.approx(0.05)

    def test_zero_test_graphs(self):
        fold = FoldResult(0, 0, 0.0, 1.0, 0.5, 10, 0)
        assert fold.inference_seconds_per_graph == 0.0


class TestCrossValidate:
    def test_full_protocol_fold_count(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            method_name="GraphHD",
            n_splits=5,
            repetitions=2,
            seed=0,
        )
        assert len(result.folds) == 10
        assert result.method == "GraphHD"
        assert result.dataset == two_class_dataset.name

    def test_accuracy_on_separable_data(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
        )
        assert result.mean_accuracy > 0.8
        assert 0.0 <= result.std_accuracy <= 0.5

    def test_timings_positive(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        assert result.mean_train_seconds > 0
        assert result.mean_test_seconds > 0
        assert result.mean_inference_seconds_per_graph > 0

    def test_max_folds_per_repetition(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory,
            two_class_dataset,
            n_splits=5,
            repetitions=2,
            max_folds_per_repetition=2,
            seed=0,
        )
        assert len(result.folds) == 4

    def test_summary_keys(self, two_class_dataset):
        result = cross_validate(
            graphhd_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        summary = result.summary()
        for key in (
            "method",
            "dataset",
            "accuracy_mean",
            "accuracy_std",
            "train_seconds",
            "inference_seconds_per_graph",
            "folds",
        ):
            assert key in summary

    def test_invalid_repetitions(self, two_class_dataset):
        with pytest.raises(ValueError):
            cross_validate(graphhd_factory, two_class_dataset, repetitions=0)

    def test_fresh_model_per_fold(self, two_class_dataset):
        created = []

        def counting_factory():
            model = graphhd_factory()
            created.append(model)
            return model

        cross_validate(
            counting_factory, two_class_dataset, n_splits=5, repetitions=1, seed=0
        )
        assert len(created) == 5
        assert len({id(model) for model in created}) == 5
