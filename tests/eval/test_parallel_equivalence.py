"""Serial <-> parallel equivalence suite for the evaluation harness.

The contract of :mod:`repro.eval.parallel` is that ``n_jobs`` changes
wall-clock only: every harness — ``cross_validate``, ``compare_methods``,
``scaling_experiment``, ``graphhd_robustness_curve`` — must return
**bit-identical** accuracies, fold assignments and result structure for every
worker count, across backends, and for methods that veto the encoding cache
(the random-centrality ablation).  These tests pin that contract down so
parallelism can never silently change reported numbers.
"""

import os
import threading
import warnings

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.comparison import compare_methods
from repro.eval.cross_validation import cross_validate
from repro.eval.encoding_store import EncodingStore
from repro.eval.parallel import ENV_N_JOBS, parallelism_available, resolve_n_jobs, run_tasks
from repro.eval.robustness import graphhd_robustness_curve
from repro.eval.scaling import scaling_experiment

DIMENSION = 512


def make_factory(backend="dense", centrality="pagerank"):
    def factory():
        return GraphHDClassifier(
            GraphHDConfig(
                dimension=DIMENSION, seed=0, backend=backend, centrality=centrality
            )
        )

    return factory


def fold_fingerprints(result):
    """Everything that must be bit-identical across worker counts."""
    return [
        (
            fold.fold,
            fold.repetition,
            fold.accuracy,
            fold.num_train_graphs,
            fold.num_test_graphs,
            fold.test_indices,
        )
        for fold in result.folds
    ]


class TestRunTasks:
    def test_results_in_task_order(self):
        results = run_tasks([lambda value=value: value * 2 for value in range(7)], n_jobs=3)
        assert results == [0, 2, 4, 6, 8, 10, 12]

    def test_serial_when_one_job(self):
        assert run_tasks([lambda: os.getpid()], n_jobs=1) == [os.getpid()]

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            run_tasks([boom], n_jobs=1)
        if parallelism_available():
            with pytest.raises(RuntimeError, match="task failed"):
                run_tasks([boom, boom], n_jobs=2)

    def test_workers_are_separate_processes(self):
        if not parallelism_available():
            pytest.skip("no fork start method on this platform")
        pids = run_tasks([os.getpid for _ in range(4)], n_jobs=2)
        assert os.getpid() not in pids

    def test_empty_task_list(self):
        assert run_tasks([], n_jobs=4) == []

    def test_serial_fallback_warns_every_run(self, monkeypatch):
        # The old implementation latched a module global after the first
        # warning, so a second degraded run was silent even when the caller
        # re-armed the filters.  The warning now goes through the standard
        # warnings registry: simplefilter("always") must re-fire it.
        monkeypatch.setattr(
            "repro.eval.parallel.parallelism_available", lambda: False
        )
        tasks = [lambda: 1, lambda: 2]
        for _ in range(2):
            with warnings.catch_warnings():
                warnings.simplefilter("always")
                with pytest.warns(RuntimeWarning, match="running serially"):
                    assert run_tasks(tasks, n_jobs=2) == [1, 2]

    def test_reentrant_from_concurrent_threads(self):
        if not parallelism_available():
            pytest.skip("no fork start method on this platform")
        # Two threads running their own pools concurrently must not clobber
        # each other's task handoff (the old single _TASKS global did).
        outputs = {}

        def drive(name, offset):
            outputs[name] = run_tasks(
                [lambda value=value: value * value for value in range(offset, offset + 6)],
                n_jobs=2,
            )

        threads = [
            threading.Thread(target=drive, args=("a", 0)),
            threading.Thread(target=drive, args=("b", 100)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert outputs["a"] == [value * value for value in range(6)]
        assert outputs["b"] == [value * value for value in range(100, 106)]


class TestResolveNJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_N_JOBS, raising=False)
        assert resolve_n_jobs(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_N_JOBS, "8")
        assert resolve_n_jobs(3) == 3

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_N_JOBS, "2")
        assert resolve_n_jobs(None) == 2

    def test_zero_and_negative_mean_all_cores(self):
        cores = max(1, os.cpu_count() or 1)
        assert resolve_n_jobs(0) == cores
        assert resolve_n_jobs(-1) == cores

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_N_JOBS, "many")
        with pytest.raises(ValueError):
            resolve_n_jobs(None)


class TestCrossValidateEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_bit_identical_across_worker_counts(
        self, two_class_dataset, backend, n_jobs
    ):
        factory = make_factory(backend)
        serial = cross_validate(
            factory, two_class_dataset, n_splits=5, repetitions=2, seed=0, n_jobs=1
        )
        parallel = cross_validate(
            factory, two_class_dataset, n_splits=5, repetitions=2, seed=0, n_jobs=n_jobs
        )
        assert fold_fingerprints(serial) == fold_fingerprints(parallel)
        assert serial.base_seed == parallel.base_seed
        assert serial.encoding_cached and parallel.encoding_cached

    def test_timings_structure_preserved(self, two_class_dataset):
        parallel = cross_validate(
            make_factory(),
            two_class_dataset,
            n_splits=5,
            repetitions=1,
            seed=0,
            n_jobs=2,
        )
        assert len(parallel.folds) == 5
        for fold in parallel.folds:
            assert fold.train_seconds > 0
            assert fold.test_seconds > 0
            assert fold.inference_seconds_per_graph > 0
        assert parallel.mean_train_seconds > 0
        summary = parallel.summary()
        assert summary["folds"] == 5
        assert summary["encoding_cached"] is True

    def test_uncached_protocol_equivalence(self, two_class_dataset):
        factory = make_factory()
        serial = cross_validate(
            factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=0,
            encoding_cache=False,
            n_jobs=1,
        )
        parallel = cross_validate(
            factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=0,
            encoding_cache=False,
            n_jobs=2,
        )
        assert fold_fingerprints(serial) == fold_fingerprints(parallel)
        assert not serial.encoding_cached and not parallel.encoding_cached

    def test_random_centrality_ablation_vetoes_cache_and_matches(
        self, two_class_dataset, tmp_path
    ):
        # The random-centrality ablation vetoes both the in-memory encoding
        # cache and the persistent store; every fold re-encodes with a fresh,
        # identically seeded model, so serial and parallel runs still agree.
        factory = make_factory(centrality="random")
        store = EncodingStore(tmp_path / "store")
        serial = cross_validate(
            factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=0,
            n_jobs=1,
            encoding_store=store,
        )
        parallel = cross_validate(
            factory,
            two_class_dataset,
            n_splits=4,
            repetitions=1,
            seed=0,
            n_jobs=2,
            encoding_store=store,
        )
        assert not serial.encoding_cached and not parallel.encoding_cached
        assert len(store) == 0
        assert fold_fingerprints(serial) == fold_fingerprints(parallel)

    def test_store_and_parallel_compose(self, two_class_dataset, tmp_path):
        store = EncodingStore(tmp_path / "store")
        factory = make_factory()
        cold = cross_validate(
            factory, two_class_dataset, n_splits=5, repetitions=1, seed=0,
            n_jobs=2, encoding_store=store,
        )
        warm = cross_validate(
            factory, two_class_dataset, n_splits=5, repetitions=1, seed=0,
            n_jobs=2, encoding_store=store,
        )
        assert not cold.encoding_store_hit
        assert warm.encoding_store_hit
        assert fold_fingerprints(cold) == fold_fingerprints(warm)


class TestCompareMethodsEquivalence:
    def test_grid_bit_identical(self, two_class_dataset):
        kwargs = dict(
            methods=("GraphHD", "1-WL"),
            fast=True,
            n_splits=3,
            repetitions=1,
            seed=0,
            dimension=DIMENSION,
        )
        serial = compare_methods([two_class_dataset], n_jobs=1, **kwargs)
        parallel = compare_methods([two_class_dataset], n_jobs=2, **kwargs)
        assert serial.accuracy_table() == parallel.accuracy_table()
        for key in serial.results:
            assert fold_fingerprints(serial.results[key]) == fold_fingerprints(
                parallel.results[key]
            )

    def test_single_cell_forwards_workers_to_folds(self, two_class_dataset):
        kwargs = dict(
            methods=("GraphHD",),
            fast=True,
            n_splits=4,
            repetitions=1,
            seed=0,
            dimension=DIMENSION,
        )
        serial = compare_methods([two_class_dataset], n_jobs=1, **kwargs)
        parallel = compare_methods([two_class_dataset], n_jobs=2, **kwargs)
        key = (two_class_dataset.name, "GraphHD")
        assert fold_fingerprints(serial.results[key]) == fold_fingerprints(
            parallel.results[key]
        )

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_backends_bit_identical(self, two_class_dataset, backend):
        kwargs = dict(
            methods=("GraphHD",),
            fast=True,
            n_splits=3,
            repetitions=2,
            seed=0,
            dimension=DIMENSION,
            backend=backend,
        )
        serial = compare_methods([two_class_dataset], n_jobs=1, **kwargs)
        parallel = compare_methods([two_class_dataset], n_jobs=4, **kwargs)
        assert serial.accuracy_table() == parallel.accuracy_table()


class TestScalingEquivalence:
    def test_sweep_points_bit_identical(self):
        kwargs = dict(
            methods=("GraphHD",),
            num_graphs=16,
            fast=True,
            seed=0,
            dimension=DIMENSION,
        )
        serial = scaling_experiment([15, 25, 35], n_jobs=1, **kwargs)
        parallel = scaling_experiment([15, 25, 35], n_jobs=2, **kwargs)
        assert [point.num_vertices for point in serial] == [
            point.num_vertices for point in parallel
        ]
        assert [point.accuracy for point in serial] == [
            point.accuracy for point in parallel
        ]
        for point in parallel:
            assert point.train_seconds["GraphHD"] > 0


class TestRobustnessEquivalence:
    def test_curve_bit_identical(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        kwargs = dict(
            corruption_fractions=(0.0, 0.2, 0.4),
            repetitions=3,
            seed=0,
        )
        serial = graphhd_robustness_curve(
            make_factory(), graphs[:20], labels[:20], graphs[20:], labels[20:],
            n_jobs=1, **kwargs,
        )
        parallel = graphhd_robustness_curve(
            make_factory(), graphs[:20], labels[:20], graphs[20:], labels[20:],
            n_jobs=3, **kwargs,
        )
        assert serial.fractions == parallel.fractions
        assert serial.accuracies == parallel.accuracies
