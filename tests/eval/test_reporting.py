"""Tests for the plain-text reporting helpers."""

import pytest

from repro.eval.reporting import render_panel, render_series, render_table


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["name", "value"], [["a", 1], ["b", 2]])
        assert "name" in text
        assert "value" in text
        assert "a" in text
        assert "2" in text

    def test_title_included(self):
        text = render_table(["x"], [[1]], title="Table I")
        assert text.startswith("Table I")

    def test_column_alignment(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[0]) <= len(lines[-1])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456], [1.2e-7]])
        assert "0.1235" in text
        assert "e-07" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderPanel:
    def test_datasets_as_rows_methods_as_columns(self):
        panel = {
            "MUTAG": {"GraphHD": 0.8, "1-WL": 0.85},
            "DD": {"GraphHD": 0.7},
        }
        text = render_panel(panel, title="accuracy", value_name="mean")
        assert "MUTAG" in text
        assert "GraphHD" in text
        assert "1-WL" in text
        # Missing value rendered as a dash.
        assert "-" in text


class TestRenderSeries:
    def test_series_table(self):
        text = render_series(
            [10, 20],
            {"GraphHD": [0.1, 0.2], "WL-OA": [1.0, 3.0]},
            x_name="vertices",
            title="Figure 4",
        )
        assert "Figure 4" in text
        assert "vertices" in text
        assert "GraphHD" in text
        assert "WL-OA" in text

    def test_short_series_padded_with_dash(self):
        text = render_series([1, 2], {"m": [0.5]})
        assert "-" in text
