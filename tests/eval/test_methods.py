"""Tests for the method factory."""

import pytest

from repro.core.model import GraphHDClassifier
from repro.eval.methods import METHOD_NAMES, make_method
from repro.kernels.base import KernelClassifier
from repro.kernels.wl_optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.wl_subtree import WLSubtreeKernel
from repro.nn.training import GNNTrainer


class TestFactory:
    def test_method_names_match_figure3(self):
        assert METHOD_NAMES == ("GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK")

    def test_graphhd(self):
        model = make_method("GraphHD", dimension=2048)
        assert isinstance(model, GraphHDClassifier)
        assert model.config.dimension == 2048

    def test_graphhd_default_dimension_matches_paper(self):
        assert make_method("GraphHD").config.dimension == 10_000

    def test_wl_subtree(self):
        model = make_method("1-WL")
        assert isinstance(model, KernelClassifier)
        assert isinstance(model.kernel_template, WLSubtreeKernel)
        assert model.c_grid == tuple(10.0**e for e in range(-3, 4))

    def test_wl_oa(self):
        model = make_method("WL-OA")
        assert isinstance(model, KernelClassifier)
        assert isinstance(model.kernel_template, WLOptimalAssignmentKernel)

    def test_gin(self):
        model = make_method("GIN-e")
        assert isinstance(model, GNNTrainer)
        assert model.variant == "gin"
        assert model.config.hidden_features == 32
        assert model.config.num_layers == 1

    def test_gin_jk(self):
        model = make_method("GIN-e-JK")
        assert isinstance(model, GNNTrainer)
        assert model.variant == "gin-jk"

    def test_aliases(self):
        assert isinstance(make_method("gin-eps"), GNNTrainer)
        assert isinstance(make_method("WL"), KernelClassifier)
        assert isinstance(make_method("graphhd"), GraphHDClassifier)

    def test_fast_mode_reduces_cost(self):
        slow = make_method("GIN-e")
        fast = make_method("GIN-e", fast=True)
        assert fast.config.epochs < slow.config.epochs
        fast_kernel = make_method("1-WL", fast=True)
        assert len(fast_kernel.c_grid) < 7

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_method("GCN")

    def test_every_method_fits_and_predicts(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        for name in METHOD_NAMES:
            model = make_method(name, fast=True, seed=0, dimension=1024)
            model.fit(graphs[:20], labels[:20])
            predictions = model.predict(graphs[20:])
            assert len(predictions) == 10
            assert set(predictions) <= {0, 1}
