"""Tests for the persistent on-disk encoding store.

Covers the key contract (same configuration hits, any relevant change
misses), versioned invalidation, corrupted-entry recovery, atomicity under
two processes racing on one store path, the mmap-able entry format and its
read-only guarantees, the manifest + LRU/age eviction lifecycle, and legacy
``.npz`` migration.
"""

import itertools
import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.dataset import GraphDataset, graphs_fingerprint
from repro.eval import faults
from repro.eval.cross_validation import cross_validate
from repro.eval.encoding_store import EncodingStore, dataset_encodings
from repro.graphs.graph import Graph

DIMENSION = 256


def backdate(path, seconds=3600.0):
    """Age a file past the temp-sweep grace period."""
    past = time.time() - seconds
    os.utime(path, (past, past))


def make_model(**overrides):
    config = dict(dimension=DIMENSION, seed=0, backend="dense")
    config.update(overrides)
    return GraphHDClassifier(GraphHDConfig(**config))


@pytest.fixture
def store(tmp_path):
    return EncodingStore(tmp_path / "store")


@pytest.fixture
def ticking_store(tmp_path):
    """A store whose clock advances one second per call, for LRU tests."""
    ticks = itertools.count(1)
    return EncodingStore(tmp_path / "store", clock=lambda: float(next(ticks)))


def write_legacy_entry(store, key, encodings):
    """Write a PR-4-era compressed single-file ``.npz`` entry."""
    os.makedirs(store.path, exist_ok=True)
    with open(store._legacy_path(key), "wb") as handle:
        np.savez_compressed(
            handle,
            store_version=np.int64(store.version),
            encodings=np.asarray(encodings),
        )


class TestFingerprint:
    def test_stable_across_equal_content(self, two_class_dataset):
        copy = GraphDataset(two_class_dataset.name, list(two_class_dataset.graphs))
        assert two_class_dataset.fingerprint() == copy.fingerprint()
        assert graphs_fingerprint(two_class_dataset.graphs) == (
            two_class_dataset.fingerprint()
        )

    def test_sensitive_to_graph_subset_and_order(self, two_class_dataset):
        graphs = two_class_dataset.graphs
        assert graphs_fingerprint(graphs) != graphs_fingerprint(graphs[:-1])
        assert graphs_fingerprint(graphs) != graphs_fingerprint(graphs[::-1])

    def test_fingerprint_cached_on_dataset(self, two_class_dataset):
        first = two_class_dataset.fingerprint()
        assert two_class_dataset.fingerprint() is first

    def test_numpy_scalar_labels_fingerprint_like_python_scalars(self):
        # numpy scalar reprs changed between numpy 1.x and 2.x ("1" vs
        # "np.int64(1)"); labels must be canonicalized so the same dataset
        # fingerprints identically in both environments (and equals the
        # python-scalar form, which encodes identically).
        def build(cast):
            return Graph(
                3,
                [(0, 1), (1, 2)],
                vertex_labels=[cast(1), cast(2), cast(1)],
                edge_labels={(0, 1): cast(7), (1, 2): cast(8)},
                graph_label=cast(0),
            )

        plain = build(int)
        numpy_labelled = build(np.int64)
        assert graphs_fingerprint([plain]) == graphs_fingerprint([numpy_labelled])
        float_plain = Graph(2, [(0, 1)], graph_label=0.5)
        float_numpy = Graph(2, [(0, 1)], graph_label=np.float64(0.5))
        assert graphs_fingerprint([float_plain]) == graphs_fingerprint([float_numpy])

    def test_numpy_scalar_labels_still_distinguish_values(self):
        one = Graph(2, [(0, 1)], vertex_labels=[np.int64(1), np.int64(1)], graph_label=0)
        two = Graph(2, [(0, 1)], vertex_labels=[np.int64(1), np.int64(2)], graph_label=0)
        assert graphs_fingerprint([one]) != graphs_fingerprint([two])

    def test_tuple_labels_with_numpy_scalars_canonicalized(self):
        nested_plain = Graph(2, [(0, 1)], graph_label=(1, 2))
        nested_numpy = Graph(2, [(0, 1)], graph_label=(np.int32(1), np.int32(2)))
        assert graphs_fingerprint([nested_plain]) == graphs_fingerprint([nested_numpy])


class TestCacheKeys:
    def test_same_configuration_hits(self, store, two_class_dataset):
        first, hit_first = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        second, hit_second = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not hit_first and hit_second
        assert np.array_equal(first, second)
        assert store.stats["hits"] == 1
        assert len(store) == 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dimension": 2 * DIMENSION},
            {"backend": "packed"},
            {"centrality": "degree"},
            {"seed": 1},
            {"pagerank_iterations": 3},
        ],
    )
    def test_changed_configuration_misses(self, store, two_class_dataset, overrides):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        _, hit = dataset_encodings(
            make_model(**overrides), two_class_dataset.graphs, store
        )
        assert not hit
        assert len(store) == 2

    def test_changed_dataset_misses(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        _, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs[:-2], store
        )
        assert not hit

    def test_store_version_invalidates(self, tmp_path, two_class_dataset):
        path = tmp_path / "store"
        old = EncodingStore(path, version=1)
        dataset_encodings(make_model(), two_class_dataset.graphs, old)
        new = EncodingStore(path, version=2)
        _, hit = dataset_encodings(make_model(), two_class_dataset.graphs, new)
        assert not hit

    def test_embedded_version_checked_on_load(self, tmp_path, two_class_dataset):
        # Even if a key collision handed a new-version store an old entry,
        # the version embedded in the entry itself rejects (and removes) it.
        path = tmp_path / "store"
        old = EncodingStore(path, version=1)
        model = make_model()
        key = old.key(
            model.encoding_store_token, graphs_fingerprint(two_class_dataset.graphs)
        )
        old.save(key, model.encode(two_class_dataset.graphs))
        new = EncodingStore(path, version=2)
        assert new.load(key) is None
        assert len(new) == 0

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_roundtrip_is_exact(self, store, two_class_dataset, backend):
        model = make_model(backend=backend)
        encoded, _ = dataset_encodings(model, two_class_dataset.graphs, store)
        cached, hit = dataset_encodings(
            make_model(backend=backend), two_class_dataset.graphs, store
        )
        assert hit
        assert cached.dtype == encoded.dtype
        assert np.array_equal(cached, encoded)


class TestVetoes:
    def test_random_centrality_has_no_token(self):
        assert make_model(centrality="random").encoding_store_token is None

    def test_unseeded_config_has_no_token(self):
        assert make_model(seed=None).encoding_store_token is None

    def test_vetoing_model_bypasses_store(self, store, two_class_dataset):
        model = make_model(seed=None)
        encodings, hit = dataset_encodings(model, two_class_dataset.graphs, store)
        assert not hit
        assert encodings.shape[0] == len(two_class_dataset.graphs)
        assert len(store) == 0

    def test_no_store_encodes_in_memory(self, two_class_dataset):
        encodings, hit = dataset_encodings(make_model(), two_class_dataset.graphs, None)
        assert not hit
        assert encodings.shape == (len(two_class_dataset.graphs), DIMENSION)


class TestRecoveryAndMaintenance:
    def test_corrupted_entry_recovers(self, store, two_class_dataset):
        model = make_model()
        original, _ = dataset_encodings(model, two_class_dataset.graphs, store)
        [key] = store.entries()
        with open(store._payload_path(key), "wb") as handle:
            handle.write(b"not a npy payload")
        recovered, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not hit  # corrupted entry was dropped and re-encoded...
        assert np.array_equal(recovered, original)
        reread, hit = dataset_encodings(make_model(), two_class_dataset.graphs, store)
        assert hit  # ...and the store healed itself.
        assert np.array_equal(reread, original)

    def test_truncated_entry_recovers(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        [key] = store.entries()
        path = store._payload_path(key)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert store.load(key) is None
        assert not os.path.exists(path)
        assert not os.path.exists(store._sidecar_path(key))

    def test_missing_sidecar_treated_as_corruption(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        [key] = store.entries()
        os.remove(store._sidecar_path(key))
        assert store.load(key) is None
        assert store.entries() == []

    def test_clear_removes_entries(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        dataset_encodings(
            make_model(backend="packed"), two_class_dataset.graphs, store
        )
        assert len(store) == 2
        report = store.clear()
        assert report.entries_removed == 2
        assert report.temp_files_removed == 0
        assert len(store) == 0
        assert store.clear().entries_removed == 0

    def test_clear_counts_temp_files_separately(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        for name in (".tmp-abc.npz", ".tmp-def.npy"):
            path = os.path.join(store.path, name)
            with open(path, "wb") as handle:
                handle.write(b"leftover")
            backdate(path)  # crash wreckage, not an in-flight write
        # Temp leftovers are invisible to entries() and must not inflate the
        # entries_removed count either (the pre-fix behaviour).
        assert len(store) == 1
        report = store.clear()
        assert report.entries_removed == 1
        assert report.temp_files_removed == 2
        assert os.listdir(store.path) == []

    def test_clear_sweeps_orphan_sidecars(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        # The crash window of the sidecar-first write ordering: a sidecar
        # whose payload never got published.  It is not an entry, but clear
        # must still leave an empty directory once it has aged out.
        with open(store._sidecar_path("ee" * 32), "w", encoding="utf-8") as handle:
            handle.write("{}")
        backdate(store._sidecar_path("ee" * 32))
        assert len(store) == 1
        assert store.temp_files() == [f"{'ee' * 32}.json"]
        report = store.clear()
        assert report.entries_removed == 1
        assert report.temp_files_removed == 1
        assert os.listdir(store.path) == []

    def test_sweep_spares_fresh_temp_files(self, store, two_class_dataset):
        """A just-written stray may be a concurrent writer's in-flight temp
        file; only strays older than the grace period are reclaimed."""
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        fresh = os.path.join(store.path, ".tmp-inflight.npy")
        with open(fresh, "wb") as handle:
            handle.write(b"partial")
        assert store.sweep_temp_files() == 0
        assert os.path.exists(fresh)
        # Still listed as a stray (stats stay honest) — just not deleted yet.
        assert store.temp_files() == [".tmp-inflight.npy"]
        report = store.clear()
        assert report.entries_removed == 1
        assert report.temp_files_removed == 0
        assert os.path.exists(fresh)
        # Past the grace period (or with the grace explicitly waived), the
        # same stray is crash wreckage and goes away.
        assert store.sweep_temp_files(min_age=0) == 1
        assert not os.path.exists(fresh)

    def test_clear_can_waive_the_sweep_grace(self, store):
        fresh = os.path.join(store.path, ".tmp-inflight.npy")
        os.makedirs(store.path, exist_ok=True)
        with open(fresh, "wb") as handle:
            handle.write(b"partial")
        report = store.clear(sweep_min_age=0)
        assert report.temp_files_removed == 1
        assert os.listdir(store.path) == []

    def test_clear_on_missing_directory(self, tmp_path):
        store = EncodingStore(tmp_path / "never-created")
        report = store.clear()
        assert report.entries_removed == 0
        assert report.temp_files_removed == 0
        assert store.entries() == []


class TestMmapFormat:
    def test_save_writes_npy_plus_sidecar(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        [key] = store.entries()
        assert os.path.exists(store._payload_path(key))
        assert os.path.exists(store._sidecar_path(key))
        assert not os.path.exists(store._legacy_path(key))
        with open(store._sidecar_path(key), "r", encoding="utf-8") as handle:
            sidecar = json.load(handle)
        assert sidecar["store_version"] == store.version
        assert sidecar["shape"] == [len(two_class_dataset.graphs), DIMENSION]

    def test_mmap_load_returns_readonly_memory_mapped_view(
        self, store, two_class_dataset
    ):
        model = make_model()
        original, _ = dataset_encodings(model, two_class_dataset.graphs, store)
        [key] = store.entries()
        mapped = store.load(key, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mapped[0, 0] = 1
        assert np.array_equal(np.asarray(mapped), np.asarray(original))

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_mmap_hit_bit_identical_to_in_memory_hit(
        self, store, two_class_dataset, backend
    ):
        dataset_encodings(
            make_model(backend=backend), two_class_dataset.graphs, store
        )
        in_memory, hit_memory = dataset_encodings(
            make_model(backend=backend), two_class_dataset.graphs, store
        )
        mapped, hit_mapped = dataset_encodings(
            make_model(backend=backend),
            two_class_dataset.graphs,
            store,
            mmap_mode="r",
        )
        assert hit_memory and hit_mapped
        assert mapped.dtype == in_memory.dtype
        assert np.array_equal(np.asarray(mapped), np.asarray(in_memory))

    def test_hit_and_miss_paths_return_identical_flags(
        self, store, two_class_dataset
    ):
        missed, was_hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        hit, was_hit_second = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not was_hit and was_hit_second
        assert missed.dtype == hit.dtype
        assert missed.flags.writeable == hit.flags.writeable == False  # noqa: E712
        assert np.array_equal(missed, hit)

    def test_mmap_miss_path_matches_hit_path_flags(self, store, two_class_dataset):
        missed, was_hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store, mmap_mode="r"
        )
        hit, was_hit_second = dataset_encodings(
            make_model(), two_class_dataset.graphs, store, mmap_mode="r"
        )
        assert not was_hit and was_hit_second
        assert isinstance(missed, np.memmap) and isinstance(hit, np.memmap)
        assert not missed.flags.writeable and not hit.flags.writeable
        assert np.array_equal(np.asarray(missed), np.asarray(hit))

    def test_storeless_path_stays_writable(self, two_class_dataset):
        encodings, hit = dataset_encodings(make_model(), two_class_dataset.graphs, None)
        assert not hit
        assert encodings.flags.writeable

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_cross_validate_mmap_equivalent_under_workers(
        self, tmp_path, two_class_dataset, backend
    ):
        def factory():
            return make_model(backend=backend)

        def run(mmap_mode, store_dir):
            return cross_validate(
                factory,
                two_class_dataset,
                n_splits=3,
                repetitions=1,
                seed=0,
                n_jobs=2,
                encoding_store=EncodingStore(store_dir),
                mmap_mode=mmap_mode,
            )

        baseline = cross_validate(
            factory, two_class_dataset, n_splits=3, repetitions=1, seed=0
        )
        in_memory = run(None, tmp_path / "store-a")
        mapped_cold = run("r", tmp_path / "store-b")
        mapped_warm = run("r", tmp_path / "store-b")
        assert mapped_warm.encoding_store_hit
        for result in (in_memory, mapped_cold, mapped_warm):
            assert [fold.accuracy for fold in result.folds] == [
                fold.accuracy for fold in baseline.folds
            ]
            assert [fold.test_indices for fold in result.folds] == [
                fold.test_indices for fold in baseline.folds
            ]


class TestLifecycle:
    def test_manifest_tracks_size_and_recency(self, ticking_store, two_class_dataset):
        store = ticking_store
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        [key] = store.entries()
        manifest = store.manifest()
        info = manifest[key]
        assert info.size_bytes == sum(
            os.path.getsize(path)
            for path in (store._payload_path(key), store._sidecar_path(key))
        )
        assert info.format == "npy"
        before = info.last_access_at
        store.load(key)
        assert store.manifest()[key].last_access_at > before
        assert store.manifest()[key].created_at == info.created_at

    def test_manifest_rebuilds_after_deletion(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        os.remove(os.path.join(store.path, "manifest.json"))
        [key] = store.entries()
        manifest = store.manifest()
        assert key in manifest
        assert manifest[key].size_bytes > 0

    def test_prune_max_bytes_evicts_in_lru_order(self, ticking_store):
        store = ticking_store
        payload = np.ones((64, DIMENSION), dtype=np.int8)
        for key in ("aa" * 32, "bb" * 32, "cc" * 32):
            store.save(key, payload)
        # Touch the oldest entry so it becomes the most recently used.
        store.load("aa" * 32)
        bound = store.total_bytes() - 1  # forces exactly one eviction
        report = store.prune(max_bytes=bound)
        # LRU order after the touch is bb (oldest), cc, aa; one must go.
        assert report.removed_keys == ["bb" * 32]
        assert report.entries_removed == 1
        assert report.bytes_freed > 0
        assert sorted(store.entries()) == sorted(["aa" * 32, "cc" * 32])
        assert report.bytes_remaining <= bound

    def test_prune_max_bytes_zero_empties_store(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        report = store.prune(max_bytes=0)
        assert report.entries_removed == 1
        assert report.entries_remaining == 0
        assert store.entries() == []

    def test_prune_max_age_drops_stale_entries(self, ticking_store):
        store = ticking_store
        payload = np.ones((8, DIMENSION), dtype=np.int8)
        store.save("aa" * 32, payload)  # early ticks
        for _ in range(30):
            store._clock()  # advance time well past the first entry
        store.save("bb" * 32, payload)
        report = store.prune(max_age=10.0)
        assert report.removed_keys == ["aa" * 32]
        assert store.entries() == ["bb" * 32]

    def test_prune_rejects_unknown_policy(self, store):
        with pytest.raises(ValueError, match="policy"):
            store.prune(max_bytes=0, policy="fifo")

    def test_prune_without_bounds_is_a_no_op(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        report = store.prune()
        assert report.entries_removed == 0
        assert len(store) == 1

    def test_pruned_entry_repopulates_on_next_run(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        store.prune(max_bytes=0)
        encodings, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not hit
        assert len(store) == 1
        _, rehit = dataset_encodings(make_model(), two_class_dataset.graphs, store)
        assert rehit

    def test_stats_reports_totals(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        stats = store.stats
        assert stats["entries"] == 1
        assert stats["total_bytes"] == store.total_bytes() > 0
        assert stats["legacy_entries"] == 0
        assert stats["temp_files"] == 0


class TestLegacyMigration:
    def test_legacy_npz_entry_loads_without_reencoding(
        self, store, two_class_dataset
    ):
        model = make_model()
        encodings = model.encode(two_class_dataset.graphs)
        key = store.key(
            model.encoding_store_token, graphs_fingerprint(two_class_dataset.graphs)
        )
        write_legacy_entry(store, key, encodings)
        loaded, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert hit
        assert not loaded.flags.writeable
        assert np.array_equal(loaded, encodings)

    def test_migrate_rewrites_legacy_entries_in_place(
        self, store, two_class_dataset
    ):
        model = make_model()
        encodings = model.encode(two_class_dataset.graphs)
        key = store.key(
            model.encoding_store_token, graphs_fingerprint(two_class_dataset.graphs)
        )
        write_legacy_entry(store, key, encodings)
        assert store.stats["legacy_entries"] == 1
        assert store.migrate() == 1
        assert store.stats["legacy_entries"] == 0
        assert not os.path.exists(store._legacy_path(key))
        mapped = store.load(key, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(np.asarray(mapped), encodings)

    def test_mmap_load_of_legacy_entry_migrates_on_demand(
        self, store, two_class_dataset
    ):
        model = make_model()
        encodings = model.encode(two_class_dataset.graphs)
        key = store.key(
            model.encoding_store_token, graphs_fingerprint(two_class_dataset.graphs)
        )
        write_legacy_entry(store, key, encodings)
        mapped = store.load(key, mmap_mode="r")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(np.asarray(mapped), encodings)
        assert not os.path.exists(store._legacy_path(key))
        assert os.path.exists(store._payload_path(key))

    def test_corrupt_legacy_entry_dropped_by_migrate(self, store):
        os.makedirs(store.path, exist_ok=True)
        with open(store._legacy_path("dd" * 32), "wb") as handle:
            handle.write(b"garbage")
        assert store.migrate() == 0
        assert store.entries() == []


def _racing_writer(path, key, dimension, barrier):
    store = EncodingStore(path)
    payload = np.full((64, dimension), 7, dtype=np.int8)
    barrier.wait()
    for _ in range(20):
        store.save(key, payload)


class TestConcurrentWriters:
    def test_two_processes_racing_on_one_store(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        context = multiprocessing.get_context("fork")
        path = str(tmp_path / "store")
        key = "deadbeef" * 8
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_racing_writer, args=(path, key, DIMENSION, barrier)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = EncodingStore(path)
        loaded = store.load(key)
        assert loaded is not None  # readers only ever see complete entries
        assert np.array_equal(loaded, np.full((64, DIMENSION), 7, dtype=np.int8))
        assert store.entries() == [key]  # no stray temp files promoted


def _inflight_writer(path, started, release):
    """Hold an in-flight temp file open until the parent releases it."""
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, ".tmp-live-writer.npy"), "wb") as handle:
        handle.write(b"partial")
        handle.flush()
        started.set()
        release.wait(timeout=60)


class TestSweepGraceTwoProcesses:
    def test_sweep_spares_another_writers_inflight_file(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        context = multiprocessing.get_context("fork")
        path = str(tmp_path / "store")
        started = context.Event()
        release = context.Event()
        worker = context.Process(
            target=_inflight_writer, args=(path, started, release)
        )
        worker.start()
        try:
            assert started.wait(timeout=30)
            store = EncodingStore(path)
            # The sweeping process cannot tell an in-flight write from crash
            # wreckage except by age: the fresh file must survive the sweep
            # (pre-fix, it was deleted out from under the live writer).
            assert store.temp_files() == [".tmp-live-writer.npy"]
            assert store.sweep_temp_files() == 0
            assert os.path.exists(os.path.join(path, ".tmp-live-writer.npy"))
        finally:
            release.set()
        worker.join(timeout=30)
        assert worker.exitcode == 0
        # Once the same file has aged past the grace period it is wreckage.
        backdate(os.path.join(path, ".tmp-live-writer.npy"))
        assert store.sweep_temp_files() == 1
        assert store.temp_files() == []


def _killed_writer(path, key, dimension):
    """Save an entry but get SIGKILLed at the payload-publish instant."""
    store = EncodingStore(path)
    payload = np.full((16, dimension), 3, dtype=np.int8)
    with faults.exit_on_replace(".npy"):
        store.save(key, payload)


class TestKilledWriterRecovery:
    def test_sigkill_mid_save_leaves_store_serving(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        context = multiprocessing.get_context("fork")
        path = str(tmp_path / "store")
        store = EncodingStore(path)
        survivor_key = "aa" * 32
        survivor = np.full((8, DIMENSION), 1, dtype=np.int8)
        store.save(survivor_key, survivor)

        victim_key = "bb" * 32
        worker = context.Process(
            target=_killed_writer, args=(path, victim_key, DIMENSION)
        )
        worker.start()
        worker.join(timeout=60)
        assert worker.exitcode == -signal.SIGKILL

        # The interrupted entry never appeared; the survivor still serves.
        assert store.entries() == [survivor_key]
        assert store.load(victim_key) is None
        assert np.array_equal(store.load(survivor_key), survivor)

        # The wreckage is visible in stats: the stranded temp payload plus
        # the orphan sidecar published before the kill.
        strays = store.temp_files()
        assert any(name.startswith(".tmp-") for name in strays)
        assert f"{victim_key}.json" in strays
        assert store.stats["temp_files"] == len(strays) == 2
        # Fresh wreckage is within the sweep grace period and survives...
        assert store.sweep_temp_files() == 0

        # ...and the store repopulates cleanly right over it.
        repaired = np.full((16, DIMENSION), 3, dtype=np.int8)
        store.save(victim_key, repaired)
        assert np.array_equal(store.load(victim_key), repaired)
        assert store.entries() == sorted([survivor_key, victim_key])
        # Only the stranded temp file remains a stray (the orphan sidecar
        # became the repaired entry's real sidecar); force-sweep it.
        assert store.sweep_temp_files(min_age=0) == 1
        assert store.temp_files() == []
