"""Tests for the persistent on-disk encoding store.

Covers the key contract (same configuration hits, any relevant change
misses), versioned invalidation, corrupted-entry recovery, and atomicity
under two processes racing on one store path.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.datasets.dataset import GraphDataset, graphs_fingerprint
from repro.eval.encoding_store import EncodingStore, dataset_encodings

DIMENSION = 256


def make_model(**overrides):
    config = dict(dimension=DIMENSION, seed=0, backend="dense")
    config.update(overrides)
    return GraphHDClassifier(GraphHDConfig(**config))


@pytest.fixture
def store(tmp_path):
    return EncodingStore(tmp_path / "store")


class TestFingerprint:
    def test_stable_across_equal_content(self, two_class_dataset):
        copy = GraphDataset(two_class_dataset.name, list(two_class_dataset.graphs))
        assert two_class_dataset.fingerprint() == copy.fingerprint()
        assert graphs_fingerprint(two_class_dataset.graphs) == (
            two_class_dataset.fingerprint()
        )

    def test_sensitive_to_graph_subset_and_order(self, two_class_dataset):
        graphs = two_class_dataset.graphs
        assert graphs_fingerprint(graphs) != graphs_fingerprint(graphs[:-1])
        assert graphs_fingerprint(graphs) != graphs_fingerprint(graphs[::-1])

    def test_fingerprint_cached_on_dataset(self, two_class_dataset):
        first = two_class_dataset.fingerprint()
        assert two_class_dataset.fingerprint() is first


class TestCacheKeys:
    def test_same_configuration_hits(self, store, two_class_dataset):
        first, hit_first = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        second, hit_second = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not hit_first and hit_second
        assert np.array_equal(first, second)
        assert store.stats["hits"] == 1
        assert len(store) == 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dimension": 2 * DIMENSION},
            {"backend": "packed"},
            {"centrality": "degree"},
            {"seed": 1},
            {"pagerank_iterations": 3},
        ],
    )
    def test_changed_configuration_misses(self, store, two_class_dataset, overrides):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        _, hit = dataset_encodings(
            make_model(**overrides), two_class_dataset.graphs, store
        )
        assert not hit
        assert len(store) == 2

    def test_changed_dataset_misses(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        _, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs[:-2], store
        )
        assert not hit

    def test_store_version_invalidates(self, tmp_path, two_class_dataset):
        path = tmp_path / "store"
        old = EncodingStore(path, version=1)
        dataset_encodings(make_model(), two_class_dataset.graphs, old)
        new = EncodingStore(path, version=2)
        _, hit = dataset_encodings(make_model(), two_class_dataset.graphs, new)
        assert not hit

    def test_embedded_version_checked_on_load(self, tmp_path, two_class_dataset):
        # Even if a key collision handed a new-version store an old entry,
        # the version embedded in the entry itself rejects (and removes) it.
        path = tmp_path / "store"
        old = EncodingStore(path, version=1)
        model = make_model()
        key = old.key(
            model.encoding_store_token, graphs_fingerprint(two_class_dataset.graphs)
        )
        old.save(key, model.encode(two_class_dataset.graphs))
        new = EncodingStore(path, version=2)
        assert new.load(key) is None
        assert len(new) == 0

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_roundtrip_is_exact(self, store, two_class_dataset, backend):
        model = make_model(backend=backend)
        encoded, _ = dataset_encodings(model, two_class_dataset.graphs, store)
        cached, hit = dataset_encodings(
            make_model(backend=backend), two_class_dataset.graphs, store
        )
        assert hit
        assert cached.dtype == encoded.dtype
        assert np.array_equal(cached, encoded)


class TestVetoes:
    def test_random_centrality_has_no_token(self):
        assert make_model(centrality="random").encoding_store_token is None

    def test_unseeded_config_has_no_token(self):
        assert make_model(seed=None).encoding_store_token is None

    def test_vetoing_model_bypasses_store(self, store, two_class_dataset):
        model = make_model(seed=None)
        encodings, hit = dataset_encodings(model, two_class_dataset.graphs, store)
        assert not hit
        assert encodings.shape[0] == len(two_class_dataset.graphs)
        assert len(store) == 0

    def test_no_store_encodes_in_memory(self, two_class_dataset):
        encodings, hit = dataset_encodings(make_model(), two_class_dataset.graphs, None)
        assert not hit
        assert encodings.shape == (len(two_class_dataset.graphs), DIMENSION)


class TestRecoveryAndMaintenance:
    def test_corrupted_entry_recovers(self, store, two_class_dataset):
        model = make_model()
        original, _ = dataset_encodings(model, two_class_dataset.graphs, store)
        [key] = store.entries()
        with open(store._entry_path(key), "wb") as handle:
            handle.write(b"not an npz archive")
        recovered, hit = dataset_encodings(
            make_model(), two_class_dataset.graphs, store
        )
        assert not hit  # corrupted entry was dropped and re-encoded...
        assert np.array_equal(recovered, original)
        reread, hit = dataset_encodings(make_model(), two_class_dataset.graphs, store)
        assert hit  # ...and the store healed itself.
        assert np.array_equal(reread, original)

    def test_truncated_entry_recovers(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        [key] = store.entries()
        path = store._entry_path(key)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert store.load(key) is None
        assert not os.path.exists(path)

    def test_clear_removes_entries(self, store, two_class_dataset):
        dataset_encodings(make_model(), two_class_dataset.graphs, store)
        dataset_encodings(
            make_model(backend="packed"), two_class_dataset.graphs, store
        )
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0

    def test_clear_on_missing_directory(self, tmp_path):
        store = EncodingStore(tmp_path / "never-created")
        assert store.clear() == 0
        assert store.entries() == []


def _racing_writer(path, key, dimension, barrier):
    store = EncodingStore(path)
    payload = np.full((64, dimension), 7, dtype=np.int8)
    barrier.wait()
    for _ in range(20):
        store.save(key, payload)


class TestConcurrentWriters:
    def test_two_processes_racing_on_one_store(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        context = multiprocessing.get_context("fork")
        path = str(tmp_path / "store")
        key = "deadbeef" * 8
        barrier = context.Barrier(2)
        workers = [
            context.Process(
                target=_racing_writer, args=(path, key, DIMENSION, barrier)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = EncodingStore(path)
        loaded = store.load(key)
        assert loaded is not None  # readers only ever see complete entries
        assert np.array_equal(loaded, np.full((64, DIMENSION), 7, dtype=np.int8))
        assert store.entries() == [key]  # no stray temp files promoted
