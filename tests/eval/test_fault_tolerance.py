"""Fault-tolerance tests for the supervised task runtime.

Every recovery path of :mod:`repro.eval.parallel` is exercised with the
deterministic injectors from :mod:`repro.eval.faults`, and each recovery is
checked against the headline guarantee: a retried, re-executed, or
journal-resumed run returns exactly what a clean serial run would have.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval import faults
from repro.eval.checkpoint import JournalMismatchError, TaskJournal
from repro.eval.comparison import compare_methods
from repro.eval.cross_validation import cross_validate
from repro.eval.parallel import (
    TaskPolicy,
    TaskQuarantineError,
    parallelism_available,
    run_tasks,
    supervise_tasks,
)
from repro.eval.sharded import ShardFitError, fit_sharded

DIMENSION = 256

needs_pool = pytest.mark.skipif(
    not parallelism_available(),
    reason="process-pool parallelism unavailable on this platform",
)


def make_factory():
    return lambda: GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))


def squares(n=6):
    """A deterministic task list with distinguishable results."""
    return [lambda index=index: index * index for index in range(n)]


class TestTaskPolicy:
    def test_rejects_invalid_knobs(self):
        with pytest.raises(ValueError, match="timeout"):
            TaskPolicy(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            TaskPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            TaskPolicy(backoff=-0.1)

    def test_attempts_and_backoff_schedule(self):
        policy = TaskPolicy(retries=3, backoff=0.1)
        assert policy.attempts_allowed == 4
        assert policy.retry_delay(1) == pytest.approx(0.1)
        assert policy.retry_delay(2) == pytest.approx(0.2)
        assert policy.retry_delay(3) == pytest.approx(0.4)

    def test_scoped_nests_the_checkpoint_dir(self, tmp_path):
        policy = TaskPolicy(checkpoint_dir=tmp_path / "run")
        scoped = policy.scoped("cells", "MUTAG-GraphHD")
        assert os.fspath(scoped.checkpoint_dir) == os.path.join(
            os.fspath(tmp_path / "run"), "cells", "MUTAG-GraphHD"
        )
        # Without a checkpoint there is nothing to scope.
        assert TaskPolicy().scoped("cells") == TaskPolicy()


class TestTransientRetries:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_flaky_task_recovers_bit_identically(self, tmp_path, n_jobs):
        if n_jobs > 1 and not parallelism_available():
            pytest.skip("no process-pool parallelism")
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares()
        tasks[2] = faults.fail_first_calls(tasks[2], state, 2)
        clean = [task() for task in squares()]
        results = run_tasks(
            tasks, n_jobs=n_jobs, policy=TaskPolicy(retries=2, backoff=0.0)
        )
        assert results == clean
        assert state.calls() == 3  # two doomed attempts plus the success

    def test_no_retries_by_default(self, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares(3)
        tasks[1] = faults.fail_first_calls(tasks[1], state, 1)
        with pytest.raises(TaskQuarantineError):
            run_tasks(tasks, n_jobs=1)
        assert state.calls() == 1


class TestQuarantine:
    def test_poison_task_reports_structured_attempts(self):
        def poison():
            raise ValueError("deliberately poisonous")

        tasks = squares(4)
        tasks[1] = poison
        with pytest.raises(TaskQuarantineError) as excinfo:
            run_tasks(tasks, n_jobs=1, policy=TaskPolicy(retries=1, backoff=0.0))
        error = excinfo.value
        # The original exception text survives into the message (so existing
        # RuntimeError matchers keep working) and into the structured report.
        assert "deliberately poisonous" in str(error)
        (failure,) = error.failures
        assert failure.index == 1
        assert [attempt.number for attempt in failure.attempts] == [1, 2]
        assert {attempt.kind for attempt in failure.attempts} == {"exception"}
        assert all(
            "deliberately poisonous" in attempt.detail
            for attempt in failure.attempts
        )

    def test_supervise_tasks_keeps_partial_results(self):
        def poison():
            raise ValueError("boom")

        tasks = squares(4)
        tasks[2] = poison
        report = supervise_tasks(tasks, n_jobs=1)
        assert report.results == [0, 1, None, 9]
        assert report.failed_indices == [2]
        assert report.replayed == 0

    @needs_pool
    def test_quarantine_does_not_poison_the_rest_of_the_run(self):
        def poison():
            raise ValueError("boom")

        tasks = squares(6)
        tasks[0] = poison
        report = supervise_tasks(tasks, n_jobs=2)
        assert report.results == [None, 1, 4, 9, 16, 25]
        assert report.failed_indices == [0]


@needs_pool
class TestTimeoutRecovery:
    def test_hanging_attempt_is_killed_and_retried(self, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares(3)
        tasks[1] = faults.hang_first_calls(tasks[1], state, 1, seconds=120.0)
        results = run_tasks(
            tasks,
            n_jobs=2,
            policy=TaskPolicy(timeout=0.5, retries=1, backoff=0.0),
        )
        assert results == [0, 1, 4]

    def test_timeout_without_retries_quarantines(self, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares(2)
        tasks[0] = faults.hang_first_calls(tasks[0], state, 1, seconds=120.0)
        report = supervise_tasks(
            tasks, n_jobs=2, policy=TaskPolicy(timeout=0.5)
        )
        assert report.results == [None, 1]
        (failure,) = report.failures
        assert failure.index == 0
        assert failure.attempts[0].kind == "timeout"
        assert "0.5s task timeout" in failure.attempts[0].detail


@needs_pool
class TestWorkerDeathRecovery:
    def test_sigkilled_worker_is_rebuilt_and_task_reexecuted(self, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares(4)
        tasks[1] = faults.kill_first_calls(tasks[1], state, 1)
        results = run_tasks(
            tasks, n_jobs=2, policy=TaskPolicy(retries=1, backoff=0.0)
        )
        assert results == [0, 1, 4, 9]
        assert state.calls() == 2  # the doomed worker call plus the recovery

    def test_worker_death_without_retries_quarantines(self, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        tasks = squares(2)
        tasks[0] = faults.kill_first_calls(tasks[0], state, 1)
        report = supervise_tasks(tasks, n_jobs=2)
        assert report.results == [None, 1]
        (failure,) = report.failures
        assert failure.index == 0
        assert failure.attempts[0].kind == "worker-death"
        assert f"exitcode {-signal.SIGKILL}" in failure.attempts[0].detail


class TestTaskJournal:
    def test_record_and_replay_roundtrip(self, tmp_path):
        journal = TaskJournal(tmp_path / "journal", num_tasks=3, tag="t")
        journal.record(0, {"accuracy": 0.5})
        journal.record(2, np.arange(4))
        replayed = journal.completed()
        assert sorted(replayed) == [0, 2]
        assert replayed[0] == {"accuracy": 0.5}
        assert np.array_equal(replayed[2], np.arange(4))
        assert journal.completed_indices() == [0, 2]

    def test_mismatched_run_shape_is_rejected(self, tmp_path):
        TaskJournal(tmp_path / "journal", num_tasks=3, tag="run-a")
        with pytest.raises(JournalMismatchError, match="num_tasks"):
            TaskJournal(tmp_path / "journal", num_tasks=4, tag="run-a")
        with pytest.raises(JournalMismatchError, match="tag"):
            TaskJournal(tmp_path / "journal", num_tasks=3, tag="run-b")

    def test_corrupt_result_file_reruns_its_task(self, tmp_path):
        journal = TaskJournal(tmp_path / "journal", num_tasks=2)
        journal.record(0, "fine")
        journal.record(1, "doomed")
        faults.truncate_file(journal.result_path(1), keep_fraction=0.3)
        replayed = journal.completed()
        assert replayed == {0: "fine"}
        # The torn file was removed, so the task is simply pending again.
        assert not os.path.exists(journal.result_path(1))

    def test_clear_removes_results_and_meta(self, tmp_path):
        journal = TaskJournal(tmp_path / "journal", num_tasks=2, tag="x")
        journal.record(0, 1)
        journal.record(1, 2)
        assert journal.clear() == 2
        # A differently-shaped run can now claim the directory.
        TaskJournal(tmp_path / "journal", num_tasks=5, tag="y")


class TestCheckpointResume:
    def test_interrupted_run_resumes_without_recomputation(self, tmp_path):
        executions = []

        def make_task(index):
            def task():
                executions.append(index)
                return index * index

            return task

        tasks = [make_task(index) for index in range(5)]
        tasks[3] = faults.fail_first_calls(
            tasks[3], faults.FaultState(tmp_path / "faults"), 1
        )
        policy = TaskPolicy(checkpoint_dir=tmp_path / "journal")
        first = supervise_tasks(tasks, n_jobs=1, policy=policy, checkpoint_tag="run")
        assert first.results == [0, 1, 4, None, 16]
        assert first.replayed == 0

        # The retry run replays the journal and executes only the failure.
        executed_before = list(executions)
        second = supervise_tasks(tasks, n_jobs=1, policy=policy, checkpoint_tag="run")
        assert second.results == [0, 1, 4, 9, 16]
        assert second.failures == []
        assert second.replayed == 4
        assert executions == executed_before + [3]

    def test_resume_with_a_different_tag_is_rejected(self, tmp_path):
        policy = TaskPolicy(checkpoint_dir=tmp_path / "journal")
        run_tasks(squares(3), n_jobs=1, policy=policy, checkpoint_tag="shape-a")
        with pytest.raises(JournalMismatchError, match="tag"):
            run_tasks(squares(3), n_jobs=1, policy=policy, checkpoint_tag="shape-b")

    @needs_pool
    def test_parallel_resume_matches_clean_serial_run(self, tmp_path):
        clean = [task() for task in squares(8)]
        policy = TaskPolicy(checkpoint_dir=tmp_path / "journal")
        partial = TaskJournal(
            policy.checkpoint_dir, num_tasks=8, tag="squares"
        )
        for index in (0, 3, 5):  # as if a crash interrupted an earlier run
            partial.record(index, clean[index])
        report = supervise_tasks(
            squares(8), n_jobs=2, policy=policy, checkpoint_tag="squares"
        )
        assert report.results == clean
        assert report.replayed == 3


class TestHarnessIntegration:
    """The injectors driven through the real evaluation harnesses."""

    @needs_pool
    def test_cross_validate_survives_a_worker_kill(self, two_class_dataset, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        base_factory = make_factory()

        def doomed_factory():
            model = base_factory()
            real_fit = model.fit_encoded

            def killed_fit(encodings, labels):
                if state.next_call() <= 1:
                    os.kill(os.getpid(), signal.SIGKILL)
                return real_fit(encodings, labels)

            model.fit_encoded = killed_fit
            return model

        clean = cross_validate(
            base_factory,
            two_class_dataset,
            n_splits=3,
            repetitions=1,
            seed=5,
            n_jobs=1,
        )
        survived = cross_validate(
            doomed_factory,
            two_class_dataset,
            n_splits=3,
            repetitions=1,
            seed=5,
            n_jobs=2,
            task_policy=TaskPolicy(retries=1, backoff=0.0),
        )
        assert state.calls() >= 1  # the kill really fired somewhere
        assert [fold.accuracy for fold in survived.folds] == [
            fold.accuracy for fold in clean.folds
        ]
        assert [fold.test_indices for fold in survived.folds] == [
            fold.test_indices for fold in clean.folds
        ]

    def test_compare_methods_scopes_one_journal_per_cell(
        self, two_class_dataset, tmp_path
    ):
        kwargs = dict(
            methods=("GraphHD",),
            fast=True,
            n_splits=3,
            repetitions=1,
            seed=0,
            dimension=DIMENSION,
        )
        policy = TaskPolicy(checkpoint_dir=tmp_path / "journal")
        first = compare_methods(
            [two_class_dataset], n_jobs=1, task_policy=policy, **kwargs
        )
        # The serial grid journals each cell's folds under cells/<slug>.
        cells = tmp_path / "journal" / "cells"
        assert cells.is_dir() and any(cells.iterdir())
        second = compare_methods(
            [two_class_dataset], n_jobs=1, task_policy=policy, **kwargs
        )
        assert first.accuracy_table() == second.accuracy_table()
        key = (two_class_dataset.name, "GraphHD")
        assert [fold.accuracy for fold in first.results[key].folds] == [
            fold.accuracy for fold in second.results[key].folds
        ]

    def test_poison_shard_names_its_partition(self, two_class_dataset, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        base_factory = make_factory()

        def flaky_factory():
            model = base_factory()
            real_fit_state = model.fit_state

            def flaky(fit_graphs, fit_labels):
                if state.next_call() <= 1:
                    raise RuntimeError("injected shard failure")
                return real_fit_state(fit_graphs, fit_labels)

            model.fit_state = flaky
            return model

        with pytest.raises(TaskQuarantineError) as excinfo:
            fit_sharded(flaky_factory, graphs, labels, n_shards=3, n_jobs=1)
        message = str(excinfo.value)
        assert "training shard 0 of 3 (10 graphs) failed" in message
        assert "injected shard failure" in message

        # With a retry budget the same fault is absorbed and the result is
        # bit-identical to single-shot fit.
        state.reset()
        recovered = fit_sharded(
            flaky_factory,
            graphs,
            labels,
            n_shards=3,
            n_jobs=1,
            task_policy=TaskPolicy(retries=1, backoff=0.0),
        )
        single = base_factory().fit(graphs, labels)
        assert recovered.model.predict(graphs) == single.predict(graphs)

    def test_fit_sharded_resumes_journaled_shards(self, two_class_dataset, tmp_path):
        state = faults.FaultState(tmp_path / "faults")
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        base_factory = make_factory()

        def flaky_factory():
            model = base_factory()
            real_fit_state = model.fit_state

            def flaky(fit_graphs, fit_labels):
                if state.next_call() <= 1:
                    raise RuntimeError("injected shard failure")
                return real_fit_state(fit_graphs, fit_labels)

            model.fit_state = flaky
            return model

        policy = TaskPolicy(checkpoint_dir=tmp_path / "journal")
        with pytest.raises(TaskQuarantineError):
            fit_sharded(
                flaky_factory,
                graphs,
                labels,
                n_shards=3,
                n_jobs=1,
                task_policy=policy,
            )
        # Shards 1 and 2 trained (calls 2 and 3) and were journaled.
        assert state.calls() == 3

        resumed = fit_sharded(
            flaky_factory,
            graphs,
            labels,
            n_shards=3,
            n_jobs=1,
            task_policy=policy,
        )
        assert resumed.shards_replayed == 2
        # Exactly one extra fit call: only the failed shard was retrained.
        assert state.calls() == 4
        single = base_factory().fit(graphs, labels)
        assert resumed.model.predict(graphs) == single.predict(graphs)
