"""Tests for the classification metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    accuracy_score,
    confusion_matrix,
    macro_f1_score,
    per_class_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_partial(self):
        assert accuracy_score([0, 1, 1, 0], [0, 0, 1, 1]) == 0.5

    def test_arbitrary_labels(self):
        assert accuracy_score(["a", "b"], ["a", "c"]) == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix, classes = confusion_matrix([0, 1, 2, 1], [0, 1, 2, 1])
        assert classes == [0, 1, 2]
        assert np.array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal_counts(self):
        matrix, classes = confusion_matrix(["a", "a", "b"], ["b", "a", "b"])
        assert classes == ["a", "b"]
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_explicit_class_order(self):
        matrix, classes = confusion_matrix([1, 0], [1, 0], classes=[1, 0])
        assert classes == [1, 0]
        assert matrix[0, 0] == 1

    def test_row_sums_match_class_counts(self):
        true_labels = [0] * 5 + [1] * 3
        predicted = [0, 1, 0, 0, 1, 1, 1, 0]
        matrix, _ = confusion_matrix(true_labels, predicted)
        assert matrix[0].sum() == 5
        assert matrix[1].sum() == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0], [0, 1])


class TestPerClassAccuracy:
    def test_values(self):
        results = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert results[0] == pytest.approx(0.5)
        assert results[1] == pytest.approx(1.0)

    def test_unseen_class_gets_zero(self):
        results = per_class_accuracy([0, 0], [1, 1])
        assert results[0] == 0.0


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1_score([0, 1, 0], [0, 1, 0]) == pytest.approx(1.0)

    def test_balanced_errors(self):
        score = macro_f1_score([0, 0, 1, 1], [0, 1, 0, 1])
        assert score == pytest.approx(0.5)

    def test_all_wrong(self):
        assert macro_f1_score([0, 1], [1, 0]) == 0.0
