"""Tests for the robustness evaluation module."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.robustness import (
    RobustnessCurve,
    RobustnessPoint,
    corrupt_class_vectors,
    corrupt_gnn_weights,
    gnn_robustness_curve,
    graphhd_robustness_curve,
)
from repro.nn.training import GNNTrainer, TrainingConfig

DIMENSION = 2048


def graphhd_factory():
    return GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))


@pytest.fixture
def split_dataset(two_class_dataset):
    graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
    return graphs[:20], labels[:20], graphs[20:], labels[20:]


class TestRobustnessCurve:
    def test_accuracy_at_nearest_fraction(self):
        curve = RobustnessCurve(
            "m",
            [RobustnessPoint(0.0, 0.9), RobustnessPoint(0.2, 0.8), RobustnessPoint(0.5, 0.6)],
        )
        assert curve.accuracy_at(0.19) == 0.8
        assert curve.accuracy_at(0.0) == 0.9
        assert curve.degradation() == pytest.approx(0.3)
        assert curve.fractions == [0.0, 0.2, 0.5]
        assert curve.accuracies == [0.9, 0.8, 0.6]

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            RobustnessCurve("m").degradation()
        with pytest.raises(ValueError):
            RobustnessCurve("m").accuracy_at(0.1)


class TestCorruptClassVectors:
    def test_zero_fraction_is_noop(self, split_dataset):
        train_graphs, train_labels, test_graphs, test_labels = split_dataset
        model = graphhd_factory()
        model.fit(train_graphs, train_labels)
        before = {
            label: model.classifier.memory._accumulators[label].copy()
            for label in model.classes
        }
        corrupt_class_vectors(model, 0.0, rng=0)
        for label in model.classes:
            assert np.array_equal(
                before[label], model.classifier.memory._accumulators[label]
            )

    def test_full_corruption_flips_everything(self, split_dataset):
        train_graphs, train_labels, _, _ = split_dataset
        model = graphhd_factory()
        model.fit(train_graphs, train_labels)
        before = {
            label: model.classifier.memory._accumulators[label].copy()
            for label in model.classes
        }
        corrupt_class_vectors(model, 1.0, rng=0)
        for label in model.classes:
            assert np.array_equal(
                -before[label], model.classifier.memory._accumulators[label]
            )

    def test_invalid_fraction_rejected(self, split_dataset):
        train_graphs, train_labels, _, _ = split_dataset
        model = graphhd_factory()
        model.fit(train_graphs, train_labels)
        with pytest.raises(ValueError):
            corrupt_class_vectors(model, 1.5)


class TestGraphHDRobustness:
    def test_curve_shape_and_graceful_degradation(self, split_dataset):
        train_graphs, train_labels, test_graphs, test_labels = split_dataset
        curve = graphhd_robustness_curve(
            graphhd_factory,
            train_graphs,
            train_labels,
            test_graphs,
            test_labels,
            corruption_fractions=(0.0, 0.2, 0.45),
            repetitions=1,
            seed=0,
        )
        assert curve.model_name == "GraphHD"
        assert curve.fractions == [0.0, 0.2, 0.45]
        assert all(0.0 <= accuracy <= 1.0 for accuracy in curve.accuracies)
        # Holographic representation: moderate corruption must not destroy
        # the classifier on a clearly separable task.
        assert curve.accuracy_at(0.0) > 0.8
        assert curve.accuracy_at(0.2) > 0.6

    def test_invalid_repetitions(self, split_dataset):
        train_graphs, train_labels, test_graphs, test_labels = split_dataset
        with pytest.raises(ValueError):
            graphhd_robustness_curve(
                graphhd_factory,
                train_graphs,
                train_labels,
                test_graphs,
                test_labels,
                repetitions=0,
            )


class TestGNNRobustness:
    def test_corrupt_weights_requires_fitted_model(self):
        trainer = GNNTrainer("gin", TrainingConfig(epochs=1, seed=0))
        with pytest.raises(RuntimeError):
            corrupt_gnn_weights(trainer, 0.1)

    def test_corrupt_weights_flips_components(self, split_dataset):
        train_graphs, train_labels, _, _ = split_dataset
        trainer = GNNTrainer(
            "gin", TrainingConfig(epochs=2, hidden_features=8, batch_size=16, seed=0)
        )
        trainer.fit(train_graphs, train_labels)
        before = [parameter.data.copy() for parameter in trainer.model.parameters()]
        corrupt_gnn_weights(trainer, 1.0, rng=0)
        after = [parameter.data for parameter in trainer.model.parameters()]
        for original, corrupted in zip(before, after):
            assert np.allclose(original, -corrupted)

    def test_gnn_curve_runs(self, split_dataset):
        train_graphs, train_labels, test_graphs, test_labels = split_dataset
        curve = gnn_robustness_curve(
            lambda: GNNTrainer(
                "gin",
                TrainingConfig(epochs=5, hidden_features=8, batch_size=16, seed=0),
            ),
            train_graphs,
            train_labels,
            test_graphs,
            test_labels,
            corruption_fractions=(0.0, 0.3),
            repetitions=1,
            seed=0,
        )
        assert curve.model_name == "GIN-e"
        assert len(curve.points) == 2
        assert all(0.0 <= accuracy <= 1.0 for accuracy in curve.accuracies)
