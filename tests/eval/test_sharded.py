"""Unit tests for the sharded map-reduce training driver."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.eval.encoding_store import EncodingStore
from repro.eval.sharded import (
    ShardedFitResult,
    ShardFitError,
    _shard_task,
    fit_shard,
    fit_sharded,
    shard_indices,
)

DIMENSION = 512


def make_factory(backend="dense"):
    return lambda: GraphHDClassifier(
        GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend)
    )


class TestShardFitError:
    def test_message_names_the_partition(self):
        error = ShardFitError(2, 5, 7, "ValueError: nope")
        assert "training shard 2 of 5 (7 graphs) failed: ValueError: nope" in str(error)
        assert error.shard_index == 2
        assert error.num_shards == 5
        assert error.shard_size == 7

    def test_shard_task_wraps_and_chains_the_cause(self):
        def broken():
            raise ValueError("inner detail")

        task = _shard_task(broken, 1, 4, 9)
        with pytest.raises(ShardFitError, match="shard 1 of 4") as excinfo:
            task()
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "inner detail" in str(excinfo.value)


class TestShardIndices:
    def test_contiguous_and_balanced(self):
        blocks = shard_indices(10, 3)
        assert [list(block) for block in blocks] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_covers_every_sample_once(self):
        for n_shards in (1, 2, 5, 7, 13):
            blocks = shard_indices(23, n_shards)
            assert len(blocks) == n_shards
            assert list(np.concatenate(blocks)) == list(range(23))

    def test_extra_shards_come_back_empty(self):
        blocks = shard_indices(2, 5)
        assert [block.size for block in blocks] == [1, 1, 0, 0, 0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_indices(10, 0)
        with pytest.raises(ValueError, match="num_samples"):
            shard_indices(-1, 2)


class TestFitShard:
    def test_returns_context_stamped_state(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs[:10], two_class_dataset.labels[:10]
        state = fit_shard(make_factory(), graphs, labels)
        assert state.num_samples == 10
        assert state.context is not None
        assert state.context["encoder"] == "GraphHDEncoder"
        assert state.context["config"]["dimension"] == DIMENSION

    def test_rejects_models_without_state_protocol(self, two_class_dataset):
        with pytest.raises(ValueError, match="training-state protocol"):
            fit_shard(
                lambda: object(),
                two_class_dataset.graphs[:4],
                two_class_dataset.labels[:4],
            )


class TestFitSharded:
    def test_result_fields(self, two_class_dataset, monkeypatch):
        # Pin the worker-count resolution: the suite also runs under
        # REPRO_N_JOBS=2 in CI, which n_jobs=None would otherwise pick up.
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        result = fit_sharded(make_factory(), graphs, labels, n_shards=3)
        assert isinstance(result, ShardedFitResult)
        assert result.shard_sizes == [10, 10, 10]
        assert len(result.shard_states) == 3
        assert sum(s.num_samples for s in result.shard_states) == len(graphs)
        assert result.state.num_samples == len(graphs)
        assert result.from_store is None
        assert result.n_jobs == 1

    def test_validates_inputs(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        with pytest.raises(ValueError, match="same length"):
            fit_sharded(make_factory(), graphs, labels[:-1], n_shards=2)
        with pytest.raises(ValueError, match="empty"):
            fit_sharded(make_factory(), [], [], n_shards=2)
        with pytest.raises(ValueError, match="n_shards"):
            fit_sharded(make_factory(), graphs, labels, n_shards=0)

    def test_store_path_hits_on_second_run(self, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        store = EncodingStore(tmp_path / "store")
        factory = make_factory()
        cold = fit_sharded(
            factory, graphs, labels, n_shards=2, encoding_store=store
        )
        assert cold.from_store is False
        warm = fit_sharded(
            factory, graphs, labels, n_shards=2, encoding_store=store
        )
        assert warm.from_store is True
        # Cold, warm and store-free runs all produce the same class vectors.
        plain = fit_sharded(factory, graphs, labels, n_shards=2)
        for label in plain.model.classes:
            assert np.array_equal(
                cold.model.classifier.memory._accumulators[label],
                plain.model.classifier.memory._accumulators[label],
            )
            assert np.array_equal(
                warm.model.classifier.memory._accumulators[label],
                plain.model.classifier.memory._accumulators[label],
            )

    def test_store_path_with_mmap(self, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        store = EncodingStore(tmp_path / "store")
        factory = make_factory()
        fit_sharded(factory, graphs, labels, n_shards=2, encoding_store=store)
        mapped = fit_sharded(
            factory,
            graphs,
            labels,
            n_shards=2,
            n_jobs=2,
            encoding_store=store,
            mmap_mode="r",
        )
        assert mapped.from_store is True
        single = factory().fit(graphs, labels)
        assert mapped.model.predict(graphs) == single.predict(graphs)

    def test_merged_state_saves_and_rebuilds(self, two_class_dataset, tmp_path):
        from repro.hdc.training_state import TrainingState

        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        result = fit_sharded(make_factory(), graphs, labels, n_shards=2)
        path = tmp_path / "merged.npz"
        result.state.save(path)
        rebuilt = make_factory()().fit_from_state(TrainingState.load(path))
        assert rebuilt.predict(graphs) == result.model.predict(graphs)
