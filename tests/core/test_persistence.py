"""Round-trip tests for GraphHD model persistence (save / load)."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier

DIMENSION = 1024


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestRoundTrip:
    def test_predictions_survive_round_trip(self, backend, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs, labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.predict(graphs) == model.predict(graphs)

    def test_config_and_metric_survive(self, backend, two_class_dataset, tmp_path):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=3, backend=backend),
            metric="hamming",
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.config == model.config
        assert restored.config.backend == backend
        assert restored.metric == "hamming"
        assert restored.backend.name == model.backend.name

    def test_encodings_survive_round_trip(self, backend, two_class_dataset, tmp_path):
        graphs = two_class_dataset.graphs
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert np.array_equal(restored.encode(graphs[:5]), model.encode(graphs[:5]))

    def test_class_state_survives(self, backend, two_class_dataset, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == model.classes
        for label in model.classes:
            assert np.array_equal(
                restored.classifier.memory._accumulators[label],
                model.classifier.memory._accumulators[label],
            )
            assert restored.classifier.memory.count(label) == model.classifier.memory.count(label)

    def test_online_learning_continues_after_load(self, backend, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs[:20], labels[:20])
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        for graph, label in zip(graphs[20:], labels[20:]):
            model.partial_fit(graph, label)
            restored.partial_fit(graph, label)
        assert restored.predict(graphs) == model.predict(graphs)


class TestLabelTypes:
    def test_tuple_labels_round_trip(self, two_class_dataset, tmp_path):
        # Equal-length tuple labels must not be broadcast into a 2-D object
        # array on save (which would restore them as unhashable ndarrays).
        graphs = two_class_dataset.graphs[:10]
        labels = [("cls", label) for label in two_class_dataset.labels[:10]]
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        model.fit(graphs, labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == model.classes
        assert all(isinstance(label, tuple) for label in restored.classes)
        assert restored.predict(graphs) == model.predict(graphs)


class TestRandomCentrality:
    def test_random_centrality_round_trips_exactly(self, two_class_dataset, tmp_path):
        # The 'random' centrality draws from encoder._random_rng during
        # encoding; its stream position must be persisted for the restored
        # model to encode (and predict) identically.
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, centrality="random")
        )
        model.fit(graphs[:20], labels[:20])
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert np.array_equal(restored.encode(graphs[20:]), model.encode(graphs[20:]))
        assert restored.predict(graphs[20:]) == model.predict(graphs[20:])


class TestFormat:
    def test_rejects_unknown_format_version(self, two_class_dataset, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        with np.load(path, allow_pickle=True) as data:
            contents = dict(data)
        contents["format_version"] = np.int64(999)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError):
            GraphHDClassifier.load(path)

    def test_unfitted_model_round_trips(self, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == []
        assert restored.classifier._is_fitted is False
