"""Round-trip tests for GraphHD model persistence (save / load)."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier
from repro.hdc.training_state import TrainingState

DIMENSION = 1024


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestRoundTrip:
    def test_predictions_survive_round_trip(self, backend, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs, labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.predict(graphs) == model.predict(graphs)

    def test_config_and_metric_survive(self, backend, two_class_dataset, tmp_path):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=3, backend=backend),
            metric="hamming",
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.config == model.config
        assert restored.config.backend == backend
        assert restored.metric == "hamming"
        assert restored.backend.name == model.backend.name

    def test_encodings_survive_round_trip(self, backend, two_class_dataset, tmp_path):
        graphs = two_class_dataset.graphs
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert np.array_equal(restored.encode(graphs[:5]), model.encode(graphs[:5]))

    def test_class_state_survives(self, backend, two_class_dataset, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == model.classes
        for label in model.classes:
            assert np.array_equal(
                restored.classifier.memory._accumulators[label],
                model.classifier.memory._accumulators[label],
            )
            assert restored.classifier.memory.count(label) == model.classifier.memory.count(label)

    def test_online_learning_continues_after_load(self, backend, two_class_dataset, tmp_path):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend))
        model.fit(graphs[:20], labels[:20])
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        for graph, label in zip(graphs[20:], labels[20:]):
            model.partial_fit(graph, label)
            restored.partial_fit(graph, label)
        assert restored.predict(graphs) == model.predict(graphs)


class TestLabelTypes:
    def test_tuple_labels_round_trip(self, two_class_dataset, tmp_path):
        # Equal-length tuple labels must not be broadcast into a 2-D object
        # array on save (which would restore them as unhashable ndarrays).
        graphs = two_class_dataset.graphs[:10]
        labels = [("cls", label) for label in two_class_dataset.labels[:10]]
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        model.fit(graphs, labels)
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == model.classes
        assert all(isinstance(label, tuple) for label in restored.classes)
        assert restored.predict(graphs) == model.predict(graphs)


class TestRandomCentrality:
    def test_random_centrality_round_trips_exactly(self, two_class_dataset, tmp_path):
        # The 'random' centrality draws from encoder._random_rng during
        # encoding; its stream position must be persisted for the restored
        # model to encode (and predict) identically.
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, centrality="random")
        )
        model.fit(graphs[:20], labels[:20])
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert np.array_equal(restored.encode(graphs[20:]), model.encode(graphs[20:]))
        assert restored.predict(graphs[20:]) == model.predict(graphs[20:])


class TestFormat:
    def test_rejects_unknown_format_version(self, two_class_dataset, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        with np.load(path, allow_pickle=True) as data:
            contents = dict(data)
        contents["format_version"] = np.int64(999)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError):
            GraphHDClassifier.load(path)

    def test_unfitted_model_round_trips(self, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        path = tmp_path / "model.npz"
        model.save(path)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == []
        assert restored.classifier._is_fitted is False


class TestFormatV2:
    """The TrainingState-embedding archive layout (format version 2)."""

    def _saved_model(self, dataset, tmp_path):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        model.fit(dataset.graphs, dataset.labels)
        path = tmp_path / "model.npz"
        model.save(path)
        return model, path

    def test_archive_embeds_training_state(self, two_class_dataset, tmp_path):
        _, path = self._saved_model(two_class_dataset, tmp_path)
        with np.load(path, allow_pickle=True) as data:
            assert int(data["format_version"]) == 2
            assert str(data["kind"]) == "graphhd_model"
            for key in ("state_class_labels", "state_class_accumulators",
                        "state_class_counts", "state_context"):
                assert key in data.files

    def test_not_an_archive_message(self, tmp_path):
        path = tmp_path / "noise.npz"
        np.savez(path, payload=np.arange(4))
        with pytest.raises(ValueError, match="not a GraphHD model archive"):
            GraphHDClassifier.load(path)

    def test_version_error_names_expected_and_found(
        self, two_class_dataset, tmp_path
    ):
        _, path = self._saved_model(two_class_dataset, tmp_path)
        with np.load(path, allow_pickle=True) as data:
            contents = dict(data)
        contents["format_version"] = np.int64(999)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match=r"found 999, expected 1\.\.2"):
            GraphHDClassifier.load(path)

    def test_rejects_training_state_archive(self, two_class_dataset, tmp_path):
        model, _ = self._saved_model(two_class_dataset, tmp_path)
        state_path = tmp_path / "state.npz"
        model.export_state().save(state_path)
        with pytest.raises(ValueError, match="TrainingState.load"):
            GraphHDClassifier.load(state_path)

    def test_loads_legacy_v1_archive(self, two_class_dataset, tmp_path):
        # Rewrite a v2 archive into the pre-TrainingState v1 layout (bare
        # class_* arrays, no kind marker) and check it still loads exactly.
        model, path = self._saved_model(two_class_dataset, tmp_path)
        with np.load(path, allow_pickle=True) as data:
            contents = dict(data)
        contents["format_version"] = np.int64(1)
        del contents["kind"]
        for key in ("class_labels", "class_accumulators", "class_counts"):
            contents[key] = contents.pop(f"state_{key}")
        del contents["state_dimension"]
        del contents["state_backend"]
        del contents["state_context"]
        np.savez_compressed(path, **contents)
        restored = GraphHDClassifier.load(path)
        assert restored.classes == model.classes
        graphs = two_class_dataset.graphs
        assert restored.predict(graphs) == model.predict(graphs)

    def test_loaded_model_resumes_merge(self, two_class_dataset, tmp_path):
        # A loaded model must absorb a compatible shard state exactly as the
        # original would: load(save(fit(A))) + merge(state(B)) == fit(A + B).
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=DIMENSION, seed=0)
        first = GraphHDClassifier(config).fit(graphs[:15], labels[:15])
        path = tmp_path / "model.npz"
        first.save(path)
        restored = GraphHDClassifier.load(path)
        shard = GraphHDClassifier(config).fit_state(graphs[15:], labels[15:])
        restored.fit_from_state(shard)
        full = GraphHDClassifier(config).fit(graphs, labels)
        assert restored.classes == full.classes
        for label in full.classes:
            assert np.array_equal(
                restored.classifier.memory._accumulators[label],
                full.classifier.memory._accumulators[label],
            )

    def test_export_state_round_trips_through_state_file(
        self, two_class_dataset, tmp_path
    ):
        model, _ = self._saved_model(two_class_dataset, tmp_path)
        state_path = tmp_path / "state.npz"
        exported = model.export_state()
        exported.save(state_path)
        assert TrainingState.load(state_path) == exported
        assert exported.context is not None
        assert exported.context["encoder"] == "GraphHDEncoder"
