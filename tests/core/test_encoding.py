"""Tests for the GraphHD encoder."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.hdc.operations import cosine_similarity

DIMENSION = 2048


@pytest.fixture
def encoder():
    return GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))


class TestConfig:
    def test_paper_defaults(self):
        config = GraphHDConfig()
        assert config.dimension == 10_000
        assert config.centrality == "pagerank"
        assert config.pagerank_iterations == 10
        assert config.pagerank_batch_size == 256
        assert config.normalize_graph_hypervectors

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphHDConfig(dimension=0)
        with pytest.raises(ValueError):
            GraphHDConfig(centrality="betweenness")
        with pytest.raises(ValueError):
            GraphHDConfig(pagerank_iterations=-1)
        with pytest.raises(ValueError):
            GraphHDConfig(pagerank_batch_size=0)


class TestVertexIdentifiers:
    def test_ranks_are_permutation(self, encoder, star_graph):
        identifiers = encoder.vertex_identifiers(star_graph)
        assert sorted(identifiers) == list(range(star_graph.num_vertices))

    def test_hub_gets_rank_zero(self, encoder, star_graph):
        identifiers = encoder.vertex_identifiers(star_graph)
        assert identifiers[0] == 0

    def test_same_rank_same_hypervector_across_graphs(self, encoder):
        star_a = Graph(5, [(0, i) for i in range(1, 5)])
        star_b = Graph(7, [(0, i) for i in range(1, 7)])
        vectors_a = encoder.encode_vertices(star_a)
        vectors_b = encoder.encode_vertices(star_b)
        # Both hubs have rank 0 and must share the same basis hypervector.
        assert np.array_equal(vectors_a[0], vectors_b[0])

    def test_degree_centrality_option(self):
        encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, centrality="degree", seed=0)
        )
        star = Graph(5, [(0, i) for i in range(1, 5)])
        assert encoder.vertex_identifiers(star)[0] == 0

    def test_eigenvector_centrality_option(self):
        encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, centrality="eigenvector", seed=0)
        )
        star = Graph(5, [(0, i) for i in range(1, 5)])
        assert encoder.vertex_identifiers(star)[0] == 0

    def test_random_centrality_is_arbitrary_permutation(self):
        encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, centrality="random", seed=0)
        )
        graph = erdos_renyi_graph(20, 0.2, rng=0)
        identifiers = encoder.vertex_identifiers(graph)
        assert sorted(identifiers) == list(range(20))


class TestEdgeEncoding:
    def test_edge_hypervectors_shape(self, encoder, triangle_graph):
        edges = encoder.encode_edges(triangle_graph)
        assert edges.shape == (3, DIMENSION)
        assert set(np.unique(edges)) <= {-1, 1}

    def test_edge_is_binding_of_endpoints(self, encoder, path_graph):
        vertices = encoder.encode_vertices(path_graph)
        edges = encoder.encode_edges(path_graph, vertices)
        expected = vertices[0].astype(np.int64) * vertices[1].astype(np.int64)
        assert np.array_equal(edges[0].astype(np.int64), expected)

    def test_edgeless_graph(self, encoder):
        edges = encoder.encode_edges(Graph(4))
        assert edges.shape == (0, DIMENSION)


class TestGraphEncoding:
    def test_encoding_is_bipolar(self, encoder, small_graph_collection):
        for graph in small_graph_collection:
            hypervector = encoder.encode(graph)
            assert hypervector.shape == (DIMENSION,)
            assert set(np.unique(hypervector)) <= {-1, 1}

    def test_deterministic(self, encoder, triangle_graph):
        # Encoding has no randomness beyond tie-breaking of even bundles;
        # the triangle has three edges so no ties arise.
        assert np.array_equal(encoder.encode(triangle_graph), encoder.encode(triangle_graph))

    def test_isomorphic_graphs_encode_identically(self, encoder):
        first = Graph(4, [(0, 1), (1, 2), (2, 3)])
        second = Graph(4, [(3, 2), (2, 1), (1, 0)])
        assert np.array_equal(encoder.encode(first), encoder.encode(second))

    def test_similar_graphs_more_similar_than_different(self, encoder):
        rng = np.random.default_rng(0)
        base = erdos_renyi_graph(20, 0.2, rng=rng)
        # A near-copy: same graph with one extra edge.
        near = base.copy()
        near.add_edge(0, 19) if not base.has_edge(0, 19) else near.add_edge(0, 18)
        different = erdos_renyi_graph(20, 0.2, rng=rng)
        base_hv = encoder.encode(base)
        assert cosine_similarity(base_hv, encoder.encode(near)) > cosine_similarity(
            base_hv, encoder.encode(different)
        )

    def test_unnormalized_encoding_is_integer_sum(self):
        encoder = GraphHDEncoder(
            GraphHDConfig(
                dimension=DIMENSION, normalize_graph_hypervectors=False, seed=0
            )
        )
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        encoding = encoder.encode(triangle)
        assert encoding.dtype == np.int64
        assert np.abs(encoding).max() <= 3

    def test_include_vertices_option_changes_encoding(self, triangle_graph):
        plain = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        enriched = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, include_vertices=True, seed=0)
        )
        assert not np.array_equal(
            plain.encode(triangle_graph), enriched.encode(triangle_graph)
        )

    def test_empty_graph_encodes_to_valid_hypervector(self, encoder):
        hypervector = encoder.encode(Graph(3))
        assert hypervector.shape == (DIMENSION,)
        assert set(np.unique(hypervector)) <= {-1, 1}


class TestEncodeMany:
    def test_matches_single_encoding(self, encoder, small_graph_collection):
        batch = encoder.encode_many(small_graph_collection)
        assert batch.shape == (len(small_graph_collection), DIMENSION)
        # Tie-breaking uses a fixed per-encoder vector, so batched and
        # one-by-one encodings are bit-identical.
        for index, graph in enumerate(small_graph_collection):
            assert np.array_equal(batch[index], encoder.encode(graph))

    def test_empty_input(self, encoder):
        assert encoder.encode_many([]).shape == (0, DIMENSION)

    def test_batched_pagerank_respects_batch_size(self, small_graph_collection):
        encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, pagerank_batch_size=2, seed=0)
        )
        batch = encoder.encode_many(small_graph_collection)
        assert batch.shape == (len(small_graph_collection), DIMENSION)

    def test_non_pagerank_centrality_batches(self, small_graph_collection):
        encoder = GraphHDEncoder(
            GraphHDConfig(dimension=DIMENSION, centrality="degree", seed=0)
        )
        batch = encoder.encode_many(small_graph_collection)
        assert batch.shape == (len(small_graph_collection), DIMENSION)

    def test_deterministic_across_encoders_with_same_seed(self, small_graph_collection):
        first = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=3))
        second = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=3))
        assert np.array_equal(
            first.encode_many(small_graph_collection),
            second.encode_many(small_graph_collection),
        )
