"""Tests for the GraphHD classifier (Algorithm 1 + inference)."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier

DIMENSION = 2048


@pytest.fixture
def model():
    return GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))


class TestFitPredict:
    def test_learns_separable_dataset(self, model, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs[:20], labels[:20])
        assert model.score(graphs[20:], labels[20:]) > 0.8

    def test_learns_density_contrast(self, random_graph_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = random_graph_dataset.graphs, random_graph_dataset.labels
        model.fit(graphs, labels)
        assert model.score(graphs, labels) > 0.7

    def test_classes_property(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert set(model.classes) == {0, 1}

    def test_predict_one(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        prediction = model.predict_one(two_class_dataset.graphs[0])
        assert prediction in (0, 1)

    def test_predict_empty_list(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.predict([]) == []

    def test_decision_scores_shape(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        scores, classes = model.decision_scores(two_class_dataset.graphs[:5])
        assert scores.shape == (5, 2)
        assert set(classes) == {0, 1}

    def test_encode_exposed(self, model, two_class_dataset):
        encodings = model.encode(two_class_dataset.graphs[:3])
        assert encodings.shape == (3, DIMENSION)

    def test_validation(self, model, two_class_dataset):
        with pytest.raises(ValueError):
            model.fit(two_class_dataset.graphs, two_class_dataset.labels[:-1])
        with pytest.raises(ValueError):
            model.fit([], [])
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        with pytest.raises(ValueError):
            model.score([], [])

    def test_timings_recorded(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        encoding_after_fit = model.timings.encoding_seconds
        assert encoding_after_fit <= model.timings.training_seconds
        model.predict(two_class_dataset.graphs)
        assert model.timings.training_seconds > 0
        assert model.timings.inference_seconds > 0
        # predict books its encode cost onto encoding_seconds, not onto
        # inference_seconds (which records pure similarity search).
        assert model.timings.encoding_seconds > encoding_after_fit

    def test_timings_decompose_training(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        timings = model.timings
        assert timings.accumulation_seconds > 0
        # training time decomposes exactly into encoding + accumulation
        assert timings.training_seconds == pytest.approx(
            timings.encoding_seconds + timings.accumulation_seconds
        )

    def test_partial_fit_updates_timings(self, model, two_class_dataset):
        graph, label = two_class_dataset.graphs[0], two_class_dataset.labels[0]
        model.partial_fit(graph, label)
        first_training = model.timings.training_seconds
        assert first_training > 0
        assert model.timings.encoding_seconds > 0
        assert model.timings.accumulation_seconds > 0
        model.partial_fit(graph, label)
        # partial_fit accumulates its per-sample cost
        assert model.timings.training_seconds > first_training

    def test_hamming_metric_supported(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), metric="hamming"
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.7


class TestOnlineLearning:
    def test_partial_fit_builds_model(self, two_class_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        for graph, label in zip(two_class_dataset.graphs, two_class_dataset.labels):
            model.partial_fit(graph, label)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.8

    def test_partial_fit_matches_batch_fit_distribution(self, two_class_dataset):
        batch_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        online_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        batch_model.fit(graphs, labels)
        for graph, label in zip(graphs, labels):
            online_model.partial_fit(graph, label)
        batch_predictions = batch_model.predict(graphs)
        online_predictions = online_model.predict(graphs)
        agreement = np.mean(
            [b == o for b, o in zip(batch_predictions, online_predictions)]
        )
        assert agreement > 0.9


class TestPackedBackend:
    def test_packed_learns_separable_dataset(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs[:20], labels[:20])
        assert model.score(graphs[20:], labels[20:]) > 0.8

    def test_packed_accuracy_within_noise_of_dense(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        dense = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        packed = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        dense.fit(graphs, labels)
        packed.fit(graphs, labels)
        dense_accuracy = dense.score(graphs, labels)
        packed_accuracy = packed.score(graphs, labels)
        assert abs(dense_accuracy - packed_accuracy) < 0.15

    def test_packed_encodings_are_bit_packed_dense_encodings(self, two_class_dataset):
        from repro.hdc.backend import pack_bipolar

        graphs = two_class_dataset.graphs[:8]
        dense = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        packed = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        assert np.array_equal(
            packed.encode(graphs), pack_bipolar(dense.encode(graphs))
        )

    def test_packed_encodings_are_uint64_words(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        encodings = model.encode(two_class_dataset.graphs[:3])
        assert encodings.dtype == np.uint64
        assert encodings.shape == (3, DIMENSION // 64)

    def test_packed_requires_normalized_graph_hypervectors(self):
        with pytest.raises(ValueError):
            GraphHDConfig(backend="packed", normalize_graph_hypervectors=False)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            GraphHDConfig(backend="sparse")

    def test_packed_partial_fit(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        for graph, label in zip(graphs, labels):
            model.partial_fit(graph, label)
        assert model.score(graphs, labels) > 0.8


class TestReproducibility:
    def test_same_seed_same_predictions(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        first = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        second = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        first.fit(graphs, labels)
        second.fit(graphs, labels)
        assert first.predict(graphs) == second.predict(graphs)

    def test_dimension_10000_default(self):
        model = GraphHDClassifier()
        assert model.config.dimension == 10_000


class TestEncodedPath:
    def test_fit_encoded_matches_fit(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)

        fitted = GraphHDClassifier(config).fit(graphs, labels)
        encoded_model = GraphHDClassifier(config)
        encodings = encoded_model.encode(graphs)
        encoded_model.fit_encoded(encodings, labels)

        memory_a = fitted.classifier.memory
        memory_b = encoded_model.classifier.memory
        assert memory_a.classes == memory_b.classes
        for label in memory_a.classes:
            assert np.array_equal(
                memory_a.class_vector(label, normalized=False),
                memory_b.class_vector(label, normalized=False),
            )

    def test_predict_encoded_matches_predict(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)
        model = GraphHDClassifier(config).fit(graphs, labels)
        encodings = model.encode(graphs)
        assert model.predict_encoded(encodings) == model.predict(graphs)
        assert model.predict_encoded(np.empty((0, 1024), dtype=np.int8)) == []

    def test_fit_encoded_timings_record_accumulation_only(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=512, seed=0))
        model.fit_encoded(model.encode(graphs), labels)
        assert model.timings.encoding_seconds == 0.0
        assert model.timings.accumulation_seconds > 0.0
        assert model.timings.training_seconds == model.timings.accumulation_seconds

    def test_fit_encoded_validates_input(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=256, seed=0))
        encodings = model.encode(graphs)
        with pytest.raises(ValueError):
            model.fit_encoded(encodings, labels[:-1])
        with pytest.raises(ValueError):
            model.fit_encoded(encodings[:0], [])

    def test_fit_encoded_packed_backend(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0, backend="packed")
        fitted = GraphHDClassifier(config).fit(graphs, labels)
        cached = GraphHDClassifier(config)
        cached.fit_encoded(cached.encode(graphs), labels)
        assert cached.predict_encoded(cached.encode(graphs)) == fitted.predict(graphs)


class TestScoreValidation:
    """score must refuse mismatched inputs instead of zip-truncating."""

    def test_graph_label_length_mismatch_names_both_counts(
        self, model, two_class_dataset
    ):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs, labels)
        with pytest.raises(
            ValueError, match=rf"{len(graphs)} graphs and {len(labels) - 3} labels"
        ):
            model.score(graphs, labels[:-3])

    def test_mismatch_detected_for_generator_input(self, model, two_class_dataset):
        # Generators have no len(); score must materialize them before
        # comparing, not fall back to silent zip truncation.
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs, labels)
        with pytest.raises(ValueError, match="must have the same length"):
            model.score((graph for graph in graphs), labels[:-1])

    def test_multicentroid_score_mismatch_rejected(self, two_class_dataset):
        from repro.core.extensions import MultiCentroidGraphHDClassifier

        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), centroids_per_class=2
        )
        model.fit(graphs, labels)
        with pytest.raises(ValueError, match="must have the same length"):
            model.score(graphs, labels[:-1])


class TestInferenceTimingSplit:
    """predict books encode cost on encoding_seconds, not inference_seconds."""

    def test_inference_seconds_excludes_encode_cost(
        self, model, two_class_dataset, monkeypatch
    ):
        import time as time_module

        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        real_encode_many = model.encoder.encode_many

        def slow_encode_many(graphs):
            time_module.sleep(0.05)
            return real_encode_many(graphs)

        monkeypatch.setattr(model.encoder, "encode_many", slow_encode_many)
        encoding_before = model.timings.encoding_seconds
        model.predict(two_class_dataset.graphs[:5])
        # The artificial 50ms encode delay lands on encoding_seconds...
        assert model.timings.encoding_seconds - encoding_before >= 0.05
        # ...and inference_seconds records only the similarity search.
        assert model.timings.inference_seconds < 0.05

    def test_predict_and_predict_encoded_agree_on_inference_timing(
        self, model, two_class_dataset
    ):
        graphs = two_class_dataset.graphs
        model.fit(graphs, two_class_dataset.labels)
        model.predict(graphs)
        via_predict = model.timings.inference_seconds
        model.predict_encoded(model.encode(graphs))
        via_encoded = model.timings.inference_seconds
        # Both record a pure similarity pass over the same batch; they must
        # be the same order of magnitude (no encode cost hiding in either).
        assert via_predict < 50 * via_encoded + 0.05
        assert via_encoded < 50 * via_predict + 0.05

    def test_predict_topk_books_timings_like_predict(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        encoding_before = model.timings.encoding_seconds
        model.predict_topk(two_class_dataset.graphs[:5], k=2)
        assert model.timings.encoding_seconds > encoding_before
        assert model.timings.inference_seconds > 0


class TestTopKPredictions:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_top1_label_equals_predict(self, two_class_dataset, backend):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend=backend)
        )
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs, labels)
        ranked = model.predict_topk(graphs, k=1)
        assert [row[0][0] for row in ranked] == model.predict(graphs)

    def test_predict_topk_encoded_matches_graph_path(self, model, two_class_dataset):
        graphs = two_class_dataset.graphs
        model.fit(graphs, two_class_dataset.labels)
        assert model.predict_topk_encoded(
            model.encode(graphs), k=2
        ) == model.predict_topk(graphs, k=2)

    def test_empty_input(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.predict_topk([]) == []
        assert model.predict_topk_encoded(np.zeros((0, DIMENSION))) == []
