"""Tests for the GraphHD classifier (Algorithm 1 + inference)."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier

DIMENSION = 2048


@pytest.fixture
def model():
    return GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))


class TestFitPredict:
    def test_learns_separable_dataset(self, model, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs[:20], labels[:20])
        assert model.score(graphs[20:], labels[20:]) > 0.8

    def test_learns_density_contrast(self, random_graph_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = random_graph_dataset.graphs, random_graph_dataset.labels
        model.fit(graphs, labels)
        assert model.score(graphs, labels) > 0.7

    def test_classes_property(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert set(model.classes) == {0, 1}

    def test_predict_one(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        prediction = model.predict_one(two_class_dataset.graphs[0])
        assert prediction in (0, 1)

    def test_predict_empty_list(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.predict([]) == []

    def test_decision_scores_shape(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        scores, classes = model.decision_scores(two_class_dataset.graphs[:5])
        assert scores.shape == (5, 2)
        assert set(classes) == {0, 1}

    def test_encode_exposed(self, model, two_class_dataset):
        encodings = model.encode(two_class_dataset.graphs[:3])
        assert encodings.shape == (3, DIMENSION)

    def test_validation(self, model, two_class_dataset):
        with pytest.raises(ValueError):
            model.fit(two_class_dataset.graphs, two_class_dataset.labels[:-1])
        with pytest.raises(ValueError):
            model.fit([], [])
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        with pytest.raises(ValueError):
            model.score([], [])

    def test_timings_recorded(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        model.predict(two_class_dataset.graphs)
        assert model.timings.training_seconds > 0
        assert model.timings.encoding_seconds > 0
        assert model.timings.inference_seconds > 0
        assert model.timings.encoding_seconds <= model.timings.training_seconds

    def test_hamming_metric_supported(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), metric="hamming"
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.7


class TestOnlineLearning:
    def test_partial_fit_builds_model(self, two_class_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        for graph, label in zip(two_class_dataset.graphs, two_class_dataset.labels):
            model.partial_fit(graph, label)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.8

    def test_partial_fit_matches_batch_fit_distribution(self, two_class_dataset):
        batch_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        online_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        batch_model.fit(graphs, labels)
        for graph, label in zip(graphs, labels):
            online_model.partial_fit(graph, label)
        batch_predictions = batch_model.predict(graphs)
        online_predictions = online_model.predict(graphs)
        agreement = np.mean(
            [b == o for b, o in zip(batch_predictions, online_predictions)]
        )
        assert agreement > 0.9


class TestReproducibility:
    def test_same_seed_same_predictions(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        first = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        second = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        first.fit(graphs, labels)
        second.fit(graphs, labels)
        assert first.predict(graphs) == second.predict(graphs)

    def test_dimension_10000_default(self):
        model = GraphHDClassifier()
        assert model.config.dimension == 10_000
