"""Tests for the GraphHD classifier (Algorithm 1 + inference)."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig
from repro.core.model import GraphHDClassifier

DIMENSION = 2048


@pytest.fixture
def model():
    return GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))


class TestFitPredict:
    def test_learns_separable_dataset(self, model, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs[:20], labels[:20])
        assert model.score(graphs[20:], labels[20:]) > 0.8

    def test_learns_density_contrast(self, random_graph_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = random_graph_dataset.graphs, random_graph_dataset.labels
        model.fit(graphs, labels)
        assert model.score(graphs, labels) > 0.7

    def test_classes_property(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert set(model.classes) == {0, 1}

    def test_predict_one(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        prediction = model.predict_one(two_class_dataset.graphs[0])
        assert prediction in (0, 1)

    def test_predict_empty_list(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.predict([]) == []

    def test_decision_scores_shape(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        scores, classes = model.decision_scores(two_class_dataset.graphs[:5])
        assert scores.shape == (5, 2)
        assert set(classes) == {0, 1}

    def test_encode_exposed(self, model, two_class_dataset):
        encodings = model.encode(two_class_dataset.graphs[:3])
        assert encodings.shape == (3, DIMENSION)

    def test_validation(self, model, two_class_dataset):
        with pytest.raises(ValueError):
            model.fit(two_class_dataset.graphs, two_class_dataset.labels[:-1])
        with pytest.raises(ValueError):
            model.fit([], [])
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        with pytest.raises(ValueError):
            model.score([], [])

    def test_timings_recorded(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        model.predict(two_class_dataset.graphs)
        assert model.timings.training_seconds > 0
        assert model.timings.encoding_seconds > 0
        assert model.timings.inference_seconds > 0
        assert model.timings.encoding_seconds <= model.timings.training_seconds

    def test_timings_decompose_training(self, model, two_class_dataset):
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        timings = model.timings
        assert timings.accumulation_seconds > 0
        # training time decomposes exactly into encoding + accumulation
        assert timings.training_seconds == pytest.approx(
            timings.encoding_seconds + timings.accumulation_seconds
        )

    def test_partial_fit_updates_timings(self, model, two_class_dataset):
        graph, label = two_class_dataset.graphs[0], two_class_dataset.labels[0]
        model.partial_fit(graph, label)
        first_training = model.timings.training_seconds
        assert first_training > 0
        assert model.timings.encoding_seconds > 0
        assert model.timings.accumulation_seconds > 0
        model.partial_fit(graph, label)
        # partial_fit accumulates its per-sample cost
        assert model.timings.training_seconds > first_training

    def test_hamming_metric_supported(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), metric="hamming"
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.7


class TestOnlineLearning:
    def test_partial_fit_builds_model(self, two_class_dataset):
        model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        for graph, label in zip(two_class_dataset.graphs, two_class_dataset.labels):
            model.partial_fit(graph, label)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.8

    def test_partial_fit_matches_batch_fit_distribution(self, two_class_dataset):
        batch_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        online_model = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        batch_model.fit(graphs, labels)
        for graph, label in zip(graphs, labels):
            online_model.partial_fit(graph, label)
        batch_predictions = batch_model.predict(graphs)
        online_predictions = online_model.predict(graphs)
        agreement = np.mean(
            [b == o for b, o in zip(batch_predictions, online_predictions)]
        )
        assert agreement > 0.9


class TestPackedBackend:
    def test_packed_learns_separable_dataset(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model.fit(graphs[:20], labels[:20])
        assert model.score(graphs[20:], labels[20:]) > 0.8

    def test_packed_accuracy_within_noise_of_dense(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        dense = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        packed = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        dense.fit(graphs, labels)
        packed.fit(graphs, labels)
        dense_accuracy = dense.score(graphs, labels)
        packed_accuracy = packed.score(graphs, labels)
        assert abs(dense_accuracy - packed_accuracy) < 0.15

    def test_packed_encodings_are_bit_packed_dense_encodings(self, two_class_dataset):
        from repro.hdc.backend import pack_bipolar

        graphs = two_class_dataset.graphs[:8]
        dense = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        packed = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        assert np.array_equal(
            packed.encode(graphs), pack_bipolar(dense.encode(graphs))
        )

    def test_packed_encodings_are_uint64_words(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        encodings = model.encode(two_class_dataset.graphs[:3])
        assert encodings.dtype == np.uint64
        assert encodings.shape == (3, DIMENSION // 64)

    def test_packed_requires_normalized_graph_hypervectors(self):
        with pytest.raises(ValueError):
            GraphHDConfig(backend="packed", normalize_graph_hypervectors=False)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            GraphHDConfig(backend="sparse")

    def test_packed_partial_fit(self, two_class_dataset):
        model = GraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0, backend="packed")
        )
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        for graph, label in zip(graphs, labels):
            model.partial_fit(graph, label)
        assert model.score(graphs, labels) > 0.8


class TestReproducibility:
    def test_same_seed_same_predictions(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        first = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        second = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=1))
        first.fit(graphs, labels)
        second.fit(graphs, labels)
        assert first.predict(graphs) == second.predict(graphs)

    def test_dimension_10000_default(self):
        model = GraphHDClassifier()
        assert model.config.dimension == 10_000


class TestEncodedPath:
    def test_fit_encoded_matches_fit(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)

        fitted = GraphHDClassifier(config).fit(graphs, labels)
        encoded_model = GraphHDClassifier(config)
        encodings = encoded_model.encode(graphs)
        encoded_model.fit_encoded(encodings, labels)

        memory_a = fitted.classifier.memory
        memory_b = encoded_model.classifier.memory
        assert memory_a.classes == memory_b.classes
        for label in memory_a.classes:
            assert np.array_equal(
                memory_a.class_vector(label, normalized=False),
                memory_b.class_vector(label, normalized=False),
            )

    def test_predict_encoded_matches_predict(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)
        model = GraphHDClassifier(config).fit(graphs, labels)
        encodings = model.encode(graphs)
        assert model.predict_encoded(encodings) == model.predict(graphs)
        assert model.predict_encoded(np.empty((0, 1024), dtype=np.int8)) == []

    def test_fit_encoded_timings_record_accumulation_only(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=512, seed=0))
        model.fit_encoded(model.encode(graphs), labels)
        assert model.timings.encoding_seconds == 0.0
        assert model.timings.accumulation_seconds > 0.0
        assert model.timings.training_seconds == model.timings.accumulation_seconds

    def test_fit_encoded_validates_input(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        model = GraphHDClassifier(GraphHDConfig(dimension=256, seed=0))
        encodings = model.encode(graphs)
        with pytest.raises(ValueError):
            model.fit_encoded(encodings, labels[:-1])
        with pytest.raises(ValueError):
            model.fit_encoded(encodings[:0], [])

    def test_fit_encoded_packed_backend(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0, backend="packed")
        fitted = GraphHDClassifier(config).fit(graphs, labels)
        cached = GraphHDClassifier(config)
        cached.fit_encoded(cached.encode(graphs), labels)
        assert cached.predict_encoded(cached.encode(graphs)) == fitted.predict(graphs)
