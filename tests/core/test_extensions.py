"""Tests for the GraphHD future-work extensions."""

import numpy as np
import pytest

from repro.core.encoding import GraphHDConfig, GraphHDEncoder
from repro.core.extensions import (
    LabelAwareGraphHDEncoder,
    MultiCentroidGraphHDClassifier,
    RetrainedGraphHDClassifier,
)
from repro.graphs.generators import ring_of_cliques_graph, tree_graph
from repro.graphs.graph import Graph

DIMENSION = 2048


class TestRetrainedGraphHD:
    def test_training_accuracy_not_worse_than_plain(self, two_class_dataset):
        from repro.core.model import GraphHDClassifier

        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        plain = GraphHDClassifier(GraphHDConfig(dimension=DIMENSION, seed=0))
        retrained = RetrainedGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), retrain_epochs=10
        )
        plain.fit(graphs, labels)
        retrained.fit(graphs, labels)
        assert retrained.score(graphs, labels) >= plain.score(graphs, labels) - 0.05

    def test_report_available_after_fit(self, two_class_dataset):
        model = RetrainedGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), retrain_epochs=5
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.retraining_report is not None
        assert model.retraining_report.epochs_run >= 1

    def test_zero_epochs_is_plain_graphhd(self, two_class_dataset):
        model = RetrainedGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), retrain_epochs=0
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.retraining_report.epochs_run == 0

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            RetrainedGraphHDClassifier(retrain_epochs=-1)


class TestMultiCentroidGraphHD:
    @pytest.fixture
    def multimodal_dataset(self):
        # Class 0 has two structural modes (cliques and trees); class 1 is a
        # third, distinct structure.  Multiple centroids should help here.
        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for index in range(36):
            mode = index % 3
            if mode == 0:
                graph = ring_of_cliques_graph(4, 4, rng=rng, graph_label=0)
                label = 0
            elif mode == 1:
                graph = tree_graph(16, max_children=2, rng=rng, graph_label=0)
                label = 0
            else:
                graph = Graph(
                    16, [(i, (i + 1) % 16) for i in range(16)], graph_label=1
                )
                label = 1
            graphs.append(graph)
            labels.append(label)
        return graphs, labels

    def test_learns_multimodal_classes(self, multimodal_dataset):
        graphs, labels = multimodal_dataset
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), centroids_per_class=2
        )
        model.fit(graphs, labels)
        assert model.score(graphs, labels) > 0.85

    def test_single_centroid_matches_plain_behaviour(self, two_class_dataset):
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), centroids_per_class=1
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.score(two_class_dataset.graphs, two_class_dataset.labels) > 0.8

    def test_classes_property(self, two_class_dataset):
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), centroids_per_class=2
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert set(model.classes) == {0, 1}

    def test_predict_before_fit_rejected(self, two_class_dataset):
        model = MultiCentroidGraphHDClassifier()
        with pytest.raises(RuntimeError):
            model.predict(two_class_dataset.graphs)

    def test_validation(self, two_class_dataset):
        with pytest.raises(ValueError):
            MultiCentroidGraphHDClassifier(centroids_per_class=0)
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0)
        )
        with pytest.raises(ValueError):
            model.fit(two_class_dataset.graphs, two_class_dataset.labels[:-1])
        with pytest.raises(ValueError):
            model.fit([], [])

    def test_predict_empty(self, two_class_dataset):
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0)
        )
        model.fit(two_class_dataset.graphs, two_class_dataset.labels)
        assert model.predict([]) == []

    def test_more_centroids_than_samples_handled(self, two_class_dataset):
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=DIMENSION, seed=0), centroids_per_class=100
        )
        model.fit(two_class_dataset.graphs[:6], two_class_dataset.labels[:6])
        predictions = model.predict(two_class_dataset.graphs[:6])
        assert len(predictions) == 6


class TestLabelAwareEncoder:
    def test_unlabelled_graphs_match_structural_encoding(self, small_graph_collection):
        structural = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        label_aware = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        for graph in small_graph_collection:
            assert np.array_equal(structural.encode(graph), label_aware.encode(graph))

    def test_vertex_labels_change_encoding(self, labelled_graph):
        structural = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        label_aware = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        assert not np.array_equal(
            structural.encode(labelled_graph), label_aware.encode(labelled_graph)
        )

    def test_different_labelings_encode_differently(self):
        encoder = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        base = Graph(4, [(0, 1), (1, 2), (2, 3)], vertex_labels=["C", "C", "C", "C"])
        other = Graph(4, [(0, 1), (1, 2), (2, 3)], vertex_labels=["N", "N", "N", "N"])
        assert not np.array_equal(encoder.encode(base), encoder.encode(other))

    def test_same_labeling_encodes_identically(self):
        encoder = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        first = Graph(4, [(0, 1), (1, 2), (2, 3)], vertex_labels=["C", "N", "C", "O"])
        second = Graph(4, [(0, 1), (1, 2), (2, 3)], vertex_labels=["C", "N", "C", "O"])
        assert np.array_equal(encoder.encode(first), encoder.encode(second))

    def test_edge_labels_change_encoding(self, labelled_graph):
        encoder = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        without_edge_labels = labelled_graph.copy()
        without_edge_labels.edge_labels = None
        assert not np.array_equal(
            encoder.encode(labelled_graph), encoder.encode(without_edge_labels)
        )

    def test_label_aware_improves_on_label_dependent_task(self):
        # Two classes with identical topology but different vertex labels:
        # only the label-aware encoder can separate them.
        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for index in range(30):
            label = index % 2
            vertex_labels = ["A"] * 8 if label == 0 else ["B"] * 8
            graph = Graph(
                8,
                [(i, (i + 1) % 8) for i in range(8)],
                vertex_labels=vertex_labels,
                graph_label=label,
            )
            graphs.append(graph)
            labels.append(label)

        from repro.hdc.classifier import CentroidClassifier

        structural = GraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))
        label_aware = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=DIMENSION, seed=0))

        aware_classifier = CentroidClassifier(DIMENSION).fit(
            label_aware.encode_many(graphs), labels
        )
        assert aware_classifier.score(label_aware.encode_many(graphs), labels) == 1.0

        structural_encodings = structural.encode_many(graphs)
        # All graphs are isomorphic cycles, so the structural encodings of the
        # two classes are indistinguishable.
        assert np.array_equal(structural_encodings[0], structural_encodings[1])


class TestEncodedPathExtensions:
    def test_multicentroid_fit_encoded_with_tuple_labels(self, two_class_dataset):
        graphs = two_class_dataset.graphs
        labels = [("class", label) for label in two_class_dataset.labels]
        model = MultiCentroidGraphHDClassifier(
            GraphHDConfig(dimension=512, seed=0), centroids_per_class=2
        )
        model.fit_encoded(model.encode(graphs), labels)
        predictions = model.predict_encoded(model.encode(graphs))
        assert set(predictions) <= set(labels)

    def test_multicentroid_encoded_path_matches_graph_path(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)
        direct = MultiCentroidGraphHDClassifier(config, centroids_per_class=2)
        direct.fit(graphs, labels)
        cached = MultiCentroidGraphHDClassifier(config, centroids_per_class=2)
        cached.fit_encoded(cached.encode(graphs), labels)
        assert cached.predict_encoded(cached.encode(graphs)) == direct.predict(graphs)

    def test_retrained_fit_encoded_matches_fit(self, two_class_dataset):
        graphs, labels = two_class_dataset.graphs, two_class_dataset.labels
        config = GraphHDConfig(dimension=1024, seed=0)
        direct = RetrainedGraphHDClassifier(config, retrain_epochs=3)
        direct.fit(graphs, labels)
        cached = RetrainedGraphHDClassifier(config, retrain_epochs=3)
        cached.fit_encoded(cached.encode(graphs), labels)
        assert cached.predict(graphs) == direct.predict(graphs)
        assert cached.retraining_report is not None

    def test_label_aware_encoder_batches_via_per_graph_path(self, labelled_graph):
        # The label-aware encoder overrides per-graph hooks; encode_many must
        # detect that automatically and keep the overridden behaviour.
        encoder = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=512, seed=0))
        assert not encoder._uses_base_encoding_hooks()
        reference = LabelAwareGraphHDEncoder(GraphHDConfig(dimension=512, seed=0))
        batch = encoder.encode_many([labelled_graph, labelled_graph])
        single = reference.encode(labelled_graph)
        assert np.array_equal(batch[0], single)
        assert np.array_equal(batch[1], single)
