"""Tests for the generic centroid HDC classifier."""

import numpy as np
import pytest

from repro.hdc.classifier import CentroidClassifier
from repro.hdc.hypervector import random_bipolar

DIMENSION = 1024


def make_cluster(prototype, count, flip_fraction, rng):
    """Noisy copies of a prototype hypervector."""
    samples = []
    for _ in range(count):
        sample = prototype.copy()
        positions = rng.choice(len(sample), size=int(len(sample) * flip_fraction), replace=False)
        sample[positions] = -sample[positions]
        samples.append(sample)
    return samples


@pytest.fixture
def clustered_data():
    rng = np.random.default_rng(0)
    prototypes = {
        label: random_bipolar(DIMENSION, rng=seed)
        for seed, label in enumerate(("a", "b", "c"))
    }
    encodings, labels = [], []
    for label, prototype in prototypes.items():
        for sample in make_cluster(prototype, 15, 0.25, rng):
            encodings.append(sample)
            labels.append(label)
    return np.vstack(encodings), labels, prototypes


class TestCentroidClassifier:
    def test_fit_predict_recovers_clusters(self, clustered_data):
        encodings, labels, prototypes = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        assert classifier.score(encodings, labels) > 0.95
        for label, prototype in prototypes.items():
            assert classifier.predict_one(prototype) == label

    def test_classes_property(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        assert set(classifier.classes) == {"a", "b", "c"}

    def test_predict_before_fit_raises(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(RuntimeError):
            classifier.predict(random_bipolar(DIMENSION, rng=0)[None, :])

    def test_length_mismatch_rejected(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((3, DIMENSION)), ["a", "b"])

    def test_dimension_mismatch_rejected(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((2, DIMENSION // 2)), ["a", "b"])

    def test_score_empty_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.score(np.zeros((0, DIMENSION)), [])

    def test_partial_fit_adds_class(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        new_prototype = random_bipolar(DIMENSION, rng=77)
        classifier.partial_fit(new_prototype, "d")
        assert classifier.predict_one(new_prototype) == "d"

    def test_partial_fit_from_scratch(self):
        classifier = CentroidClassifier(DIMENSION)
        first = random_bipolar(DIMENSION, rng=0)
        second = random_bipolar(DIMENSION, rng=1)
        classifier.partial_fit(first, 0)
        classifier.partial_fit(second, 1)
        assert classifier.predict_one(first) == 0
        assert classifier.predict_one(second) == 1

    def test_decision_scores_shape(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        scores, classes = classifier.decision_scores(encodings[:5])
        assert scores.shape == (5, 3)
        assert len(classes) == 3

    def test_normalized_class_vectors_mode(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION, normalize_class_vectors=True)
        classifier.fit(encodings, labels)
        assert classifier.score(encodings, labels) > 0.9


class TestRetraining:
    def test_retraining_reduces_training_errors(self):
        # Construct overlapping clusters where plain centroids confuse a few
        # samples; retraining should reduce the number of training errors.
        rng = np.random.default_rng(1)
        prototype_a = random_bipolar(DIMENSION, rng=10)
        prototype_b = prototype_a.copy()
        flip = rng.choice(DIMENSION, size=int(DIMENSION * 0.3), replace=False)
        prototype_b[flip] = -prototype_b[flip]

        encodings, labels = [], []
        for label, prototype in (("a", prototype_a), ("b", prototype_b)):
            for sample in make_cluster(prototype, 20, 0.35, rng):
                encodings.append(sample)
                labels.append(label)
        encodings = np.vstack(encodings)

        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        before = classifier.score(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=15)
        after = classifier.score(encodings, labels)
        assert after >= before
        assert report.epochs_run >= 1
        assert len(report.errors_per_epoch) == report.epochs_run

    def test_retrain_converges_on_separable_data(self, clustered_data=None):
        rng = np.random.default_rng(2)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(2)}
        encodings, labels = [], []
        for label, prototype in prototypes.items():
            for sample in make_cluster(prototype, 10, 0.1, rng):
                encodings.append(sample)
                labels.append(label)
        encodings = np.vstack(encodings)
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=10)
        assert report.converged
        assert report.errors_per_epoch[-1] == 0

    def test_retrain_before_fit_raises(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(RuntimeError):
            classifier.retrain(np.zeros((2, DIMENSION)), ["a", "b"])

    def test_retrain_zero_epochs(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=0)
        assert report.epochs_run == 0
        assert not report.converged

    def test_retrain_negative_epochs_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.retrain(encodings, labels, epochs=-1)

    def test_retrain_length_mismatch_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.retrain(encodings, labels[:-1], epochs=1)


class TestStateAPI:
    """fit_state / fit_from_state — the map-reduce halves of fit."""

    def test_fit_state_leaves_classifier_untrained(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION)
        state = classifier.fit_state(encodings, labels)
        assert state.num_samples == len(labels)
        assert classifier._is_fitted is False
        assert len(classifier.memory) == 0

    def test_fit_equals_fit_state_then_install(self, clustered_data):
        encodings, labels, _ = clustered_data
        direct = CentroidClassifier(DIMENSION).fit(encodings, labels)
        staged = CentroidClassifier(DIMENSION)
        staged.fit_from_state(staged.fit_state(encodings, labels))
        assert staged.classes == direct.classes
        for label in direct.classes:
            assert np.array_equal(
                staged.memory._accumulators[label],
                direct.memory._accumulators[label],
            )

    def test_shard_states_merge_to_single_fit(self, clustered_data):
        encodings, labels, _ = clustered_data
        direct = CentroidClassifier(DIMENSION).fit(encodings, labels)
        sharded = CentroidClassifier(DIMENSION)
        half = len(labels) // 2
        state = sharded.fit_state(encodings[:half], labels[:half]).merge(
            sharded.fit_state(encodings[half:], labels[half:])
        )
        sharded.fit_from_state(state)
        assert sharded.classes == direct.classes
        for label in direct.classes:
            assert np.array_equal(
                sharded.memory._accumulators[label],
                direct.memory._accumulators[label],
            )

    def test_fit_from_state_rejects_mismatched_dimension(self, clustered_data):
        from repro.hdc.training_state import MergeError, TrainingState

        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(MergeError, match="dimension mismatch"):
            classifier.fit_from_state(TrainingState(DIMENSION * 2))
