"""Tests for the generic centroid HDC classifier."""

import numpy as np
import pytest

from repro.hdc.classifier import CentroidClassifier
from repro.hdc.hypervector import random_bipolar

DIMENSION = 1024


def make_cluster(prototype, count, flip_fraction, rng):
    """Noisy copies of a prototype hypervector."""
    samples = []
    for _ in range(count):
        sample = prototype.copy()
        positions = rng.choice(len(sample), size=int(len(sample) * flip_fraction), replace=False)
        sample[positions] = -sample[positions]
        samples.append(sample)
    return samples


@pytest.fixture
def clustered_data():
    rng = np.random.default_rng(0)
    prototypes = {
        label: random_bipolar(DIMENSION, rng=seed)
        for seed, label in enumerate(("a", "b", "c"))
    }
    encodings, labels = [], []
    for label, prototype in prototypes.items():
        for sample in make_cluster(prototype, 15, 0.25, rng):
            encodings.append(sample)
            labels.append(label)
    return np.vstack(encodings), labels, prototypes


class TestCentroidClassifier:
    def test_fit_predict_recovers_clusters(self, clustered_data):
        encodings, labels, prototypes = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        assert classifier.score(encodings, labels) > 0.95
        for label, prototype in prototypes.items():
            assert classifier.predict_one(prototype) == label

    def test_classes_property(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        assert set(classifier.classes) == {"a", "b", "c"}

    def test_predict_before_fit_raises(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(RuntimeError):
            classifier.predict(random_bipolar(DIMENSION, rng=0)[None, :])

    def test_length_mismatch_rejected(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((3, DIMENSION)), ["a", "b"])

    def test_dimension_mismatch_rejected(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((2, DIMENSION // 2)), ["a", "b"])

    def test_score_empty_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.score(np.zeros((0, DIMENSION)), [])

    def test_partial_fit_adds_class(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        new_prototype = random_bipolar(DIMENSION, rng=77)
        classifier.partial_fit(new_prototype, "d")
        assert classifier.predict_one(new_prototype) == "d"

    def test_partial_fit_from_scratch(self):
        classifier = CentroidClassifier(DIMENSION)
        first = random_bipolar(DIMENSION, rng=0)
        second = random_bipolar(DIMENSION, rng=1)
        classifier.partial_fit(first, 0)
        classifier.partial_fit(second, 1)
        assert classifier.predict_one(first) == 0
        assert classifier.predict_one(second) == 1

    def test_decision_scores_shape(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        scores, classes = classifier.decision_scores(encodings[:5])
        assert scores.shape == (5, 3)
        assert len(classes) == 3

    def test_normalized_class_vectors_mode(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION, normalize_class_vectors=True)
        classifier.fit(encodings, labels)
        assert classifier.score(encodings, labels) > 0.9


class TestRetraining:
    def test_retraining_reduces_training_errors(self):
        # Construct overlapping clusters where plain centroids confuse a few
        # samples; retraining should reduce the number of training errors.
        rng = np.random.default_rng(1)
        prototype_a = random_bipolar(DIMENSION, rng=10)
        prototype_b = prototype_a.copy()
        flip = rng.choice(DIMENSION, size=int(DIMENSION * 0.3), replace=False)
        prototype_b[flip] = -prototype_b[flip]

        encodings, labels = [], []
        for label, prototype in (("a", prototype_a), ("b", prototype_b)):
            for sample in make_cluster(prototype, 20, 0.35, rng):
                encodings.append(sample)
                labels.append(label)
        encodings = np.vstack(encodings)

        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        before = classifier.score(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=15)
        after = classifier.score(encodings, labels)
        assert after >= before
        assert report.epochs_run >= 1
        assert len(report.errors_per_epoch) == report.epochs_run

    def test_retrain_converges_on_separable_data(self, clustered_data=None):
        rng = np.random.default_rng(2)
        prototypes = {label: random_bipolar(DIMENSION, rng=label) for label in range(2)}
        encodings, labels = [], []
        for label, prototype in prototypes.items():
            for sample in make_cluster(prototype, 10, 0.1, rng):
                encodings.append(sample)
                labels.append(label)
        encodings = np.vstack(encodings)
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=10)
        assert report.converged
        assert report.errors_per_epoch[-1] == 0

    def test_retrain_before_fit_raises(self):
        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(RuntimeError):
            classifier.retrain(np.zeros((2, DIMENSION)), ["a", "b"])

    def test_retrain_zero_epochs(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        report = classifier.retrain(encodings, labels, epochs=0)
        assert report.epochs_run == 0
        assert not report.converged

    def test_retrain_negative_epochs_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.retrain(encodings, labels, epochs=-1)

    def test_retrain_length_mismatch_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError):
            classifier.retrain(encodings, labels[:-1], epochs=1)


class TestStateAPI:
    """fit_state / fit_from_state — the map-reduce halves of fit."""

    def test_fit_state_leaves_classifier_untrained(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION)
        state = classifier.fit_state(encodings, labels)
        assert state.num_samples == len(labels)
        assert classifier._is_fitted is False
        assert len(classifier.memory) == 0

    def test_fit_equals_fit_state_then_install(self, clustered_data):
        encodings, labels, _ = clustered_data
        direct = CentroidClassifier(DIMENSION).fit(encodings, labels)
        staged = CentroidClassifier(DIMENSION)
        staged.fit_from_state(staged.fit_state(encodings, labels))
        assert staged.classes == direct.classes
        for label in direct.classes:
            assert np.array_equal(
                staged.memory._accumulators[label],
                direct.memory._accumulators[label],
            )

    def test_shard_states_merge_to_single_fit(self, clustered_data):
        encodings, labels, _ = clustered_data
        direct = CentroidClassifier(DIMENSION).fit(encodings, labels)
        sharded = CentroidClassifier(DIMENSION)
        half = len(labels) // 2
        state = sharded.fit_state(encodings[:half], labels[:half]).merge(
            sharded.fit_state(encodings[half:], labels[half:])
        )
        sharded.fit_from_state(state)
        assert sharded.classes == direct.classes
        for label in direct.classes:
            assert np.array_equal(
                sharded.memory._accumulators[label],
                direct.memory._accumulators[label],
            )

    def test_fit_from_state_rejects_mismatched_dimension(self, clustered_data):
        from repro.hdc.training_state import MergeError, TrainingState

        classifier = CentroidClassifier(DIMENSION)
        with pytest.raises(MergeError, match="dimension mismatch"):
            classifier.fit_from_state(TrainingState(DIMENSION * 2))


class TestScoreLengthMismatch:
    """score must refuse mismatched inputs instead of zip-truncating."""

    def test_more_encodings_than_labels_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(
            ValueError,
            match=rf"{len(labels)} encodings and {len(labels) - 2} labels",
        ):
            classifier.score(encodings, labels[:-2])

    def test_more_labels_than_encodings_rejected(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError, match="must have the same length"):
            classifier.score(encodings[:-2], labels)


class TestDeterministicTieRule:
    """Equal maximal scores resolve to the earliest-trained class."""

    def _tied_classifier(self, first, second):
        # Both classes get the *same* centroid, so every query ties exactly.
        prototype = random_bipolar(DIMENSION, rng=0)
        classifier = CentroidClassifier(DIMENSION)
        classifier.partial_fit(prototype, first)
        classifier.partial_fit(prototype, second)
        return classifier, prototype

    def test_first_trained_class_wins(self):
        classifier, prototype = self._tied_classifier("early", "late")
        assert classifier.predict_one(prototype) == "early"

    def test_tie_winner_follows_insertion_order_not_label_order(self):
        # Reversing the training order flips the winner: the rule is
        # insertion order, not any property of the labels themselves.
        classifier, prototype = self._tied_classifier("late", "early")
        assert classifier.predict_one(prototype) == "late"

    def test_topk_ranks_ties_in_insertion_order(self):
        classifier, prototype = self._tied_classifier("early", "late")
        ranked = classifier.predict_topk(prototype[None, :], k=2)[0]
        assert [label for label, _ in ranked] == ["early", "late"]
        assert ranked[0][1] == pytest.approx(ranked[1][1])

    def test_tie_rule_stable_on_packed_backend(self):
        from repro.hdc.backend import get_backend

        backend = get_backend("packed")
        prototype = backend.random_one(DIMENSION, rng=0)
        classifier = CentroidClassifier(
            DIMENSION, metric="hamming", backend=backend
        )
        classifier.partial_fit(prototype, "early")
        classifier.partial_fit(prototype, "late")
        assert classifier.predict_one(prototype) == "early"


class TestTopK:
    def test_top1_equals_predict(self, clustered_data):
        from repro.hdc.classifier import topk_from_scores

        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        ranked = classifier.predict_topk(encodings, k=1)
        assert [row[0][0] for row in ranked] == classifier.predict(encodings)
        scores, classes = classifier.decision_scores(encodings)
        assert [
            row[0][0] for row in topk_from_scores(scores, classes, 1)
        ] == classifier.predict(encodings)

    def test_scores_descend_and_match_decision_scores(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        scores, classes = classifier.decision_scores(encodings[:4])
        ranked = classifier.predict_topk(encodings[:4], k=3)
        for row_index, row in enumerate(ranked):
            values = [score for _, score in row]
            assert values == sorted(values, reverse=True)
            for label, score in row:
                column = classes.index(label)
                assert score == pytest.approx(scores[row_index, column])

    def test_k_clamped_to_class_count(self, clustered_data):
        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        ranked = classifier.predict_topk(encodings[:2], k=50)
        assert all(len(row) == len(classifier.classes) for row in ranked)

    def test_k_must_be_positive(self, clustered_data):
        from repro.hdc.classifier import topk_from_scores

        encodings, labels, _ = clustered_data
        classifier = CentroidClassifier(DIMENSION).fit(encodings, labels)
        with pytest.raises(ValueError, match="k must be positive"):
            classifier.predict_topk(encodings[:1], k=0)
        with pytest.raises(ValueError, match="k must be positive"):
            topk_from_scores(np.zeros((1, 2)), ["a", "b"], -1)
